//! `dscw` — the DSCWeaver command-line tool.
//!
//! ```text
//! dscw optimize  <process.proc> [--coop <deps.dscl>] [--wscl <conv.xml>:<bind>...]
//! dscw validate  <process.proc> [...]
//! dscw run       <process.proc> [--branch g=V]... [...]
//! dscw bpel      <process.proc> [--structured] [...]
//! dscw dot       <process.proc> [--stage sc|asc|minimal] [...]
//! dscw figures   <process.proc> [...]
//! dscw monitor   <process.proc> [--instances N] [--batch N] [--seed N] [--violate RATE] [...]
//! dscw serve     [--port N] [--threads N] [--cache N] [--batch N] [--max-conns N]
//!                [--idle-timeout MS] [--max-body BYTES] [--pipeline-depth N]
//!                [--max-in-flight N] [--stats-interval SECS] [--trace-slow-ms MS]
//!                [--trace-sample N] [--trace out.json] [--profile]
//! ```
//!
//! The process is a `.proc` DSL file (see `dscweaver-model`). Cooperation
//! dependencies come from a DSCL file whose relations are merged in as
//! `cooperation:`-tagged constraints. WSCL conversations are XML files
//! with a binding spec `interaction=activity,...` after a colon.
//!
//! Observability (see `OBSERVABILITY.md`): `--trace <out.json>` records
//! every pipeline phase and worker lane to a Chrome trace-event file
//! (load it in Perfetto / `chrome://tracing`); `--profile` prints a
//! per-phase wall-time summary to stderr. `--threads <n>` sets the
//! worker-thread count for minimization, validation and execution.

use dscweaver::core::{Dependency, DependencyKind, Endpoint, Weaver};
use dscweaver::obs;
use dscweaver::dscl::{parse_constraints, Relation, SyncGraph};
use dscweaver::model::parse_process;
use dscweaver::scheduler::SimConfig;
use dscweaver::vertical::{monitor_replay, weave, MonitorReplayConfig, VerticalInput};
use dscweaver::wscl::{from_xml, ServiceBinding};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dscw serve [--port <n>] [--threads <n>] [--cache <entries>] [--batch <n>]
       [--max-conns <n>] [--idle-timeout <ms>] [--max-body <bytes>]
       [--pipeline-depth <n>] [--max-in-flight <n>] [--stats-interval <secs>]
       [--trace-slow-ms <ms>] [--trace-sample <n>] [--trace-capacity <n>]
       [--duration <secs>] [--trace <out.json>] [--profile]
       dscw <optimize|validate|run|bpel|dot|figures|monitor> <process.proc>
       [--coop <constraints.dscl>]
       [--wscl <conversation.xml>:<iid=activity,...>]...
       [--branch <guard=value>]...
       [--stage sc|asc|minimal]      (dot)
       [--structured]                (bpel)
       [--instances <n>]             (monitor: fleet size, default 1000)
       [--batch <n>]                 (monitor: ingest batch, default 1024)
       [--seed <n>]                  (monitor: generator seed)
       [--violate <rate>]            (monitor: per-kind injection rate)
       [--threads <n>]               (0 = auto)
       [--trace <out.json>]          (Chrome trace-event JSON)
       [--profile]                   (per-phase summary on stderr)"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    process_path: String,
    coop: Option<String>,
    wscl: Vec<(String, String)>,
    branches: Vec<(String, String)>,
    stage: String,
    structured: bool,
    instances: u32,
    batch: usize,
    seed: u64,
    violate: f64,
    threads: usize,
    trace: Option<String>,
    profile: bool,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let process_path = argv.next()?;
    let mut args = Args {
        command,
        process_path,
        coop: None,
        wscl: Vec::new(),
        branches: Vec::new(),
        stage: "minimal".into(),
        structured: false,
        instances: 1000,
        batch: 1024,
        seed: 42,
        violate: 0.01,
        threads: 0,
        trace: None,
        profile: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--coop" => args.coop = Some(argv.next()?),
            "--wscl" => {
                let spec = argv.next()?;
                let (path, bind) = spec.split_once(':')?;
                args.wscl.push((path.to_string(), bind.to_string()));
            }
            "--branch" => {
                let spec = argv.next()?;
                let (g, v) = spec.split_once('=')?;
                args.branches.push((g.to_string(), v.to_string()));
            }
            "--stage" => args.stage = argv.next()?,
            "--structured" => args.structured = true,
            "--instances" => args.instances = argv.next()?.parse().ok()?,
            "--batch" => args.batch = argv.next()?.parse().ok()?,
            "--seed" => args.seed = argv.next()?.parse().ok()?,
            "--violate" => args.violate = argv.next()?.parse().ok()?,
            "--threads" => args.threads = argv.next()?.parse().ok()?,
            "--trace" => args.trace = Some(argv.next()?),
            "--profile" => args.profile = true,
            _ => return None,
        }
    }
    Some(args)
}

/// `dscw serve`: bind the daemon and serve. Without `--duration` it
/// blocks until the process is killed; with `--duration <secs>` it stops
/// after that long, which is also when `--trace`/`--profile` flush (a
/// killed daemon writes no trace — give recorded runs a finite duration).
fn run_serve(mut argv: impl Iterator<Item = String>) -> Result<(), String> {
    use dscweaver::serve::{ServeConfig, Server};
    let mut config = ServeConfig::default();
    let mut trace: Option<String> = None;
    let mut profile = false;
    let mut duration: u64 = 0;
    let mut stats_interval: u64 = 0;
    while let Some(flag) = argv.next() {
        let mut next = |what: &str| {
            argv.next()
                .ok_or_else(|| format!("--{what} needs a value"))
        };
        match flag.as_str() {
            "--port" => config.port = next("port")?.parse().map_err(|e| format!("bad port: {e}"))?,
            "--threads" => {
                config.threads = next("threads")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?
            }
            "--cache" => {
                config.cache_capacity = next("cache")?
                    .parse()
                    .map_err(|e| format!("bad cache capacity: {e}"))?
            }
            "--batch" => {
                config.batch = next("batch")?
                    .parse()
                    .map_err(|e| format!("bad batch size: {e}"))?
            }
            "--max-conns" => {
                config.max_conns = next("max-conns")?
                    .parse()
                    .map_err(|e| format!("bad connection ceiling: {e}"))?
            }
            "--idle-timeout" => {
                config.idle_timeout_ms = next("idle-timeout")?
                    .parse()
                    .map_err(|e| format!("bad idle timeout: {e}"))?
            }
            "--max-body" => {
                config.max_body = next("max-body")?
                    .parse()
                    .map_err(|e| format!("bad body cap: {e}"))?
            }
            "--pipeline-depth" => {
                config.pipeline_depth = next("pipeline-depth")?
                    .parse()
                    .map_err(|e| format!("bad pipeline depth: {e}"))?
            }
            "--max-in-flight" => {
                config.max_in_flight = next("max-in-flight")?
                    .parse()
                    .map_err(|e| format!("bad in-flight ceiling: {e}"))?
            }
            "--stats-interval" => {
                stats_interval = next("stats-interval")?
                    .parse()
                    .map_err(|e| format!("bad stats interval: {e}"))?
            }
            "--trace-slow-ms" => {
                config.trace_slow_ms = next("trace-slow-ms")?
                    .parse()
                    .map_err(|e| format!("bad slow threshold: {e}"))?
            }
            "--trace-sample" => {
                config.trace_sample = next("trace-sample")?
                    .parse()
                    .map_err(|e| format!("bad sample rate: {e}"))?
            }
            "--trace-capacity" => {
                config.trace_capacity = next("trace-capacity")?
                    .parse()
                    .map_err(|e| format!("bad trace capacity: {e}"))?
            }
            "--duration" => {
                duration = next("duration")?
                    .parse()
                    .map_err(|e| format!("bad duration: {e}"))?
            }
            "--trace" => trace = Some(next("trace")?),
            "--profile" => profile = true,
            _ => return Err("bad arguments".into()),
        }
    }
    let recording = trace.is_some() || profile;
    if recording {
        obs::set_enabled(true);
    }
    let server = Server::start(&config).map_err(|e| format!("cannot bind: {e}"))?;
    eprintln!(
        "dscw serve: listening on http://{} (cache {} entries, threads {}, \
         max-conns {}, idle-timeout {}ms, pipeline-depth {})",
        server.addr(),
        config.cache_capacity,
        if config.threads == 0 { "auto".into() } else { config.threads.to_string() },
        config.max_conns,
        config.idle_timeout_ms,
        config.pipeline_depth,
    );
    eprintln!(
        "endpoints: POST /v1/weave /v1/validate /v1/simulate /v1/reweave | \
         GET /v1/stats /metrics /v1/traces /healthz"
    );
    if config.max_in_flight > 0 {
        eprintln!(
            "back-pressure: process-keyed requests beyond {} in flight get 429",
            config.max_in_flight
        );
    }
    // Periodic one-line summary on stderr: per-interval deltas of the
    // cumulative counters plus the instantaneous gauges. The thread is
    // detached — it dies with the process, and the stop flag silences it
    // across a graceful `--duration` shutdown.
    let stats_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    if stats_interval > 0 {
        let registry = server.registry().clone();
        let stop = stats_stop.clone();
        std::thread::spawn(move || {
            let mut prev = registry.stats();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_secs(stats_interval));
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let now = registry.stats();
                let d = now.delta_since(&prev);
                eprintln!(
                    "dscw serve [{stats_interval}s]: served {} ({:.1}/s), rejected {}, \
                     hits {}, canonical {}, misses {}, evictions {}, in-flight {}, cache {}/{}",
                    d.served,
                    d.served as f64 / stats_interval as f64,
                    d.rejected,
                    d.hits,
                    d.canonical_hits,
                    d.misses,
                    d.evictions,
                    now.in_flight,
                    now.entries,
                    now.capacity,
                );
                prev = now;
            }
        });
    }
    if duration == 0 {
        // Serve until the process is killed; the listener thread owns
        // the socket, so parking the main thread is all that remains.
        loop {
            std::thread::park();
        }
    }
    std::thread::sleep(std::time::Duration::from_secs(duration));
    stats_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    server.shutdown();
    if recording {
        obs::set_enabled(false);
        let snapshot = obs::take();
        if let Some(path) = &trace {
            std::fs::write(path, snapshot.to_chrome_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("trace written to {path} (load in Perfetto or chrome://tracing)");
        }
        if profile {
            eprint!("{}", snapshot.summary());
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        return run_serve(std::env::args().skip(2));
    }
    let Some(args) = parse_args() else {
        return Err("bad arguments".into());
    };
    let src = std::fs::read_to_string(&args.process_path)
        .map_err(|e| format!("cannot read {}: {e}", args.process_path))?;
    let process = parse_process(&src).map_err(|e| e.to_string())?;
    let problems = process.validate();
    if !problems.is_empty() {
        let msgs: Vec<String> = problems.iter().map(|p| p.to_string()).collect();
        return Err(format!("process does not validate:\n  {}", msgs.join("\n  ")));
    }

    // Cooperation dependencies from a DSCL file.
    let mut cooperation: Vec<Dependency> = Vec::new();
    if let Some(path) = &args.coop {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let cs = parse_constraints(&text).map_err(|e| e.to_string())?;
        for r in cs.happen_befores() {
            if let Relation::HappenBefore { from, to, .. } = r {
                cooperation.push(Dependency {
                    from: Endpoint::at(from.activity.clone(), from.state),
                    to: Endpoint::at(to.activity.clone(), to.state),
                    kind: DependencyKind::Cooperation,
                });
            }
        }
    }

    // WSCL conversations.
    let mut conversations = Vec::new();
    for (path, bind_spec) in &args.wscl {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let conv = from_xml(&text).map_err(|e| e.to_string())?;
        let mut binding = ServiceBinding::new();
        for pair in bind_spec.split(',') {
            let (iid, act) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad binding '{pair}' (want interaction=activity)"))?;
            let interaction = conv
                .interaction(iid)
                .ok_or_else(|| format!("conversation '{}' has no interaction '{iid}'", conv.name))?;
            binding = match interaction.kind {
                dscweaver::wscl::InteractionKind::Receive => binding.invoke(iid, act),
                dscweaver::wscl::InteractionKind::Send => binding.receive(iid, act),
            };
        }
        conversations.push((conv, binding));
    }

    let mut sim = SimConfig::default();
    for (g, v) in &args.branches {
        sim.oracle.insert(g.clone(), v.clone());
    }

    // Tracing/profiling wraps the whole vertical; the recorder costs one
    // atomic load per probe when neither flag is given.
    let recording = args.trace.is_some() || args.profile;
    if recording {
        obs::set_enabled(true);
    }
    let out = weave(&VerticalInput {
        process: &process,
        conversations: &conversations,
        cooperation: &cooperation,
        weaver: Weaver {
            threads: args.threads,
            ..Weaver::new()
        },
        sim,
    })
    .map_err(|e| e.to_string())?;
    // The monitor replay runs inside the recording window so --trace and
    // --profile cover its ingest spans too.
    let monitor_report = if args.command == "monitor" {
        Some(monitor_replay(
            &out,
            &conversations,
            &MonitorReplayConfig {
                instances: args.instances,
                batch: args.batch,
                seed: args.seed,
                rate: args.violate,
                threads: args.threads,
                verify: true,
            },
        )?)
    } else {
        None
    };
    if recording {
        obs::set_enabled(false);
        let snapshot = obs::take();
        if let Some(path) = &args.trace {
            std::fs::write(path, snapshot.to_chrome_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("trace written to {path} (load in Perfetto or chrome://tracing)");
        }
        if args.profile {
            eprint!("{}", snapshot.summary());
        }
    }

    match args.command.as_str() {
        "optimize" => {
            println!("{}", out.weaver.dependencies.render_table1());
            println!("{}", out.weaver.render_table2());
            println!("{}", out.weaver.minimal.to_dscl());
            println!("removal justifications:");
            for w in out.weaver.explain_removals() {
                println!("  {w}");
            }
        }
        "validate" => {
            println!("{}", out.report());
            if !out.ok() {
                return Err("validation failed".into());
            }
        }
        "run" => {
            println!("{}", out.report());
            println!("trace:");
            for e in &out.schedule.trace.events {
                println!(
                    "  t={:<6} #{:<4} {:<8} {}",
                    e.time,
                    e.seq,
                    format!("{:?}", e.kind),
                    e.activity
                );
            }
            if !out.ok() {
                return Err("execution failed".into());
            }
        }
        "bpel" => {
            if args.structured {
                println!(
                    "{}",
                    dscweaver::bpel::emit_structured_string(&process, &out.weaver.minimal)
                );
            } else {
                println!("{}", out.bpel);
            }
        }
        "dot" => {
            let cs = match args.stage.as_str() {
                "sc" => {
                    let mut sc = out.weaver.sc.clone();
                    sc.desugar_happen_together();
                    sc
                }
                "asc" => out.weaver.asc.clone(),
                "minimal" => out.weaver.minimal.clone(),
                other => return Err(format!("unknown stage '{other}'")),
            };
            println!("{}", SyncGraph::build(&cs).to_dot(&cs.name));
        }
        "figures" => {
            println!("{}", dscweaver::model::render_flowchart(&process));
            println!("{}", dscweaver::model::render_constructs(&process));
            println!("{}", SyncGraph::build(&out.weaver.minimal).render());
        }
        "monitor" => {
            print!("{}", monitor_report.expect("computed above").render());
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if e == "bad arguments" {
                return usage();
            }
            eprintln!("dscw: {e}");
            ExitCode::FAILURE
        }
    }
}
