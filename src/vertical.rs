//! The complete DSCWeaver vertical (§1): *specification → optimization →
//! validation → execution*.
//!
//! [`weave`] takes a process definition plus its dependency inputs and
//! runs every stage:
//!
//! 1. **Specification** — data/control dependencies are extracted from the
//!    process (PDG, §3.1), service dependencies derived from WSCL
//!    conversations (§3.2), cooperation dependencies supplied by the
//!    analyst.
//! 2. **Optimization** — merge (§4.2), service translation (§4.3),
//!    minimal-set extraction (§4.4).
//! 3. **Validation** — the minimal set is lowered to a colored Petri net
//!    and checked per branch assignment (§4.1).
//! 4. **Execution** — the dataflow engine runs the minimal set; the trace
//!    is verified against the *full* merged constraint set, which is the
//!    optimizer's correctness contract; BPEL code is generated.

use dscweaver_core::{ReweaveReport, Weaver, WeaverError, WeaverOutput};
pub use dscweaver_core::{ReweavePath, WeaveSession};
use dscweaver_dscl::ConstraintSet;
use dscweaver_obs as obs;
use dscweaver_model::Process;
use dscweaver_petri::{validate, ValidateOptions, ValidationReport};
use dscweaver_scheduler::{simulate, PreparedSchedule, Schedule, SimConfig};
use dscweaver_wscl::{derive_service_dependencies, Conversation, ServiceBinding, WsclError};

/// Inputs for the vertical pipeline.
pub struct VerticalInput<'a> {
    /// The process definition (activity kinds, variables, partners).
    pub process: &'a Process,
    /// WSCL conversations with bindings, one per partner service.
    pub conversations: &'a [(Conversation, ServiceBinding)],
    /// Analyst-supplied cooperation dependencies.
    pub cooperation: &'a [dscweaver_core::Dependency],
    /// Pipeline configuration.
    pub weaver: Weaver,
    /// Simulation configuration for the execution stage.
    pub sim: SimConfig,
}

/// Everything the vertical produces.
pub struct VerticalOutput {
    /// The optimization stages (Table 1 → Figures 7–9, Table 2).
    pub weaver: WeaverOutput,
    /// Petri-net validation verdict on the minimal set.
    pub validation: ValidationReport,
    /// The executed schedule (minimal set, dataflow engine).
    pub schedule: Schedule,
    /// Violations of the *original* merged SC in the executed trace
    /// (must be empty — the optimizer's correctness contract).
    pub violations: Vec<dscweaver_scheduler::Violation>,
    /// WSCL conversation conformance violations of the executed trace
    /// (must be empty — the service-side contract).
    pub conformance: Vec<dscweaver_scheduler::Violation>,
    /// Generated BPEL document.
    pub bpel: String,
}

/// Vertical pipeline failure.
#[derive(Debug)]
pub enum VerticalError {
    /// A WSCL document or binding is broken.
    Wscl(WsclError),
    /// The optimization pipeline failed.
    Weaver(WeaverError),
}

impl std::fmt::Display for VerticalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerticalError::Wscl(e) => write!(f, "{e}"),
            VerticalError::Weaver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerticalError {}

impl VerticalOutput {
    /// True when every stage succeeded: validation passed, execution
    /// completed, and the trace satisfies the full original constraint
    /// set.
    pub fn ok(&self) -> bool {
        self.validation.ok()
            && self.schedule.completed()
            && self.violations.is_empty()
            && self.conformance.is_empty()
    }

    /// A human-readable multi-stage report.
    pub fn report(&self) -> String {
        let w = &self.weaver;
        let mut out = String::new();
        out.push_str(&format!("== DSCWeaver vertical: {} ==\n", w.sc.name));
        out.push_str(&format!(
            "dependencies: {} (Table 1)\n",
            w.dependencies.deps.len()
        ));
        out.push_str(&format!("merged SC:    {} constraints\n", w.sc.constraint_count()));
        out.push_str(&format!(
            "ASC:          {} constraints ({} bridges, {} service relations dropped)\n",
            w.asc.constraint_count(),
            w.translation.bridges.len(),
            w.translation.dropped
        ));
        out.push_str(&format!(
            "minimal P*:   {} constraints ({} removed total)\n",
            w.minimal.constraint_count(),
            w.total_removed()
        ));
        out.push_str(&format!(
            "validation:   {} ({} branch assignments)\n",
            if self.validation.ok() { "OK" } else { "FAILED" },
            self.validation.assignments_checked
        ));
        out.push_str(&format!(
            "execution:    makespan {} | peak concurrency {} | {} constraint checks\n",
            self.schedule.trace.makespan(),
            self.schedule.trace.max_concurrency(),
            self.schedule.constraint_checks
        ));
        out.push_str(&format!(
            "verification: {} violations of the original SC, {} WSCL conformance violations\n",
            self.violations.len(),
            self.conformance.len()
        ));
        out
    }
}

/// Extracts the full dependency set for the vertical: PDG data/control
/// from the process, WSCL service dependencies, analyst cooperation.
pub fn assemble_dependencies(
    process: &Process,
    conversations: &[(Conversation, ServiceBinding)],
    cooperation: &[dscweaver_core::Dependency],
) -> Result<dscweaver_core::DependencySet, WsclError> {
    let mut ds = dscweaver_pdg::extract(
        process,
        dscweaver_pdg::ExtractOptions {
            data: true,
            control: true,
            services_from_decls: false,
        },
    );
    for (conv, binding) in conversations {
        let (deps, nodes) = derive_service_dependencies(conv, binding)?;
        for n in nodes {
            ds.add_service(n);
        }
        for d in deps {
            ds.push(d);
        }
    }
    for d in cooperation {
        ds.push(d.clone());
    }
    Ok(ds)
}

/// Runs `f` under the named phase latency histogram (metrics plane; a
/// no-op while metrics recording is off).
fn timed<T>(hist: &'static str, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    obs::histogram(hist).observe(t0.elapsed().as_nanos() as u64);
    out
}

/// Runs the full vertical.
pub fn weave(input: &VerticalInput<'_>) -> Result<VerticalOutput, VerticalError> {
    let _span = obs::span_with("weave", || input.process.name.clone());
    let ds = {
        let _span = obs::span("weave.dependencies");
        timed("weave.dependencies", || {
            assemble_dependencies(input.process, input.conversations, input.cooperation)
        })
        .map_err(VerticalError::Wscl)?
    };
    let weaver_out =
        timed("weave.optimize", || input.weaver.run(&ds)).map_err(VerticalError::Weaver)?;
    // The Weaver's thread knob drives the minimizer (including the
    // level-parallel interned closure build), validation and (unless the
    // sim config sets its own) the scheduler's guard-evaluation batches.
    let validation = timed("weave.validate", || {
        validate(
            &weaver_out.minimal,
            &weaver_out.exec,
            &ValidateOptions {
                threads: input.weaver.threads,
                ..Default::default()
            },
        )
    });
    let mut sim = input.sim.clone();
    if sim.threads == 0 {
        sim.threads = input.weaver.threads;
    }
    // Execution goes through the prepared session (same trace as a fresh
    // `simulate`, indexes derived once and reusable for replays).
    let schedule = timed("weave.schedule", || {
        PreparedSchedule::new(&weaver_out.minimal, &weaver_out.exec).run(&sim)
    });
    // Correctness contract: the trace produced under the MINIMAL set must
    // satisfy the FULL merged SC, projected to internal activities (the
    // ASC before minimization, which carries every data/control/coop
    // constraint plus the translated service constraints).
    let violations = {
        let _span = obs::span("weave.verify");
        timed("weave.verify", || schedule.trace.verify(&weaver_out.asc))
    };
    let conformance = {
        let _span = obs::span("weave.conformance");
        timed("weave.conformance", || {
            dscweaver_scheduler::check_all_conformance(&schedule.trace, input.conversations)
        })
    };
    let bpel = {
        let _span = obs::span("bpel.emit");
        timed("bpel.emit", || {
            dscweaver_bpel::emit_string(input.process, &weaver_out.minimal)
        })
    };
    Ok(VerticalOutput {
        weaver: weaver_out,
        validation,
        schedule,
        violations,
        conformance,
        bpel,
    })
}

/// Convenience: run the vertical on an explicitly supplied dependency set
/// (skipping extraction), e.g. the canonical Table 1.
pub fn weave_dependencies(
    process: &Process,
    ds: &dscweaver_core::DependencySet,
    weaver: &Weaver,
    sim: &SimConfig,
) -> Result<VerticalOutput, VerticalError> {
    let _span = obs::span_with("weave", || process.name.clone());
    let weaver_out = weaver.run(ds).map_err(VerticalError::Weaver)?;
    let validation = validate(
        &weaver_out.minimal,
        &weaver_out.exec,
        &ValidateOptions {
            threads: weaver.threads,
            ..Default::default()
        },
    );
    let mut sim = sim.clone();
    if sim.threads == 0 {
        sim.threads = weaver.threads;
    }
    let schedule = PreparedSchedule::new(&weaver_out.minimal, &weaver_out.exec).run(&sim);
    let violations = {
        let _span = obs::span("weave.verify");
        schedule.trace.verify(&weaver_out.asc)
    };
    let bpel = {
        let _span = obs::span("bpel.emit");
        dscweaver_bpel::emit_string(process, &weaver_out.minimal)
    };
    Ok(VerticalOutput {
        weaver: weaver_out,
        validation,
        schedule,
        violations,
        conformance: Vec::new(),
        bpel,
    })
}

/// An incremental re-weave session over the vertical's optimization half
/// (§4.4 under evolution): weave a dependency set once, then feed edited
/// revisions and pay only for what the edit reaches. Wraps
/// [`dscweaver_core::WeaveSession`]; results are always identical to a
/// fresh [`Weaver::run`], and the report says which path (initial /
/// delta / fallback) produced them and what it recomputed.
pub struct ReweaveSession {
    inner: WeaveSession,
}

impl ReweaveSession {
    /// Opens a session around the given pipeline configuration.
    pub fn new(weaver: &Weaver) -> ReweaveSession {
        ReweaveSession {
            inner: weaver.session(),
        }
    }

    /// Weaves the given revision, incrementally when the diff against the
    /// previous revision allows (see [`dscweaver_core::ReweaveReport`]).
    pub fn reweave(
        &mut self,
        ds: &dscweaver_core::DependencySet,
    ) -> Result<ReweaveReport, VerticalError> {
        timed("weave.reweave", || self.inner.weave(ds)).map_err(VerticalError::Weaver)
    }

    /// The optimization artifacts of the last successful weave. Failed
    /// revisions (validation errors, cycles) leave the previous output —
    /// and the incremental state — intact.
    pub fn output(&self) -> Option<&WeaverOutput> {
        self.inner.output()
    }
}

/// Configuration for [`monitor_replay`]: fan one executed vertical out
/// into a fleet of live instances and stream them through the
/// `scheduler::monitor` engine.
#[derive(Clone, Copy, Debug)]
pub struct MonitorReplayConfig {
    /// Fleet size (all instances stay live for the whole stream).
    pub instances: u32,
    /// Ingest batch size.
    pub batch: usize,
    /// Generator seed.
    pub seed: u64,
    /// Per-kind violation injection rate (ordering, exclusive and
    /// conversation injections each drawn independently at this rate).
    pub rate: f64,
    /// Monitor worker threads (`0` = auto).
    pub threads: usize,
    /// Pin the verdict stream to the post-hoc oracle (one `Trace::verify`
    /// + conformance pass per instance — linear in fleet size).
    pub verify: bool,
}

impl Default for MonitorReplayConfig {
    fn default() -> Self {
        MonitorReplayConfig {
            instances: 1000,
            batch: 1024,
            seed: 42,
            rate: 0.01,
            threads: 0,
            verify: true,
        }
    }
}

/// What [`monitor_replay`] measured.
pub struct MonitorReplayReport {
    /// Fleet size.
    pub instances: u32,
    /// Events streamed.
    pub events: usize,
    /// Injected violations across kinds (an instance may carry several).
    pub injected: usize,
    /// Ingest wall time in milliseconds.
    pub ingest_ms: f64,
    /// Ingest throughput.
    pub events_per_sec: f64,
    /// Monitor state after the stream drained.
    pub stats: dscweaver_scheduler::MonitorStats,
    /// The verdicts, sorted by `(instance, kind, relation)`.
    pub verdicts: Vec<dscweaver_scheduler::Verdict>,
}

impl MonitorReplayReport {
    /// A human-readable summary (verdicts capped at ten lines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "monitor: {} instances x {} events each = {} events\n",
            self.instances,
            self.events / (self.instances.max(1) as usize),
            self.events
        ));
        out.push_str(&format!(
            "ingest:  {:.1} ms | {:.0} events/sec | {:.0} bytes/instance | peak live {}\n",
            self.ingest_ms,
            self.events_per_sec,
            self.stats.bytes as f64 / self.stats.peak_live.max(1) as f64,
            self.stats.peak_live
        ));
        out.push_str(&format!(
            "fleet:   {} injected, {} retired, {} slab rows, {} verdicts\n",
            self.injected, self.stats.retired, self.stats.slab_rows, self.stats.verdicts
        ));
        for v in self.verdicts.iter().take(10) {
            out.push_str(&format!(
                "  #{} {:?}: {}\n",
                v.instance, v.kind, v.relation
            ));
        }
        if self.verdicts.len() > 10 {
            out.push_str(&format!("  ... {} more\n", self.verdicts.len() - 10));
        }
        out
    }
}

/// Streams a fleet of instances of an executed vertical through the
/// online conformance monitor: compiles the vertical's full contract (the
/// ASC plus its WSCL conversations, projected to the activities the
/// schedule actually executed) into a monitor program, replays the
/// executed trace as the per-instance event template, injects violations
/// at the configured rate and ingests the interleaved stream. With
/// `verify` set, the sorted verdict stream is checked against the
/// post-hoc oracle before the report is returned.
pub fn monitor_replay(
    out: &VerticalOutput,
    conversations: &[(Conversation, ServiceBinding)],
    cfg: &MonitorReplayConfig,
) -> Result<MonitorReplayReport, String> {
    use dscweaver_scheduler::{EventKind, MonitorConfig, MonitorProgram, MonitorState};
    use dscweaver_workloads::eventlog::{base_sequence, event_log, EventLogParams};

    let _span = obs::span("monitor.replay");
    // Project the contract to what actually ran: dead-path activities are
    // dropped, and the compiler's tolerance then skips every relation,
    // exclusive or conversation interaction touching them (the same
    // vacuousness the post-hoc checkers apply).
    let mut cs = out.weaver.asc.clone();
    cs.activities = out
        .schedule
        .trace
        .events
        .iter()
        .filter(|e| e.kind != EventKind::Skip)
        .map(|e| e.activity.clone())
        .collect();
    let program = MonitorProgram::compile(&cs, conversations).map_err(|e| e.to_string())?;
    let base = base_sequence(&program, &out.schedule.trace)?;
    let log = event_log(
        &program,
        &base,
        &EventLogParams {
            instances: cfg.instances.max(1),
            seed: cfg.seed,
            ordering_rate: cfg.rate,
            exclusive_rate: cfg.rate,
            conversation_rate: cfg.rate,
            ..EventLogParams::default()
        },
    );
    let mut state = MonitorState::new(
        &program,
        &MonitorConfig {
            threads: cfg.threads,
            shards: 0,
            capacity: cfg.instances as usize,
        },
    );
    let mut verdicts = Vec::new();
    let t0 = std::time::Instant::now();
    for chunk in log.events.chunks(cfg.batch.max(1)) {
        verdicts.extend(state.ingest(chunk));
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-12);
    verdicts.sort();
    if cfg.verify {
        let oracle =
            dscweaver_scheduler::oracle_verdicts(&program, &cs, conversations, &log.events);
        if verdicts != oracle {
            return Err(format!(
                "monitor verdicts diverge from the post-hoc oracle: {} vs {}",
                verdicts.len(),
                oracle.len()
            ));
        }
    }
    Ok(MonitorReplayReport {
        instances: cfg.instances.max(1),
        events: log.events.len(),
        injected: log.injected_total(),
        ingest_ms: secs * 1e3,
        events_per_sec: log.events.len() as f64 / secs,
        stats: state.stats(),
        verdicts,
    })
}

/// The structural (Figure-2 style) baseline for the same process, run on
/// the same engine — used for concurrency comparisons.
pub fn baseline_schedule(
    process: &Process,
    sim: &SimConfig,
) -> Result<(ConstraintSet, Schedule), dscweaver_scheduler::StructuralError> {
    let cs = dscweaver_scheduler::structural_constraints(process)?;
    let exec = dscweaver_core::ExecConditions::derive(&cs);
    let schedule = simulate(&cs, &exec, sim);
    Ok((cs, schedule))
}
