//! # dscweaver
//!
//! A production-quality Rust reproduction of **"Categorization and
//! Optimization of Synchronization Dependencies in Business Processes"**
//! (Qinyi Wu, Calton Pu, Akhil Sahai, Roger Barga — ICDE 2007).
//!
//! The paper proposes modeling synchronization in business processes as
//! explicit *dependencies* — categorized into **data**, **control**,
//! **service** and **cooperation** dimensions — instead of imperative
//! sequencing constructs. Dependencies are merged into the DSCL constraint
//! language, translated past external service nodes, and optimized to a
//! *minimal dependency set* that preserves execution semantics while
//! minimizing monitoring cost and maximizing concurrency.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Role |
//! |---|---|---|
//! | [`graph`] | `dscweaver-graph` | graphs, condition-annotated closures (Def. 3), reduction |
//! | [`xml`] | `dscweaver-xml` | minimal XML reader/writer |
//! | [`model`] | `dscweaver-model` | process AST, DSL, CFG, renderings |
//! | [`pdg`] | `dscweaver-pdg` | data/control dependency extraction (§3.1) |
//! | [`dscl`] | `dscweaver-dscl` | the DSCL constraint language (§4.1) |
//! | [`wscl`] | `dscweaver-wscl` | service conversations → service dependencies (§3.2) |
//! | [`core`] | `dscweaver-core` | categorization, merge (§4.2), translation (§4.3), minimization (§4.4) |
//! | [`obs`] | `dscweaver-obs` | zero-dependency tracing/metrics: phase spans, worker lanes, Chrome-trace export |
//! | [`petri`] | `dscweaver-petri` | colored Petri nets, validation (§4.1) |
//! | [`scheduler`] | `dscweaver-scheduler` | dataflow DES engine, constructs baseline, threaded executor |
//! | [`serve`] | `dscweaver-serve` | multi-tenant weaver daemon (`dscw serve`), warm prepared-artifact cache |
//! | [`bpel`] | `dscweaver-bpel` | BPEL generation, parsing, structure recovery |
//! | [`workloads`] | `dscweaver-workloads` | the Purchasing & Deployment processes, synthetic generators |
//!
//! ## Quick start
//!
//! ```
//! use dscweaver::core::Weaver;
//! use dscweaver::workloads::purchasing_dependencies;
//!
//! // Table 1 → Figure 7 → Figure 8 → Figure 9, in four lines.
//! let deps = purchasing_dependencies();               // 40 dependencies
//! let out = Weaver::new().run(&deps).unwrap();
//! assert_eq!(out.sc.constraint_count(), 40);          // merged SC
//! assert_eq!(out.minimal.constraint_count(), 17);     // minimal set
//! assert_eq!(out.total_removed(), 23);                // Table 2
//! ```

pub use dscweaver_bpel as bpel;
pub use dscweaver_core as core;
pub use dscweaver_dscl as dscl;
pub use dscweaver_graph as graph;
pub use dscweaver_model as model;
pub use dscweaver_obs as obs;
pub use dscweaver_pdg as pdg;
pub use dscweaver_petri as petri;
pub use dscweaver_scheduler as scheduler;
pub use dscweaver_serve as serve;
pub use dscweaver_workloads as workloads;
pub use dscweaver_wscl as wscl;
pub use dscweaver_xml as xml;

pub mod vertical;

/// Commonly used items.
pub mod prelude {
    pub use crate::core::{
        Dependency, DependencySet, EdgeOrder, EquivalenceMode, ExecConditions, Weaver,
        WeaverOutput,
    };
    pub use crate::dscl::{ActivityState, Condition, ConstraintSet, Origin, Relation, StateRef};
    pub use crate::model::{parse_process, Activity, Construct, Process};
    pub use crate::scheduler::{simulate, SimConfig};
    pub use crate::vertical::{weave, ReweaveSession, VerticalOutput};
}
