//! End-to-end integration tests on the paper's running example: the full
//! DSCWeaver vertical over the Purchasing process, checked against every
//! number the paper reports.

use dscweaver::core::{EdgeOrder, EquivalenceMode, Weaver};
use dscweaver::scheduler::{DurationModel, SimConfig};
use dscweaver::vertical::{baseline_schedule, weave, weave_dependencies, VerticalInput};
use dscweaver::workloads::purchasing::{EXPECTED_MINIMAL, PURCHASING_DSL};
use dscweaver::workloads::{
    purchasing_conversations, purchasing_cooperation, purchasing_dependencies,
    purchasing_process,
};
use std::collections::BTreeMap;

/// Realistic-ish virtual durations: local steps fast, service callbacks
/// slow (the receive waits out the remote latency).
fn purchasing_sim(branch: &str) -> SimConfig {
    let mut durations: BTreeMap<String, u64> = BTreeMap::new();
    for (a, d) in [
        ("recClient_po", 1),
        ("invCredit_po", 2),
        ("recCredit_au", 40), // Credit service latency
        ("if_au", 1),
        ("invPurchase_po", 2),
        ("invPurchase_si", 2),
        ("recPurchase_oi", 60), // Purchase service latency
        ("invShip_po", 2),
        ("recShip_si", 50), // Ship service latency
        ("recShip_ss", 20),
        ("invProduction_po", 2),
        ("invProduction_ss", 2),
        ("set_oi", 1),
        ("replyClient_oi", 2),
    ] {
        durations.insert(a.into(), d);
    }
    let mut cfg = SimConfig {
        durations: DurationModel::with_overrides(1, durations),
        oracle: BTreeMap::new(),
        workers: None,
        threads: 0,
    };
    cfg.oracle.insert("if_au".into(), branch.into());
    cfg
}

#[test]
fn vertical_from_first_principles() {
    // Extraction path: process + WSCL + cooperation, then the full
    // vertical. (The extracted set lacks Table 1's analyst-added
    // unconditional control entry, so the minimal set here is the same 17
    // minus nothing — that entry is removed by optimization anyway.)
    let process = purchasing_process();
    let conversations = purchasing_conversations();
    let cooperation = purchasing_cooperation();
    let out = weave(&VerticalInput {
        process: &process,
        conversations: &conversations,
        cooperation: &cooperation,
        weaver: Weaver::new(),
        sim: purchasing_sim("T"),
    })
    .unwrap();
    assert!(out.ok(), "{}", out.report());
    assert_eq!(out.weaver.sc.constraint_count(), 39, "Table 1 minus 1");
    assert_eq!(out.weaver.minimal.constraint_count(), 17, "Figure 9");
    assert!(out.validation.ok());
    assert!(out.schedule.completed());
    assert!(out.violations.is_empty());
    assert!(out.bpel.contains("<link name=\"l0\"/>"));
}

#[test]
fn canonical_table1_vertical_both_branches() {
    let process = purchasing_process();
    let ds = purchasing_dependencies();
    for branch in ["T", "F"] {
        let out = weave_dependencies(&process, &ds, &Weaver::new(), &purchasing_sim(branch))
            .unwrap();
        assert!(out.ok(), "branch {branch}: {}", out.report());
        assert_eq!(out.weaver.total_removed(), 23, "Table 2");
        if branch == "F" {
            // Dead path: the whole T-side is skipped, the invoice is the
            // failure notice.
            assert!(out.schedule.trace.skipped("invPurchase_po"));
            assert!(out.schedule.trace.skipped("recShip_ss"));
            assert!(out.schedule.trace.executed("set_oi"));
        } else {
            assert!(out.schedule.trace.skipped("set_oi"));
            assert!(out.schedule.trace.executed("recPurchase_oi"));
        }
        assert!(out.schedule.trace.executed("replyClient_oi"));
    }
}

#[test]
fn optimized_schedule_beats_figure2_baseline() {
    // The paper's over-specification claim, §2: the sequencing between
    // invProduction_po and invProduction_ss is required by no dependency.
    // The structural baseline serializes each flow branch; the optimized
    // dataflow schedule lets invProduction_ss wait only on recShip_ss.
    let process = purchasing_process();
    let sim = purchasing_sim("T");
    let (baseline_cs, baseline) = baseline_schedule(&process, &sim).unwrap();
    assert!(baseline.completed(), "stuck: {:?}", baseline.stuck);

    let ds = purchasing_dependencies();
    let out = weave_dependencies(&process, &ds, &Weaver::new(), &sim).unwrap();
    assert!(out.ok());

    let opt = &out.schedule.trace;
    let base = &baseline.trace;
    assert!(
        opt.makespan() <= base.makespan(),
        "optimized {} vs baseline {}",
        opt.makespan(),
        base.makespan()
    );
    assert!(
        opt.max_concurrency() >= base.max_concurrency(),
        "optimized {} vs baseline {}",
        opt.max_concurrency(),
        base.max_concurrency()
    );
    // Both traces satisfy the full dependency constraints.
    assert!(base.verify(&out.weaver.asc).is_empty(),
        "the baseline over-specifies but must not violate the dependencies");
    // The baseline carries strictly more constraints than the minimal set.
    assert!(baseline_cs.constraint_count() > out.weaver.minimal.constraint_count());
    // And strictly more monitoring work.
    assert!(baseline.constraint_checks > out.schedule.constraint_checks);
}

#[test]
fn minimal_set_monitoring_cost_vs_unoptimized() {
    // Running the SAME dataflow engine with the full (pre-minimization)
    // ASC vs the minimal set: identical makespan, fewer checks.
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    let sim = purchasing_sim("T");
    let full = dscweaver::scheduler::simulate(&out.asc, &out.exec, &sim);
    let minimal = dscweaver::scheduler::simulate(&out.minimal, &out.exec, &sim);
    assert!(full.completed() && minimal.completed());
    assert_eq!(full.trace.makespan(), minimal.trace.makespan());
    assert!(
        minimal.constraint_checks < full.constraint_checks,
        "minimal {} vs full {}",
        minimal.constraint_checks,
        full.constraint_checks
    );
    // Both traces satisfy the full ASC.
    assert!(minimal.trace.verify(&out.asc).is_empty());
    assert!(full.trace.verify(&out.asc).is_empty());
}

#[test]
fn threaded_execution_of_minimal_set() {
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    for branch in ["T", "F"] {
        let oracle: BTreeMap<String, String> =
            [("if_au".to_string(), branch.to_string())].into();
        for _ in 0..10 {
            let run = dscweaver::scheduler::execute_threaded(
                &out.minimal,
                &out.exec,
                &oracle,
                std::time::Duration::from_secs(10),
            );
            assert!(run.stuck.is_empty(), "stuck: {:?}", run.stuck);
            let violations = run.trace.verify(&out.asc);
            assert!(violations.is_empty(), "branch {branch}: {violations:?}");
        }
    }
}

#[test]
fn petri_validation_of_all_stages() {
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    for (name, cs) in [("ASC", &out.asc), ("minimal", &out.minimal)] {
        let report = dscweaver::petri::validate_default(cs, &out.exec);
        assert!(report.ok(), "{name}: {report:#?}");
        assert_eq!(report.assignments_checked, 2, "{name}: T and F");
    }
}

#[test]
fn seeded_conflict_is_caught_by_validation() {
    // Add a contradictory cooperation dependency: reply before receiving
    // the order. The optimizer reports the cycle.
    let mut ds = purchasing_dependencies();
    ds.push(dscweaver::core::Dependency::cooperation(
        "replyClient_oi",
        "recClient_po",
    ));
    let err = Weaver::new().run(&ds).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cycle"), "{msg}");
    assert!(msg.contains("replyClient_oi"), "{msg}");
}

#[test]
fn bpel_round_trip_carries_minimal_scheme() {
    let process = purchasing_process();
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    let xml = dscweaver::bpel::emit_string(&process, &out.minimal);
    let back = dscweaver::bpel::parse_bpel(&xml).unwrap();
    assert_eq!(back.activities, out.minimal.activities);
    let strip = |cs: &dscweaver::dscl::ConstraintSet| -> Vec<String> {
        let mut v: Vec<String> = cs.happen_befores().map(|r| r.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(strip(&back), strip(&out.minimal));
}

#[test]
fn figure9_minimal_edges_are_stable_across_orders() {
    // The minimal set is not unique in general, but its SIZE is stable
    // across removal orders on this process, and the default order
    // reproduces Figure 9 exactly.
    let ds = purchasing_dependencies();
    for order in [EdgeOrder::Given, EdgeOrder::ReverseGiven, EdgeOrder::default()] {
        let weaver = Weaver {
            mode: EquivalenceMode::ExecutionAware,
            order,
            ..Weaver::default()
        };
        let out = weaver.run(&ds).unwrap();
        assert_eq!(out.minimal.constraint_count(), 17, "order changed the size");
    }
}

#[test]
fn strict_mode_keeps_the_three_guard_protected_edges() {
    // Under the literal (annotation-exact) reading of Definition 3, the
    // three recClient_po data edges into the branch and the unconditional
    // if_au → replyClient_oi entry survive: 17 + 3 + 1 = 21... measured:
    let ds = purchasing_dependencies();
    let strict = Weaver {
        mode: EquivalenceMode::Strict,
        ..Weaver::default()
    }
    .run(&ds)
    .unwrap();
    let aware = Weaver::new().run(&ds).unwrap();
    assert!(strict.minimal.constraint_count() > aware.minimal.constraint_count());
    assert_eq!(strict.minimal.constraint_count(), 21);
}

#[test]
fn structure_recovery_on_minimal_set() {
    // The Purchasing minimal set has cross-branch links and conditional
    // edges: not fully series-parallel, but recovery must preserve all 14
    // activities and express the remainder as links.
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    let process = purchasing_process();
    let rec = dscweaver::bpel::recover_structure(&out.minimal, Some(&process));
    let mut names: Vec<String> = rec
        .root
        .activities()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 14, "every activity exactly once");
    assert!(!rec.fully_structured);
    assert!(!rec.links.is_empty());
}

#[test]
fn figure_renderings_cover_all_edges() {
    use dscweaver::dscl::SyncGraph;
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    // Figure 7 (merged SC).
    let mut sc = out.sc.clone();
    sc.desugar_happen_together();
    let fig7 = SyncGraph::build(&sc).render();
    assert_eq!(fig7.lines().count(), 40);
    assert!(fig7.contains("F(invPurchase_po) -> Purchase_1  (service)"));
    // Figure 8 (ASC with bold/translated edges).
    let fig8 = SyncGraph::build(&out.asc).render();
    assert_eq!(fig8.lines().count(), 31);
    assert!(fig8.contains("F(invPurchase_po) -> S(invPurchase_si)  (translated)"));
    // Figure 9 (minimal).
    let fig9 = SyncGraph::build(&out.minimal).render();
    assert_eq!(fig9.lines().count(), 17);
    for (f, t, _) in EXPECTED_MINIMAL {
        assert!(
            fig9.contains(&format!("({f})")) && fig9.contains(&format!("({t})")),
            "missing {f}->{t}"
        );
    }
    // Figures 1–2 renderings parse back.
    let p = purchasing_process();
    let fig2 = dscweaver::model::render_constructs(&p);
    assert_eq!(dscweaver::model::parse_process(&fig2).unwrap(), p);
    let fig1 = dscweaver::model::render_flowchart(&p);
    assert!(fig1.contains("◇ if_au"));
    let _ = PURCHASING_DSL;
}
