//! Tier-1 documentation gate: `cargo doc` must be warning-free across the
//! workspace and every runnable crate-doc example must pass, fully
//! offline.
//!
//! The nested cargo invocations use their own `target/docs-gate` build
//! directory: the outer `cargo test` holds the lock on `target/` for its
//! whole run, so sharing it would deadlock. The extra directory costs one
//! debug build of the (dependency-free) workspace and is reused across
//! runs.

use std::path::Path;
use std::process::Command;

fn cargo_in_repo(args: &[&str]) -> std::process::Output {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    Command::new(env!("CARGO"))
        .args(args)
        .arg("--offline")
        .current_dir(repo)
        .env("CARGO_TARGET_DIR", repo.join("target").join("docs-gate"))
        .output()
        .expect("cargo invocation")
}

#[test]
fn rustdoc_is_warning_free_and_doc_tests_pass() {
    let doc = {
        let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
        Command::new(env!("CARGO"))
            .args(["doc", "--no-deps", "--workspace", "--offline"])
            .current_dir(repo)
            .env("CARGO_TARGET_DIR", repo.join("target").join("docs-gate"))
            .env("RUSTDOCFLAGS", "-D warnings")
            .output()
            .expect("cargo doc")
    };
    assert!(
        doc.status.success(),
        "cargo doc --no-deps --workspace failed:\n{}",
        String::from_utf8_lossy(&doc.stderr)
    );

    let doctests = cargo_in_repo(&["test", "-q", "--doc", "--workspace"]);
    assert!(
        doctests.status.success(),
        "cargo test --doc --workspace failed:\n{}\n{}",
        String::from_utf8_lossy(&doctests.stdout),
        String::from_utf8_lossy(&doctests.stderr)
    );
}
