//! Property-based, cross-crate invariants: for arbitrary generated
//! workloads, the optimizer + validator + scheduler must uphold the
//! paper's contracts. Cases are generated with the in-repo deterministic
//! PRNG (`dscweaver-prng`) — every failure reproduces from the printed
//! case index.

use dscweaver::core::{minimize, EdgeOrder, EquivalenceMode, Weaver};
use dscweaver::dscl::SyncGraph;
use dscweaver::graph::transitive_closure;
use dscweaver::scheduler::{simulate, SimConfig};
use dscweaver::workloads::{fork_join, layered, service_mesh, LayeredParams};
use dscweaver_prng::Rng;

/// A random layered workload; mirrors the old proptest strategy's ranges.
fn random_layered(rng: &mut Rng) -> dscweaver::core::DependencySet {
    layered(&LayeredParams {
        width: 2 + rng.random_range(3),
        depth: 2 + rng.random_range(3),
        density: 0.5,
        redundant: rng.random_range(12),
        guards: rng.random_range(3),
        seed: rng.next_u64(),
    })
}

/// The pipeline's minimal set is transitive-equivalent to the ASC:
/// the plain reachability over internal activities is identical, and
/// re-minimizing removes nothing (local minimality, Definition 6).
#[test]
fn minimal_set_invariants() {
    let mut rng = Rng::seed_from_u64(0xA001);
    for case in 0..48 {
        let ds = random_layered(&mut rng);
        let out = Weaver::new().run(&ds).unwrap();
        // Local minimality.
        let again = minimize(
            &out.minimal,
            &out.exec,
            EquivalenceMode::ExecutionAware,
            &EdgeOrder::default(),
        )
        .unwrap();
        assert!(
            again.removed.is_empty(),
            "case {case}: re-removal: {:?}",
            again.removed
        );

        // Reachability preservation (weaker than the full annotated check,
        // but independently computed here as an oracle).
        let g_full = SyncGraph::build(&out.asc);
        let g_min = SyncGraph::build(&out.minimal);
        let c_full = transitive_closure(&g_full.graph);
        let c_min = transitive_closure(&g_min.graph);
        // Node ids coincide: both graphs are built from the same activity
        // set in the same order.
        assert_eq!(g_full.graph.node_count(), g_min.graph.node_count());
        for n in g_full.graph.node_ids() {
            let full_row: Vec<usize> = c_full.row(n).iter().collect();
            let min_row: Vec<usize> = c_min.row(n).iter().collect();
            assert_eq!(full_row, min_row, "case {case}: closure changed at {n:?}");
        }
    }
}

/// Scheduling with the minimal set satisfies every constraint of the
/// full ASC, across all branch assignments.
#[test]
fn minimal_schedule_satisfies_full_asc() {
    let mut rng = Rng::seed_from_u64(0xA002);
    for case in 0..48 {
        let ds = random_layered(&mut rng);
        let flip = rng.random_bool(0.5);
        let out = Weaver::new().run(&ds).unwrap();
        let mut sim = SimConfig::default();
        for g in out.asc.domains.keys() {
            sim.oracle
                .insert(g.clone(), if flip { "T".into() } else { "F".into() });
        }
        let sched = simulate(&out.minimal, &out.exec, &sim);
        assert!(sched.completed(), "case {case}: stuck: {:?}", sched.stuck);
        let violations = sched.trace.verify(&out.asc);
        assert!(violations.is_empty(), "case {case}: {violations:?}");
        // And the makespans of minimal vs full agree.
        let full = simulate(&out.asc, &out.exec, &sim);
        assert_eq!(full.trace.makespan(), sched.trace.makespan(), "case {case}");
        assert!(sched.constraint_checks <= full.constraint_checks);
    }
}

/// Petri validation passes on optimizer output and the scheduler's
/// completion agrees with the net's quiescence verdict.
#[test]
fn petri_agrees_with_scheduler() {
    let mut rng = Rng::seed_from_u64(0xA003);
    for case in 0..32 {
        let ds = random_layered(&mut rng);
        let out = Weaver::new().run(&ds).unwrap();
        let report = dscweaver::petri::validate_default(&out.minimal, &out.exec);
        assert!(report.ok(), "case {case}: {report:#?}");
    }
}

/// Strict ⊇ ExecutionAware ⊇ Reachability: more permissive modes never
/// keep more constraints.
#[test]
fn mode_monotonicity() {
    let mut rng = Rng::seed_from_u64(0xA004);
    for case in 0..32 {
        let ds = random_layered(&mut rng);
        let count = |mode: EquivalenceMode| {
            Weaver {
                mode,
                order: EdgeOrder::default(),
                ..Weaver::default()
            }
            .run(&ds)
            .unwrap()
            .minimal
            .constraint_count()
        };
        let strict = count(EquivalenceMode::Strict);
        let aware = count(EquivalenceMode::ExecutionAware);
        let reach = count(EquivalenceMode::Reachability);
        assert!(strict >= aware, "case {case}: strict {strict} < aware {aware}");
        assert!(aware >= reach, "case {case}: aware {aware} < reach {reach}");
    }
}

/// Service translation drops every service node and preserves the
/// closure projected onto internal activities.
#[test]
fn translation_preserves_internal_reachability() {
    let mut rng = Rng::seed_from_u64(0xA005);
    for case in 0..24 {
        let n = 1 + rng.random_range(11);
        let ds = service_mesh(n, rng.next_u64());
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.asc.services.is_empty());
        // Internal-to-internal reachability of SC ⊆ ASC (the translation
        // may only realize, never lose, orderings between internal
        // activities).
        let mut sc = out.sc.clone();
        sc.desugar_happen_together();
        let g_sc = SyncGraph::build(&sc);
        let g_asc = SyncGraph::build(&out.asc);
        let c_sc = transitive_closure(&g_sc.graph);
        let c_asc = transitive_closure(&g_asc.graph);
        use dscweaver::dscl::ActivityState;
        for a in &out.asc.activities {
            for b in &out.asc.activities {
                let (sa, sb) = (
                    g_sc.state_node(a, ActivityState::Finish).unwrap(),
                    g_sc.state_node(b, ActivityState::Start).unwrap(),
                );
                let (ta, tb) = (
                    g_asc.state_node(a, ActivityState::Finish).unwrap(),
                    g_asc.state_node(b, ActivityState::Start).unwrap(),
                );
                if c_sc.reaches(sa, sb) {
                    assert!(
                        c_asc.reaches(ta, tb),
                        "case {case}: SC orders {a} -> {b} but ASC does not"
                    );
                }
            }
        }
    }
}

/// Fork-join: the skeleton always survives, injected redundancy always
/// goes, regardless of parameters.
#[test]
fn fork_join_reduction_exact() {
    let mut rng = Rng::seed_from_u64(0xA006);
    for case in 0..48 {
        let width = 1 + rng.random_range(5);
        let chain = 1 + rng.random_range(5);
        let redundant = rng.random_range(15);
        let ds = fork_join(width, chain, redundant, rng.next_u64());
        let out = Weaver::new().run(&ds).unwrap();
        assert_eq!(
            out.minimal.constraint_count(),
            width * (chain + 1),
            "case {case}"
        );
        assert!(out.total_removed() >= redundant, "case {case}");
    }
}

/// Every pipeline stage's constraint set round-trips through the DSCL
/// text syntax.
#[test]
fn dscl_round_trip_all_stages() {
    let mut rng = Rng::seed_from_u64(0xA007);
    for case in 0..32 {
        let ds = random_layered(&mut rng);
        let out = Weaver::new().run(&ds).unwrap();
        let mut sc = out.sc.clone();
        sc.desugar_happen_together();
        for cs in [&sc, &out.asc, &out.minimal] {
            let text = cs.to_dscl();
            let back = dscweaver::dscl::parse_constraints(&text).unwrap();
            assert_eq!(&back, cs, "case {case}");
        }
    }
}

/// The threaded executor's traces satisfy the full ASC too (real
/// concurrency, nondeterministic interleavings).
#[test]
fn threaded_agrees() {
    let mut rng = Rng::seed_from_u64(0xA008);
    for case in 0..16 {
        let ds = layered(&LayeredParams {
            width: 3,
            depth: 3,
            density: 0.5,
            redundant: 4,
            guards: 1,
            seed: rng.next_u64(),
        });
        let out = Weaver::new().run(&ds).unwrap();
        let oracle: std::collections::BTreeMap<String, String> = out
            .asc
            .domains
            .keys()
            .map(|g| (g.clone(), "T".to_string()))
            .collect();
        let run = dscweaver::scheduler::execute_threaded(
            &out.minimal,
            &out.exec,
            &oracle,
            std::time::Duration::from_secs(10),
        );
        assert!(run.stuck.is_empty(), "case {case}: stuck: {:?}", run.stuck);
        let violations = run.trace.verify(&out.asc);
        assert!(violations.is_empty(), "case {case}: {violations:?}");
    }
}
