//! Property-based, cross-crate invariants: for arbitrary generated
//! workloads, the optimizer + validator + scheduler must uphold the
//! paper's contracts.

use dscweaver::core::{
    minimize, EdgeOrder, EquivalenceMode, Weaver,
};
use dscweaver::dscl::SyncGraph;
use dscweaver::graph::transitive_closure;
use dscweaver::scheduler::{simulate, SimConfig};
use dscweaver::workloads::{fork_join, layered, service_mesh, LayeredParams};
use proptest::prelude::*;

fn layered_strategy() -> impl Strategy<Value = dscweaver::core::DependencySet> {
    (2usize..5, 2usize..5, 0usize..12, 0usize..3, any::<u64>()).prop_map(
        |(width, depth, redundant, guards, seed)| {
            layered(&LayeredParams {
                width,
                depth,
                density: 0.5,
                redundant,
                guards,
                seed,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipeline's minimal set is transitive-equivalent to the ASC:
    /// the plain reachability over internal activities is identical, and
    /// re-minimizing removes nothing (local minimality, Definition 6).
    #[test]
    fn minimal_set_invariants(ds in layered_strategy()) {
        let out = Weaver::new().run(&ds).unwrap();
        // Local minimality.
        let again = minimize(
            &out.minimal,
            &out.exec,
            EquivalenceMode::ExecutionAware,
            &EdgeOrder::default(),
        )
        .unwrap();
        prop_assert!(again.removed.is_empty(), "re-removal: {:?}", again.removed);

        // Reachability preservation (weaker than the full annotated check,
        // but independently computed here as an oracle).
        let g_full = SyncGraph::build(&out.asc);
        let g_min = SyncGraph::build(&out.minimal);
        let c_full = transitive_closure(&g_full.graph);
        let c_min = transitive_closure(&g_min.graph);
        // Node ids coincide: both graphs are built from the same activity
        // set in the same order.
        prop_assert_eq!(g_full.graph.node_count(), g_min.graph.node_count());
        for n in g_full.graph.node_ids() {
            let full_row: Vec<usize> = c_full.row(n).iter().collect();
            let min_row: Vec<usize> = c_min.row(n).iter().collect();
            prop_assert_eq!(&full_row, &min_row, "closure changed at {:?}", n);
        }
    }

    /// Scheduling with the minimal set satisfies every constraint of the
    /// full ASC, across all branch assignments.
    #[test]
    fn minimal_schedule_satisfies_full_asc(ds in layered_strategy(), flip in any::<bool>()) {
        let out = Weaver::new().run(&ds).unwrap();
        let mut sim = SimConfig::default();
        for g in out.asc.domains.keys() {
            sim.oracle.insert(g.clone(), if flip { "T".into() } else { "F".into() });
        }
        let sched = simulate(&out.minimal, &out.exec, &sim);
        prop_assert!(sched.completed(), "stuck: {:?}", sched.stuck);
        let violations = sched.trace.verify(&out.asc);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // And the makespans of minimal vs full agree.
        let full = simulate(&out.asc, &out.exec, &sim);
        prop_assert_eq!(full.trace.makespan(), sched.trace.makespan());
        prop_assert!(sched.constraint_checks <= full.constraint_checks);
    }

    /// Petri validation passes on optimizer output and the scheduler's
    /// completion agrees with the net's quiescence verdict.
    #[test]
    fn petri_agrees_with_scheduler(ds in layered_strategy()) {
        let out = Weaver::new().run(&ds).unwrap();
        let report = dscweaver::petri::validate_default(&out.minimal, &out.exec);
        prop_assert!(report.ok(), "{report:#?}");
    }

    /// Strict ⊇ ExecutionAware ⊇ Reachability: more permissive modes never
    /// keep more constraints.
    #[test]
    fn mode_monotonicity(ds in layered_strategy()) {
        let count = |mode: EquivalenceMode| {
            Weaver { mode, order: EdgeOrder::default() }
                .run(&ds)
                .unwrap()
                .minimal
                .constraint_count()
        };
        let strict = count(EquivalenceMode::Strict);
        let aware = count(EquivalenceMode::ExecutionAware);
        let reach = count(EquivalenceMode::Reachability);
        prop_assert!(strict >= aware, "strict {strict} < aware {aware}");
        prop_assert!(aware >= reach, "aware {aware} < reach {reach}");
    }

    /// Service translation drops every service node and preserves the
    /// closure projected onto internal activities.
    #[test]
    fn translation_preserves_internal_reachability(
        n in 1usize..12, seed in any::<u64>()
    ) {
        let ds = service_mesh(n, seed);
        let out = Weaver::new().run(&ds).unwrap();
        prop_assert!(out.asc.services.is_empty());
        // Internal-to-internal reachability of SC ⊆ ASC (the translation
        // may only realize, never lose, orderings between internal
        // activities).
        let mut sc = out.sc.clone();
        sc.desugar_happen_together();
        let g_sc = SyncGraph::build(&sc);
        let g_asc = SyncGraph::build(&out.asc);
        let c_sc = transitive_closure(&g_sc.graph);
        let c_asc = transitive_closure(&g_asc.graph);
        use dscweaver::dscl::ActivityState;
        for a in &out.asc.activities {
            for b in &out.asc.activities {
                let (sa, sb) = (
                    g_sc.state_node(a, ActivityState::Finish).unwrap(),
                    g_sc.state_node(b, ActivityState::Start).unwrap(),
                );
                let (ta, tb) = (
                    g_asc.state_node(a, ActivityState::Finish).unwrap(),
                    g_asc.state_node(b, ActivityState::Start).unwrap(),
                );
                if c_sc.reaches(sa, sb) {
                    prop_assert!(
                        c_asc.reaches(ta, tb),
                        "SC orders {a} -> {b} but ASC does not"
                    );
                }
            }
        }
    }

    /// Fork-join: the skeleton always survives, injected redundancy always
    /// goes, regardless of parameters.
    #[test]
    fn fork_join_reduction_exact(
        width in 1usize..6, chain in 1usize..6, redundant in 0usize..15, seed in any::<u64>()
    ) {
        let ds = fork_join(width, chain, redundant, seed);
        let out = Weaver::new().run(&ds).unwrap();
        prop_assert_eq!(out.minimal.constraint_count(), width * (chain + 1));
        prop_assert!(out.total_removed() >= redundant);
    }

    /// Every pipeline stage's constraint set round-trips through the DSCL
    /// text syntax.
    #[test]
    fn dscl_round_trip_all_stages(ds in layered_strategy()) {
        let out = Weaver::new().run(&ds).unwrap();
        let mut sc = out.sc.clone();
        sc.desugar_happen_together();
        for cs in [&sc, &out.asc, &out.minimal] {
            let text = cs.to_dscl();
            let back = dscweaver::dscl::parse_constraints(&text).unwrap();
            prop_assert_eq!(&back, cs);
        }
    }

    /// The threaded executor's traces satisfy the full ASC too (real
    /// concurrency, nondeterministic interleavings).
    #[test]
    fn threaded_agrees(seed in any::<u64>()) {
        let ds = layered(&LayeredParams {
            width: 3,
            depth: 3,
            density: 0.5,
            redundant: 4,
            guards: 1,
            seed,
        });
        let out = Weaver::new().run(&ds).unwrap();
        let oracle: std::collections::BTreeMap<String, String> = out
            .asc
            .domains
            .keys()
            .map(|g| (g.clone(), "T".to_string()))
            .collect();
        let run = dscweaver::scheduler::execute_threaded(
            &out.minimal,
            &out.exec,
            &oracle,
            std::time::Duration::from_secs(10),
        );
        prop_assert!(run.stuck.is_empty(), "stuck: {:?}", run.stuck);
        let violations = run.trace.verify(&out.asc);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}
