//! Integration tests for the extension features: loop unrolling through
//! the full pipeline, worker-limited scheduling, structured BPEL
//! emission, DSCL workflow patterns end-to-end, and DOT exports.

use dscweaver::core::{ExecConditions, Weaver};
use dscweaver::dscl::{patterns, ConstraintSet};
use dscweaver::model::{parse_process, unroll_whiles};
use dscweaver::scheduler::{simulate, SimConfig};
use dscweaver::workloads::{purchasing_dependencies, purchasing_process};

#[test]
fn unrolled_loop_through_full_vertical() {
    let p = parse_process(
        "process Retry { var po, ok;
          service Pay { ports 1 async }
          sequence {
            receive recOrder from Client writes po;
            while tryAgain reads ok {
              sequence {
                invoke invPay on Pay port 1 reads po;
                receive recPay from Pay writes ok;
              }
            }
            reply done to Client reads ok;
          } }",
    )
    .unwrap();
    let u = unroll_whiles(&p, 3);
    assert_eq!(u.loops_expanded, 1);
    assert!(u.process.validate().is_empty());

    // Service dependencies need per-iteration *correlation*: each unrolled
    // invoke/receive pair is its own conversation instance. The naive
    // declaration-derived plumbing would wire every invoke to every
    // receive of the Pay service (and create a spurious cycle across
    // iterations — the classic BPEL correlation-set problem), so we state
    // the correlated callback orderings explicitly as direct service
    // dependencies between the paired activities.
    let mut ds = dscweaver::pdg::extract(
        &u.process,
        dscweaver::pdg::ExtractOptions {
            data: true,
            control: true,
            services_from_decls: false,
        },
    );
    for (inv, rec) in [
        ("invPay", "recPay"),
        ("invPay#1_1", "recPay#1_1"),
        ("invPay#1_2", "recPay#1_2"),
    ] {
        ds.push(dscweaver::core::Dependency::service(inv, rec));
    }
    let out = Weaver::new().run(&ds).unwrap();
    assert!(out.minimal.validate().is_empty());

    // Petri validation explores every retry depth (2^4 condition
    // assignments over the four unrolled guard evaluations).
    let report = dscweaver::petri::validate_default(&out.minimal, &out.exec);
    assert!(report.ok(), "{report:#?}");
    assert_eq!(report.assignments_checked, 16);

    // Execute with "retry twice, then stop": tryAgain=T, #1_1=T, #1_2=F.
    let mut sim = SimConfig::default();
    sim.oracle.insert("tryAgain".into(), "T".into());
    sim.oracle.insert("tryAgain#1_1".into(), "T".into());
    sim.oracle.insert("tryAgain#1_2".into(), "F".into());
    sim.oracle.insert("tryAgain#1_3".into(), "F".into());
    let s = simulate(&out.minimal, &out.exec, &sim);
    assert!(s.completed(), "stuck: {:?}", s.stuck);
    assert!(s.trace.executed("invPay"));
    assert!(s.trace.executed("invPay#1_1"));
    assert!(s.trace.skipped("invPay#1_2"), "third iteration not taken");
    assert!(s.trace.executed("done"));
    assert!(s.trace.verify(&out.asc).is_empty());
}

#[test]
fn worker_limited_purchasing() {
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    let mut base = SimConfig::default();
    base.oracle.insert("if_au".into(), "T".into());
    let unbounded = simulate(&out.minimal, &out.exec, &base);

    let mut limited = base.clone();
    limited.workers = Some(1);
    let serial = simulate(&out.minimal, &out.exec, &limited);
    assert!(serial.completed());
    assert_eq!(serial.trace.max_concurrency(), 1);
    assert!(serial.trace.makespan() >= unbounded.trace.makespan());
    // Constraints still hold under resource pressure.
    assert!(serial.trace.verify(&out.asc).is_empty());

    let mut two = base.clone();
    two.workers = Some(2);
    let duo = simulate(&out.minimal, &out.exec, &two);
    assert!(duo.completed());
    assert!(duo.trace.max_concurrency() <= 2);
    assert!(duo.trace.verify(&out.asc).is_empty());
}

#[test]
fn structured_bpel_for_purchasing() {
    let process = purchasing_process();
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    let xml = dscweaver::bpel::emit_structured_string(&process, &out.minimal);
    // The minimal set is not fully series-parallel (conditional edges +
    // cross-branch sync), so links remain, but structure emerges: at least
    // one nested sequence.
    assert!(xml.contains("<sequence>"), "{xml}");
    assert!(xml.contains("<links>"));
    // All 14 activities present.
    for a in dscweaver::workloads::purchasing::ACTIVITIES {
        assert!(xml.contains(&format!("name=\"{a}\"")), "missing {a}");
    }
}

#[test]
fn workflow_patterns_compose_and_execute() {
    // Build a process purely from patterns: split → sync → choice → merge,
    // with an interleaving pair and a milestone.
    let mut cs = ConstraintSet::new("patterns");
    for a in [
        "start", "x", "y", "join", "gate", "fast", "slow", "merge", "audit1", "audit2",
        "session", "ping",
    ] {
        cs.add_activity(a);
    }
    patterns::parallel_split(&mut cs, "start", &["x", "y"]);
    patterns::synchronization(&mut cs, &["x", "y"], "join");
    patterns::sequence(&mut cs, "join", "gate");
    patterns::exclusive_choice(&mut cs, "gate", &[("FAST", "fast"), ("SLOW", "slow")]);
    patterns::simple_merge(&mut cs, &["fast", "slow"], "merge");
    patterns::interleaved_parallel_routing(&mut cs, &["audit1", "audit2"]);
    patterns::milestone(&mut cs, "session", "ping");
    assert!(cs.validate().is_empty(), "{:?}", cs.validate());

    let exec = ExecConditions::derive(&cs);
    let report = dscweaver::petri::validate_default(&cs, &exec);
    assert!(report.ok(), "{report:#?}");

    for value in ["FAST", "SLOW"] {
        let mut sim = SimConfig::default();
        sim.oracle.insert("gate".into(), value.into());
        sim.durations.set("session", 10);
        let s = simulate(&cs, &exec, &sim);
        assert!(s.completed(), "{value}: {:?}", s.stuck);
        assert!(s.trace.verify(&cs).is_empty());
        assert!(s.trace.verify_exclusives(&cs).is_empty());
        assert_eq!(s.trace.executed("fast"), value == "FAST");
        assert_eq!(s.trace.skipped("slow"), value == "FAST");
        // Milestone: ping starts within session's lifetime.
        let ping = s.trace.occurrence(&dscweaver::dscl::StateRef::start("ping")).unwrap().0;
        let s_start = s.trace.occurrence(&dscweaver::dscl::StateRef::start("session")).unwrap().0;
        let s_fin = s.trace.occurrence(&dscweaver::dscl::StateRef::finish("session")).unwrap().0;
        assert!(s_start <= ping && ping <= s_fin);
    }
}

#[test]
fn dot_exports_render() {
    let ds = purchasing_dependencies();
    let out = Weaver::new().run(&ds).unwrap();
    let dot = dscweaver::dscl::SyncGraph::build(&out.minimal).to_dot("fig9");
    assert!(dot.starts_with("digraph \"fig9\""));
    assert!(dot.contains("F(if_au)"));
    let lowered = dscweaver::petri::lower(&out.minimal, &out.exec);
    let net_dot = lowered.net.to_dot("purchasing_net");
    assert!(net_dot.contains("shape=ellipse"));
    assert!(net_dot.contains("todo(recClient_po)"));
    let stats = lowered.net.stats();
    assert!(stats.places >= 14 * 3);
    assert_eq!(stats.initial_tokens, 14);
}
