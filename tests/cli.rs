//! End-to-end tests of the `dscw` command-line tool.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dscw"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dscw-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const PROC: &str = r#"
process Mini {
  var po, au, oi;
  service Credit { ports 1 async }
  sequence {
    receive recOrder from Client writes po;
    invoke invCheck on Credit port 1 reads po;
    receive recAuth from Credit writes au;
    switch gate reads au {
      case T { assign fulfil writes oi; }
      case F { assign refuse writes oi; }
    }
    reply done to Client reads oi;
  }
}
"#;

const COOP: &str = r#"
constraints MiniCoop {
  activities fulfil, done;
  cooperation: F(fulfil) -> S(done);
}
"#;

const WSCL: &str = r#"<Conversation name="Credit">
  <ConversationInteractions>
    <Interaction interactionType="Receive" id="check">
      <InboundXMLDocument id="Check"/>
    </Interaction>
    <Interaction interactionType="Send" id="auth">
      <OutboundXMLDocument id="Auth"/>
    </Interaction>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition><SourceInteraction href="check"/><DestinationInteraction href="auth"/></Transition>
  </ConversationTransitions>
</Conversation>"#;

#[test]
fn validate_and_optimize_and_run() {
    let proc_path = write_tmp("mini.proc", PROC);
    let coop_path = write_tmp("mini.dscl", COOP);
    let wscl_path = write_tmp("credit.xml", WSCL);
    let wscl_arg = format!("{}:check=invCheck,auth=recAuth", wscl_path.display());

    let out = bin()
        .args(["validate", proc_path.to_str().unwrap()])
        .args(["--coop", coop_path.to_str().unwrap()])
        .args(["--wscl", &wscl_arg])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("validation:   OK"), "{text}");
    assert!(text.contains("0 violations"), "{text}");

    let out = bin()
        .args(["optimize", proc_path.to_str().unwrap()])
        .args(["--coop", coop_path.to_str().unwrap()])
        .args(["--wscl", &wscl_arg])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1."));
    assert!(text.contains("Table 2."));
    assert!(text.contains("removal justifications:"), "{text}");
    // The WSCL callback translated to invCheck → recAuth.
    assert!(text.contains("translated: F(invCheck) -> S(recAuth);"), "{text}");

    let out = bin()
        .args(["run", proc_path.to_str().unwrap()])
        .args(["--coop", coop_path.to_str().unwrap()])
        .args(["--wscl", &wscl_arg])
        .args(["--branch", "gate=F"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Skip     fulfil"), "{text}");
    assert!(text.contains("Start    refuse"), "{text}");
}

#[test]
fn bpel_and_dot_outputs() {
    let proc_path = write_tmp("mini2.proc", PROC);
    let out = bin()
        .args(["bpel", proc_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<process name=\"Mini\""));
    // Emitted BPEL parses back.
    assert!(dscweaver::bpel::parse_bpel(text.trim_start_matches("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")).is_ok());

    for stage in ["sc", "asc", "minimal"] {
        let out = bin()
            .args(["dot", proc_path.to_str().unwrap(), "--stage", stage])
            .output()
            .unwrap();
        assert!(out.status.success(), "stage {stage}");
        assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
    }
}

/// `dscw run --trace` must emit Chrome trace-event JSON that the in-repo
/// parser accepts, with nested phase spans, worker lanes, and counter
/// samples — the Perfetto-loadable artifact promised by OBSERVABILITY.md.
#[test]
fn run_with_trace_emits_valid_chrome_trace() {
    let proc_path = write_tmp("mini3.proc", PROC);
    let trace_path = write_tmp("mini3.trace.json", "");
    let out = bin()
        .args(["run", proc_path.to_str().unwrap()])
        .args(["--branch", "gate=T"])
        .args(["--trace", trace_path.to_str().unwrap()])
        .args(["--profile", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace written to"), "{stderr}");
    assert!(stderr.contains("phase"), "profile summary missing: {stderr}");
    assert!(stderr.contains("weave"), "{stderr}");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = dscweaver::obs::json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let ph = |e: &dscweaver::obs::json::Json| {
        e.get("ph").and_then(|v| v.as_str()).unwrap_or("").to_string()
    };
    let name = |e: &dscweaver::obs::json::Json| {
        e.get("name").and_then(|v| v.as_str()).unwrap_or("").to_string()
    };

    // Balanced B/E pairs and at least three distinct nested phases.
    let begins: Vec<String> = events.iter().filter(|e| ph(e) == "B").map(&name).collect();
    let ends = events.iter().filter(|e| ph(e) == "E").count();
    assert_eq!(begins.len(), ends, "unbalanced spans");
    for phase in ["weave", "weaver.run", "minimize", "petri.validate", "scheduler.run"] {
        assert!(begins.iter().any(|n| n == phase), "missing span {phase}: {begins:?}");
    }

    // Thread-name metadata includes the main lane and at least one worker
    // lane (threads=2 over two branch assignments spawns real workers).
    let lanes: Vec<String> = events
        .iter()
        .filter(|e| ph(e) == "M")
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
        .collect();
    assert!(lanes.iter().any(|l| l == "main"), "{lanes:?}");
    assert!(lanes.iter().any(|l| l.starts_with("worker-")), "{lanes:?}");

    // Counter samples ride along as 'C' events.
    let counters: Vec<String> = events.iter().filter(|e| ph(e) == "C").map(&name).collect();
    assert!(
        counters.iter().any(|c| c == "petri.assignments_checked"),
        "{counters:?}"
    );
}

/// `dscw monitor` fans the executed vertical out into a fleet of live
/// instances, streams them through the online monitor with injected
/// violations, and pins the verdict stream to the post-hoc oracle (the
/// replay fails hard on divergence). The switch makes one branch dead, so
/// this also covers the skip-projection path: the monitor program is
/// compiled over executed activities only.
#[test]
fn monitor_streams_a_fleet_and_pins_the_oracle() {
    let proc_path = write_tmp("mini4.proc", PROC);
    let coop_path = write_tmp("mini4.dscl", COOP);
    let wscl_path = write_tmp("credit4.xml", WSCL);
    let wscl_arg = format!("{}:check=invCheck,auth=recAuth", wscl_path.display());
    let out = bin()
        .args(["monitor", proc_path.to_str().unwrap()])
        .args(["--coop", coop_path.to_str().unwrap()])
        .args(["--wscl", &wscl_arg])
        .args(["--branch", "gate=T"])
        .args(["--instances", "200", "--batch", "128", "--violate", "0.1", "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("monitor: 200 instances"), "{text}");
    assert!(text.contains("peak live 200"), "{text}");
    assert!(text.contains("200 retired"), "{text}");
    // At a 10% per-kind rate some of the 200 instances must be dirty and
    // produce verdict lines.
    assert!(!text.contains(" 0 verdicts"), "{text}");
    assert!(text.contains("Ordering:") || text.contains("Conversation:"), "{text}");
}

#[test]
fn errors_are_reported() {
    // Missing file.
    let out = bin().args(["validate", "/nonexistent.proc"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Invalid process.
    let bad = write_tmp("bad.proc", "process P { bogus }");
    let out = bin().args(["optimize", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());

    // Unknown command.
    let good = write_tmp("ok.proc", "process P { var x; assign a writes x; }");
    let out = bin().args(["frobnicate", good.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());

    // No args → usage.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
