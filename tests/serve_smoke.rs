//! Tier-1 smoke test of the weaver daemon: bind an ephemeral port,
//! round-trip one weave and one validate over real TCP, confirm the
//! second request for the same process is a cache hit, and scrape the
//! telemetry plane (`/metrics`, `X-Trace-Id`, `/v1/stats?since=`).

use dscweaver::obs;
use dscweaver::serve::{client, Client, PipelinedRequest, ServeConfig, Server};

const PROC: &str = r#"
process Smoke {
  var au, oi;
  sequence {
    assign check writes au;
    switch gate reads au {
      case T { assign fulfil writes oi; }
      case F { assign refuse writes oi; }
    }
    assign done reads oi;
  }
}
"#;

#[test]
fn daemon_round_trips_weave_and_validate_with_cache_hit() {
    let server = Server::start(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"ok\":true}");

    let weave = client::post(addr, "/v1/weave", PROC).unwrap();
    assert_eq!(weave.status, 200, "{}", weave.body);
    assert_eq!(weave.cache(), "miss");
    assert!(weave.body.contains("\"process\":\"Smoke\""), "{}", weave.body);
    assert!(weave.body.contains("\"minimal_dscl\":"), "{}", weave.body);

    // Same process again: served warm, identical body.
    let again = client::post(addr, "/v1/weave", PROC).unwrap();
    assert_eq!(again.cache(), "hit");
    assert_eq!(again.body, weave.body);

    // Validation rides the same cached entry (both branches simulated).
    let validate = client::post(addr, "/v1/validate", PROC).unwrap();
    assert_eq!(validate.status, 200, "{}", validate.body);
    assert_eq!(validate.cache(), "hit");
    assert!(validate.body.contains("\"ok\":true"), "{}", validate.body);
    assert!(
        validate.body.contains("\"assignments_checked\":2"),
        "{}",
        validate.body
    );

    let stats = client::get(addr, "/v1/stats").unwrap();
    assert!(stats.body.contains("\"hits\":2"), "{}", stats.body);
    assert!(stats.body.contains("\"misses\":1"), "{}", stats.body);
    assert!(
        stats.body.contains("\"window\":\"cumulative\""),
        "{}",
        stats.body
    );
    server.shutdown();
}

#[test]
fn pipelined_connection_reuse_and_canonical_sharing() {
    let server = Server::start(&ServeConfig::default()).expect("bind ephemeral port");
    let mut client = Client::connect(server.addr());

    // A textual variant of PROC: renamed identifiers, same structure, so
    // it must share the canonical cached artifact.
    let variant = PROC
        .replace("Smoke", "Mirror")
        .replace("au", "approval")
        .replace("oi", "invoice")
        .replace("check", "vet")
        .replace("gate", "door")
        .replace("fulfil", "ship")
        .replace("refuse", "bounce")
        .replace("done", "close");
    assert_ne!(variant, PROC);

    // Four requests pipelined on one connection: all written before any
    // reply is read, replies back in request order with per-request cache
    // status.
    let batch = vec![
        PipelinedRequest::post("/v1/weave", PROC.to_string()),
        PipelinedRequest::post("/v1/weave", variant.clone()),
        PipelinedRequest::post("/v1/weave", PROC.to_string()),
        PipelinedRequest::post("/v1/validate", PROC.to_string()),
    ];
    let replies = client.pipeline(&batch).expect("pipelined batch");
    assert_eq!(replies.len(), 4);
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(r.status, 200, "reply {i}: {}", r.body);
    }
    assert_eq!(replies[0].cache(), "miss");
    assert_eq!(replies[1].cache(), "canonical", "{}", replies[1].body);
    assert_eq!(replies[2].cache(), "hit");
    assert_eq!(replies[3].cache(), "hit");
    // The shared artifact is rendered back in each submission's own
    // names.
    assert!(replies[0].body.contains("\"process\":\"Smoke\""));
    assert!(replies[1].body.contains("\"process\":\"Mirror\""));
    assert_eq!(replies[0].body, replies[2].body);

    // Counters on the same connection: one compile served four requests
    // over one reused connection.
    let stats = client.get("/v1/stats").unwrap();
    assert!(stats.body.contains("\"misses\":1"), "{}", stats.body);
    assert!(stats.body.contains("\"canonical_hits\":1"), "{}", stats.body);
    assert!(stats.body.contains("\"hits\":2"), "{}", stats.body);
    server.shutdown();
}

#[test]
fn metrics_scrape_and_trace_ids_over_real_tcp() {
    let server = Server::start(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();

    // Every response carries a 16-hex-digit X-Trace-Id, and ids differ
    // request to request.
    let first = client::post(addr, "/v1/weave", PROC).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let id1 = first.trace_id().expect("weave reply has X-Trace-Id").to_string();
    let second = client::post(addr, "/v1/weave", PROC).unwrap();
    let id2 = second.trace_id().expect("second reply has X-Trace-Id");
    assert_eq!(id1.len(), 16, "{id1}");
    assert!(id1.chars().all(|c| c.is_ascii_hexdigit()), "{id1}");
    assert_ne!(id1, id2);
    // Telemetry lives in headers only: bodies stay bit-identical.
    assert_eq!(first.body, second.body);

    // /metrics is valid Prometheus text exposition carrying the
    // per-endpoint latency histograms (the obs registry is global, so
    // counts are >= what this daemon served).
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let samples = obs::prom::parse(&metrics.body).expect("exposition parses");
    let count = samples
        .iter()
        .find(|s| s.name == "serve_latency_weave_seconds_count")
        .expect("weave latency histogram scraped");
    assert!(count.value >= 2.0, "{}", count.value);
    assert!(
        samples.iter().any(|s| s.name == "serve_latency_weave_seconds_bucket"),
        "bucket series missing"
    );

    // Snapshot-diff stats: a ?since= window over an idle interval is
    // all-zero on the cumulative counters.
    let baseline = client::get(addr, "/v1/stats").unwrap();
    let seq = baseline
        .body
        .split("\"seq\":")
        .nth(1)
        .and_then(|t| t.split(&[',', '}'][..]).next())
        .expect("stats body carries seq")
        .to_string();
    let window = client::get(addr, &format!("/v1/stats?since={seq}")).unwrap();
    assert_eq!(window.status, 200, "{}", window.body);
    assert!(window.body.contains("\"hits\":0"), "{}", window.body);
    assert!(window.body.contains("\"misses\":0"), "{}", window.body);
    assert!(
        window.body.contains(&format!("\"window\":{{\"since\":{seq}}}")),
        "{}",
        window.body
    );
    // An unknown token is an explicit re-baseline error, not silence.
    let stale = client::get(addr, "/v1/stats?since=999999").unwrap();
    assert_eq!(stale.status, 400, "{}", stale.body);

    server.shutdown();
}
