//! Tier-1 smoke test of the weaver daemon: bind an ephemeral port,
//! round-trip one weave and one validate over real TCP, and confirm the
//! second request for the same process is a cache hit.

use dscweaver::serve::{client, ServeConfig, Server};

const PROC: &str = r#"
process Smoke {
  var au, oi;
  sequence {
    assign check writes au;
    switch gate reads au {
      case T { assign fulfil writes oi; }
      case F { assign refuse writes oi; }
    }
    assign done reads oi;
  }
}
"#;

#[test]
fn daemon_round_trips_weave_and_validate_with_cache_hit() {
    let server = Server::start(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"ok\":true}");

    let weave = client::post(addr, "/v1/weave", PROC).unwrap();
    assert_eq!(weave.status, 200, "{}", weave.body);
    assert_eq!(weave.cache(), "miss");
    assert!(weave.body.contains("\"process\":\"Smoke\""), "{}", weave.body);
    assert!(weave.body.contains("\"minimal_dscl\":"), "{}", weave.body);

    // Same process again: served warm, identical body.
    let again = client::post(addr, "/v1/weave", PROC).unwrap();
    assert_eq!(again.cache(), "hit");
    assert_eq!(again.body, weave.body);

    // Validation rides the same cached entry (both branches simulated).
    let validate = client::post(addr, "/v1/validate", PROC).unwrap();
    assert_eq!(validate.status, 200, "{}", validate.body);
    assert_eq!(validate.cache(), "hit");
    assert!(validate.body.contains("\"ok\":true"), "{}", validate.body);
    assert!(
        validate.body.contains("\"assignments_checked\":2"),
        "{}",
        validate.body
    );

    let stats = client::get(addr, "/v1/stats").unwrap();
    assert!(stats.body.contains("\"hits\":2"), "{}", stats.body);
    assert!(stats.body.contains("\"misses\":1"), "{}", stats.body);
    server.shutdown();
}
