//! The optimized minimizer (interned annotations + bitset prefilters +
//! scoped worker threads) must be **edge-for-edge identical** to the
//! sequential structural reference implementation — same removals, in the
//! same order — for every equivalence mode, removal order, and thread
//! count, on arbitrary layered / fork-join workloads with conditional
//! constraints. Determinism across thread counts is the key property: the
//! parallel phases (candidate screening, level-batched ancestor
//! recomputation) are advisory precomputation only, so the greedy
//! decisions cannot depend on scheduling.

use dscweaver::core::{
    merge, minimize_generic_baseline, minimize_generic_with, minimize_unconditional_fast,
    translate_services, EdgeOrder, EquivalenceMode, ExecConditions, MinimizeOptions,
};
use dscweaver::dscl::ConstraintSet;
use dscweaver::workloads::{fork_join, layered, LayeredParams};
use dscweaver_prng::Rng;

fn prepared(ds: &dscweaver::core::DependencySet) -> (ConstraintSet, ExecConditions) {
    let mut sc = merge(ds);
    sc.desugar_happen_together();
    let exec = ExecConditions::derive(&sc);
    let (asc, _) = translate_services(&sc);
    (asc, exec)
}

fn removed_list(r: &dscweaver::core::MinimizeResult) -> Vec<String> {
    r.removed.iter().map(|x| x.to_string()).collect()
}

const MODES: [EquivalenceMode; 3] = [
    EquivalenceMode::Strict,
    EquivalenceMode::ExecutionAware,
    EquivalenceMode::Reachability,
];

fn orders() -> [EdgeOrder; 3] {
    [EdgeOrder::Given, EdgeOrder::ReverseGiven, EdgeOrder::default()]
}

/// Engine ≡ baseline on layered DAGs with conditional (guarded) edges,
/// across every mode × order × thread count.
#[test]
fn engine_matches_baseline_on_conditional_layered() {
    let mut rng = Rng::seed_from_u64(0xE001);
    for case in 0..16 {
        let ds = layered(&LayeredParams {
            width: 2 + rng.random_range(4),
            depth: 2 + rng.random_range(4),
            density: 0.4,
            redundant: rng.random_range(15),
            guards: 1 + rng.random_range(2), // always conditional
            seed: rng.next_u64(),
        });
        let (asc, exec) = prepared(&ds);
        for mode in MODES {
            for order in orders() {
                let base = minimize_generic_baseline(&asc, &exec, mode, &order).unwrap();
                for threads in [1usize, 2, 4] {
                    let opts = MinimizeOptions {
                        threads,
                        ..Default::default()
                    };
                    let eng = minimize_generic_with(&asc, &exec, mode, &order, &opts).unwrap();
                    assert_eq!(
                        removed_list(&eng),
                        removed_list(&base),
                        "case {case}: removal sequence diverged \
                         (mode {mode:?}, order {order:?}, threads {threads})"
                    );
                    assert_eq!(eng.kept(), base.kept(), "case {case}");
                    assert_eq!(
                        eng.candidates_checked, base.candidates_checked,
                        "case {case}: engines examined different candidate counts"
                    );
                }
            }
        }
    }
}

/// Engine ≡ baseline on fork-join skeletons with injected redundancy
/// (unconditional inputs — the prefilters must decide every candidate and
/// still agree with the structural reference AND the transitive-reduction
/// fast path).
#[test]
fn engine_matches_baseline_and_fast_path_on_fork_join() {
    let mut rng = Rng::seed_from_u64(0xE002);
    for case in 0..16 {
        let width = 1 + rng.random_range(5);
        let chain = 1 + rng.random_range(5);
        let ds = fork_join(width, chain, rng.random_range(20), rng.next_u64());
        let (asc, exec) = prepared(&ds);
        for order in orders() {
            let base =
                minimize_generic_baseline(&asc, &exec, EquivalenceMode::Strict, &order).unwrap();
            let eng = minimize_generic_with(
                &asc,
                &exec,
                EquivalenceMode::Strict,
                &order,
                &MinimizeOptions {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(removed_list(&eng), removed_list(&base), "case {case}");
            // Same minimal set as the dedicated transitive-reduction path.
            let fast = minimize_unconditional_fast(&asc, &order).unwrap();
            let kept = |r: &dscweaver::core::MinimizeResult| {
                let mut v: Vec<String> =
                    r.minimal.happen_befores().map(|x| x.to_string()).collect();
                v.sort();
                v
            };
            assert_eq!(kept(&eng), kept(&fast), "case {case} vs fast path");
        }
    }
}

/// Thread count never changes the result even when runs are repeated —
/// guards against latent scheduling nondeterminism in the screening
/// window.
#[test]
fn thread_count_is_invisible_across_repeats() {
    let ds = layered(&LayeredParams {
        width: 5,
        depth: 8,
        density: 0.35,
        redundant: 30,
        guards: 3,
        seed: 0xBEEF,
    });
    let (asc, exec) = prepared(&ds);
    let order = EdgeOrder::default();
    let reference = minimize_generic_with(
        &asc,
        &exec,
        EquivalenceMode::ExecutionAware,
        &order,
        &MinimizeOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    for _ in 0..5 {
        for threads in [2usize, 3, 8] {
            let run = minimize_generic_with(
                &asc,
                &exec,
                EquivalenceMode::ExecutionAware,
                &order,
                &MinimizeOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(removed_list(&run), removed_list(&reference), "threads {threads}");
        }
    }
}
