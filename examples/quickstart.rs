//! Quickstart: the paper's whole optimization story in one page.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dscweaver::core::Weaver;
use dscweaver::workloads::purchasing_dependencies;

fn main() {
    // Table 1: the Purchasing process's 40 dependencies in four
    // dimensions — data, control, service, cooperation.
    let deps = purchasing_dependencies();
    println!("{}", deps.render_table1());

    // Merge (§4.2) → service translation (§4.3) → minimal set (§4.4).
    let out = Weaver::new().run(&deps).expect("sound specification");

    println!(
        "merged SC: {} constraints; after translation: {}; minimal: {}\n",
        out.sc.constraint_count(),
        out.asc.constraint_count(),
        out.minimal.constraint_count(),
    );

    // Table 2: the headline result — 23 of 40 constraints removed.
    println!("{}", out.render_table2());

    // The minimal synchronization scheme (Figure 9), in DSCL syntax.
    println!("{}", out.minimal.to_dscl());

    // And, for every removed constraint, the surviving path that covers
    // it — the provenance story sequencing constructs cannot tell.
    println!("why each of the {} removals is safe:", out.removed.len());
    for w in out.explain_removals() {
        println!("  {w}");
    }
}
