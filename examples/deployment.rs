//! The Deployment process of §3.2 / Figure 6: why *cooperation*
//! dependencies exist.
//!
//! `invDeploy_midConfig` and `invDeploy_appConfig` exchange no data and sit
//! under no branch, yet the application package must be installed after
//! the middleware (a servlet goes under Tomcat's `$Tomcat/webapp` — the
//! directory must exist first). Only an analyst-supplied cooperation
//! dependency captures this, and this example shows what goes wrong
//! without it.
//!
//! ```sh
//! cargo run --example deployment
//! ```

use dscweaver::core::{Dependency, Weaver};
use dscweaver::dscl::StateRef;
use dscweaver::scheduler::{simulate, DurationModel, SimConfig};
use dscweaver::workloads::deployment::{deployment_cooperation, deployment_process};

fn main() {
    let process = deployment_process();
    println!("=== Figure 6: the Deployment process ===");
    println!("{}", dscweaver::model::render_flowchart(&process));

    // Dependencies WITHOUT the cooperation dimension: only data/control/
    // service, extracted automatically.
    let without =
        dscweaver::pdg::extract(&process, dscweaver::pdg::ExtractOptions::default());
    // ... and WITH the analyst's cooperation constraints.
    let mut with = without.clone();
    for d in deployment_cooperation() {
        with.push(d.clone());
    }

    // Make the middleware install slow and the app install fast, so a
    // scheduler free of the cooperation constraint starts them together
    // and the app install *finishes first* — the broken order.
    let mut sim = SimConfig {
        durations: DurationModel::constant(2),
        oracle: Default::default(),
        workers: None,
        threads: 0,
    };
    sim.durations.set("invDeploy_midConfig", 30);
    sim.durations.set("invDeploy_appConfig", 3);

    for (label, ds) in [("without cooperation", &without), ("with cooperation", &with)] {
        let out = Weaver::new().run(ds).expect("sound");
        let schedule = simulate(&out.minimal, &out.exec, &sim);
        assert!(schedule.completed());
        let mid_done = schedule
            .trace
            .occurrence(&StateRef::finish("invDeploy_midConfig"))
            .unwrap()
            .0;
        let app_start = schedule
            .trace
            .occurrence(&StateRef::start("invDeploy_appConfig"))
            .unwrap()
            .0;
        let ok = app_start >= mid_done;
        println!(
            "{label:<22}: minimal set has {:>2} constraints; middleware done t={mid_done:<3} \
             app install starts t={app_start:<3} -> {}",
            out.minimal.constraint_count(),
            if ok {
                "order preserved"
            } else {
                "BROKEN (servlet installed before Tomcat!)"
            }
        );
    }

    // The fine-granularity constraint: the satisfaction survey must START
    // before order-closing FINISHES (overlapping lifetimes, §3.2) — a
    // constraint no activity-level formalism expresses, but DSCL's state
    // granularity does:
    let coop = deployment_cooperation();
    println!("\nfine-granularity cooperation constraint: {}", coop[1]);
    let out = Weaver::new().run(&with).expect("sound");
    let mut sim2 = SimConfig::default();
    sim2.durations.set("closeOrder", 10);
    let schedule = simulate(&out.minimal, &out.exec, &sim2);
    let survey_start = schedule
        .trace
        .occurrence(&StateRef::start("collectSurvey"))
        .unwrap()
        .0;
    let close_finish = schedule
        .trace
        .occurrence(&StateRef::finish("closeOrder"))
        .unwrap()
        .0;
    println!(
        "collectSurvey starts t={survey_start}, closeOrder finishes t={close_finish} -> \
         lifetimes overlap as required: {}",
        survey_start <= close_finish
    );

    // One extra line of defense: an added contradictory constraint is
    // caught at design time.
    let mut broken = with.clone();
    broken.push(Dependency::cooperation("replyClient_done", "recClient_Config"));
    match Weaver::new().run(&broken) {
        Err(e) => println!("\nseeded conflict detected at design time:\n  {e}"),
        Ok(_) => unreachable!("the cycle must be detected"),
    }
}
