//! Automatic service composition (§1): "participants of service
//! integration can simply submit their dependencies like a WSCL document
//! to a scheduling engine. The scheduling engine will then combine
//! dependencies from all services to infer a global synchronization
//! scheme."
//!
//! This example plays the scheduling engine: three independently-authored
//! WSCL documents arrive as XML, get parsed, bound to the process's
//! activities, merged with the locally-extracted data dependencies — and
//! out comes a validated global scheme. No participant ever wrote a
//! `sequence` construct.
//!
//! ```sh
//! cargo run --example service_composition
//! ```

use dscweaver::core::Weaver;
use dscweaver::model::parse_process;
use dscweaver::vertical::{weave, VerticalInput};
use dscweaver::wscl::{from_xml, ServiceBinding};

/// The state-aware inventory service insists: reserve before confirm.
const INVENTORY_WSCL: &str = r#"
<Conversation name="Inventory" xmlns="http://www.w3.org/2002/02/wscl10">
  <ConversationInteractions>
    <Interaction interactionType="Receive" id="reserve">
      <InboundXMLDocument id="ReservationRequest"/>
    </Interaction>
    <Interaction interactionType="Receive" id="confirm">
      <InboundXMLDocument id="ConfirmationRequest"/>
    </Interaction>
    <Interaction interactionType="Send" id="ack">
      <OutboundXMLDocument id="ReservationAck"/>
    </Interaction>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition><SourceInteraction href="reserve"/><DestinationInteraction href="confirm"/></Transition>
    <Transition><SourceInteraction href="confirm"/><DestinationInteraction href="ack"/></Transition>
  </ConversationTransitions>
</Conversation>
"#;

/// The payment service: charge, then it calls back with a receipt.
const PAYMENT_WSCL: &str = r#"
<Conversation name="Payment" xmlns="http://www.w3.org/2002/02/wscl10">
  <ConversationInteractions>
    <Interaction interactionType="Receive" id="charge">
      <InboundXMLDocument id="ChargeRequest"/>
    </Interaction>
    <Interaction interactionType="Send" id="receipt">
      <OutboundXMLDocument id="Receipt"/>
    </Interaction>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition><SourceInteraction href="charge"/><DestinationInteraction href="receipt"/></Transition>
  </ConversationTransitions>
</Conversation>
"#;

/// The notification service accepts fire-and-forget messages.
const NOTIFY_WSCL: &str = r#"
<Conversation name="Notify" xmlns="http://www.w3.org/2002/02/wscl10">
  <ConversationInteractions>
    <Interaction interactionType="Receive" id="send">
      <InboundXMLDocument id="Notification"/>
    </Interaction>
  </ConversationInteractions>
  <ConversationTransitions/>
</Conversation>
"#;

const ORDER_PROCESS: &str = r#"
process OrderFulfillment {
  var order, receipt, note;
  service Inventory { ports 2 async }
  service Payment   { ports 1 async }
  service Notify    { ports 1 async }

  sequence {
    receive recOrder from Client writes order;
    flow {
      invoke invReserve on Inventory port 1 reads order;
      invoke invConfirm on Inventory port 2 reads order;
      sequence {
        invoke invCharge on Payment port 1 reads order;
        receive recReceipt from Payment writes receipt;
      }
    }
    invoke invNotify on Notify port 1 reads receipt;
    reply replyDone to Client reads receipt;
  }
}
"#;

fn main() {
    let process = parse_process(ORDER_PROCESS).expect("valid process");
    assert!(process.validate().is_empty());

    // Each participant submits its conversation document.
    let conversations = vec![
        (
            from_xml(INVENTORY_WSCL).expect("inventory WSCL"),
            ServiceBinding::new()
                .invoke("reserve", "invReserve")
                .invoke("confirm", "invConfirm"),
        ),
        (
            from_xml(PAYMENT_WSCL).expect("payment WSCL"),
            ServiceBinding::new()
                .invoke("charge", "invCharge")
                .receive("receipt", "recReceipt"),
        ),
        (
            from_xml(NOTIFY_WSCL).expect("notify WSCL"),
            ServiceBinding::new().invoke("send", "invNotify"),
        ),
    ];

    let out = weave(&VerticalInput {
        process: &process,
        conversations: &conversations,
        cooperation: &[],
        weaver: Weaver::new(),
        sim: Default::default(),
    })
    .expect("composable");

    println!("=== Submitted service dependencies ===");
    for d in out.weaver.dependencies.of_dimension("service") {
        println!("  {d}");
    }

    println!("\n=== Inferred global scheme (minimal) ===");
    println!("{}", out.weaver.minimal.to_dscl());

    // The key inference: the process NEVER sequenced invReserve and
    // invConfirm — they sit in a parallel flow. The Inventory service's
    // port ordering surfaces as a scheduling constraint automatically.
    let has_port_order = out
        .weaver
        .minimal
        .happen_befores()
        .any(|r| r.to_string() == "F(invReserve) -> S(invConfirm)");
    println!(
        "Inventory's reserve-before-confirm enforced without any sequence construct: {has_port_order}"
    );
    assert!(has_port_order);

    println!("\n{}", out.report());
    assert!(out.ok());
}
