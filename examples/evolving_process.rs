//! Process evolution (§1): "there is no easy way to add or delete a
//! constraint in a process [coded with sequencing constructs] without
//! over-specifying necessary constraints or invalidating existing ones."
//!
//! With dependencies as first-class citizens, evolution is a set edit:
//! push or retain dependencies, re-weave, and the scheme — including its
//! BPEL realization — follows. This example walks the Purchasing process
//! through three revisions using the incremental [`ReweaveSession`]: the
//! session diffs each revision against the previous one and pays only
//! for what the edit reaches, while a from-scratch weave of every
//! revision is timed alongside for comparison (the outputs are
//! identical by construction — the session falls back to a full rebuild
//! whenever the edit is too disruptive to apply incrementally).
//!
//! ```sh
//! cargo run --example evolving_process
//! ```

use dscweaver::core::{Dependency, Weaver};
use dscweaver::scheduler::{simulate, SimConfig};
use dscweaver::vertical::ReweaveSession;
use dscweaver::workloads::{purchasing_dependencies, purchasing_process};
use std::time::Instant;

fn summarize(label: &str, out: &dscweaver::core::WeaverOutput) {
    let sim = SimConfig {
        oracle: [("if_au".to_string(), "T".to_string())].into(),
        ..Default::default()
    };
    let schedule = simulate(&out.minimal, &out.exec, &sim);
    println!(
        "{label:<34} deps {:>2} -> minimal {:>2} | makespan {:>2} | peak concurrency {}",
        out.sc.constraint_count(),
        out.minimal.constraint_count(),
        schedule.trace.makespan(),
        schedule.trace.max_concurrency(),
    );
}

/// Weaves one revision through the session (timed) and from scratch
/// (timed), prints the comparison, and returns the fresh output.
fn reweave(
    session: &mut ReweaveSession,
    label: &str,
    ds: &dscweaver::core::DependencySet,
) -> dscweaver::core::WeaverOutput {
    let weaver = Weaver::new();
    let t0 = Instant::now();
    let fresh = weaver.run(ds).expect("revision weaves");
    let fresh_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let rep = session.reweave(ds).expect("session weaves");
    let delta_ms = t0.elapsed().as_secs_f64() * 1e3;

    summarize(label, &fresh);
    println!(
        "  {:<32} fresh {fresh_ms:.2} ms | session {delta_ms:.2} ms | path {:?} | rows recomputed {} | verdicts reused {}/{}",
        "", rep.path, rep.rows_recomputed, rep.candidates_reused, rep.candidates_total
    );

    // The session's scheme is always identical to the fresh weave's.
    let render = |o: &dscweaver::core::WeaverOutput| {
        let mut v: Vec<String> = o.minimal.happen_befores().map(|r| r.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(render(session.output().expect("output")), render(&fresh));
    fresh
}

fn main() {
    let process = purchasing_process();
    let mut session = ReweaveSession::new(&Weaver::new());

    // Revision 1: the paper's Table 1.
    let v1 = purchasing_dependencies();
    let out1 = reweave(&mut session, "v1 (paper's Table 1)", &v1);

    // Revision 2: a new business rule arrives — production may only begin
    // after the credit card settles a second authorization hold, i.e.
    // invProduction_po must wait for recPurchase_oi. One line:
    let mut v2 = v1.clone();
    v2.push(Dependency::cooperation("recPurchase_oi", "invProduction_po"));
    let out2 = reweave(&mut session, "v2 (+production gating rule)", &v2);
    assert!(out2
        .minimal
        .happen_befores()
        .any(|r| r.to_string() == "F(recPurchase_oi) -> S(invProduction_po)"));

    // Revision 3: the Purchase service upgrades to stateless ports — its
    // WSCL no longer requires sequential invocation. Drop that one service
    // dependency; the optimizer finds the extra concurrency by itself.
    let mut v3 = v1.clone();
    v3.deps
        .retain(|d| !(d.from.name == "Purchase_1" && d.to.name == "Purchase_2"));
    let out3 = reweave(&mut session, "v3 (stateless Purchase ports)", &v3);
    assert!(
        !out3
            .minimal
            .happen_befores()
            .any(|r| r.to_string() == "F(invPurchase_po) -> S(invPurchase_si)"),
        "the port-order bridge disappears with the requirement"
    );

    // In every revision, the generated BPEL tracks the scheme exactly.
    for (label, out) in [("v1", &out1), ("v2", &out2), ("v3", &out3)] {
        let xml = dscweaver::bpel::emit_string(&process, &out.minimal);
        let back = dscweaver::bpel::parse_bpel(&xml).expect("round-trip");
        assert_eq!(back.constraint_count(), out.minimal.constraint_count());
        println!(
            "{label}: BPEL regenerated with {} links",
            back.constraint_count()
        );
    }

    // And a bad edit is rejected with a pinpointed conflict — leaving the
    // session's last good revision (v3) intact and re-weavable:
    let mut bad = v3.clone();
    bad.push(Dependency::cooperation("replyClient_oi", "invShip_po"));
    match session.reweave(&bad) {
        Err(e) => println!("\nbad revision rejected:\n  {e}"),
        Ok(_) => unreachable!("cycle expected"),
    }
    let rep = session.reweave(&v3).expect("session state survived the bad edit");
    println!(
        "after rejection, v3 re-weaves via {:?} ({} rows recomputed)",
        rep.path, rep.rows_recomputed
    );
}
