//! Process evolution (§1): "there is no easy way to add or delete a
//! constraint in a process [coded with sequencing constructs] without
//! over-specifying necessary constraints or invalidating existing ones."
//!
//! With dependencies as first-class citizens, evolution is a set edit:
//! push or retain dependencies, re-run the optimizer, and the scheme —
//! including its BPEL realization — follows. This example walks the
//! Purchasing process through three revisions.
//!
//! ```sh
//! cargo run --example evolving_process
//! ```

use dscweaver::core::{Dependency, Weaver};
use dscweaver::scheduler::{simulate, SimConfig};
use dscweaver::workloads::{purchasing_dependencies, purchasing_process};

fn summarize(label: &str, out: &dscweaver::core::WeaverOutput) {
    let sim = SimConfig {
        oracle: [("if_au".to_string(), "T".to_string())].into(),
        ..Default::default()
    };
    let schedule = simulate(&out.minimal, &out.exec, &sim);
    println!(
        "{label:<34} deps {:>2} -> minimal {:>2} | makespan {:>2} | peak concurrency {}",
        out.sc.constraint_count(),
        out.minimal.constraint_count(),
        schedule.trace.makespan(),
        schedule.trace.max_concurrency(),
    );
}

fn main() {
    let process = purchasing_process();

    // Revision 1: the paper's Table 1.
    let v1 = purchasing_dependencies();
    let out1 = Weaver::new().run(&v1).expect("sound");
    summarize("v1 (paper's Table 1)", &out1);

    // Revision 2: a new business rule arrives — production may only begin
    // after the credit card settles a second authorization hold, i.e.
    // invProduction_po must wait for recPurchase_oi. One line:
    let mut v2 = v1.clone();
    v2.push(Dependency::cooperation("recPurchase_oi", "invProduction_po"));
    let out2 = Weaver::new().run(&v2).expect("still sound");
    summarize("v2 (+production gating rule)", &out2);
    assert!(out2
        .minimal
        .happen_befores()
        .any(|r| r.to_string() == "F(recPurchase_oi) -> S(invProduction_po)"));

    // Revision 3: the Purchase service upgrades to stateless ports — its
    // WSCL no longer requires sequential invocation. Drop that one service
    // dependency; the optimizer finds the extra concurrency by itself.
    let mut v3 = v1.clone();
    v3.deps
        .retain(|d| !(d.from.name == "Purchase_1" && d.to.name == "Purchase_2"));
    let out3 = Weaver::new().run(&v3).expect("still sound");
    summarize("v3 (stateless Purchase ports)", &out3);
    assert!(
        !out3
            .minimal
            .happen_befores()
            .any(|r| r.to_string() == "F(invPurchase_po) -> S(invPurchase_si)"),
        "the port-order bridge disappears with the requirement"
    );

    // In every revision, the generated BPEL tracks the scheme exactly.
    for (label, out) in [("v1", &out1), ("v2", &out2), ("v3", &out3)] {
        let xml = dscweaver::bpel::emit_string(&process, &out.minimal);
        let back = dscweaver::bpel::parse_bpel(&xml).expect("round-trip");
        assert_eq!(back.constraint_count(), out.minimal.constraint_count());
        println!(
            "{label}: BPEL regenerated with {} links",
            back.constraint_count()
        );
    }

    // And a bad edit is rejected with a pinpointed conflict, not silent
    // misbehavior:
    let mut bad = v1.clone();
    bad.push(Dependency::cooperation("replyClient_oi", "invShip_po"));
    match Weaver::new().run(&bad) {
        Err(e) => println!("\nbad revision rejected:\n  {e}"),
        Ok(_) => unreachable!("cycle expected"),
    }
}
