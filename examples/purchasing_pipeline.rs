//! The full DSCWeaver vertical on the Purchasing process (§2, Figure 1):
//! extraction → merge → translation → minimization → Petri validation →
//! execution → BPEL generation — with every intermediate artifact printed.
//!
//! ```sh
//! cargo run --example purchasing_pipeline
//! ```

use dscweaver::core::Weaver;
use dscweaver::dscl::SyncGraph;
use dscweaver::scheduler::{DurationModel, SimConfig};
use dscweaver::vertical::{baseline_schedule, weave, VerticalInput};
use dscweaver::workloads::{
    purchasing_conversations, purchasing_cooperation, purchasing_process,
};
use std::collections::BTreeMap;

fn sim(branch: &str) -> SimConfig {
    let mut durations: BTreeMap<String, u64> = BTreeMap::new();
    // Service callbacks dominate: the receive waits out the remote latency.
    for (a, d) in [
        ("recCredit_au", 40u64),
        ("recPurchase_oi", 60),
        ("recShip_si", 50),
        ("recShip_ss", 20),
    ] {
        durations.insert(a.into(), d);
    }
    SimConfig {
        durations: DurationModel::with_overrides(2, durations),
        oracle: [("if_au".to_string(), branch.to_string())].into(),
        workers: None,
        threads: 0,
    }
}

fn main() {
    let process = purchasing_process();

    println!("=== Figure 1: the Purchasing process flowchart ===");
    println!("{}", dscweaver::model::render_flowchart(&process));

    println!("=== Figure 2: the sequencing-construct implementation ===");
    println!("{}", dscweaver::model::render_constructs(&process));

    // Specification: extract data/control from the implementation, service
    // dependencies from the WSCL conversations, cooperation from the
    // analyst.
    let conversations = purchasing_conversations();
    let cooperation = purchasing_cooperation();
    let out = weave(&VerticalInput {
        process: &process,
        conversations: &conversations,
        cooperation: &cooperation,
        weaver: Weaver::new(),
        sim: sim("T"),
    })
    .expect("the Purchasing process is sound");

    println!("=== Table 1 (extracted) ===");
    println!("{}", out.weaver.dependencies.render_table1());

    println!("=== Figure 7: merged synchronization constraints (SC) ===");
    println!("{}\n", SyncGraph::build(&out.weaver.sc).render());

    println!("=== Figure 8: after service dependency translation (ASC) ===");
    for b in &out.weaver.translation.bridges {
        println!("  bold: {b}");
    }
    println!(
        "  dropped {} service relations; dead-end ports: {:?}\n",
        out.weaver.translation.dropped, out.weaver.translation.dead_ends
    );
    println!("{}\n", SyncGraph::build(&out.weaver.asc).render());

    println!("=== Figure 9: minimal synchronization constraints ===");
    println!("{}\n", SyncGraph::build(&out.weaver.minimal).render());

    println!("=== Table 2 ===");
    println!("{}", out.weaver.render_table2());

    println!("=== Vertical report ===");
    println!("{}", out.report());

    // Baseline comparison: the Figure-2 constructs on the same engine.
    let (baseline_cs, baseline) =
        baseline_schedule(&process, &sim("T")).expect("no loops in Purchasing");
    println!("=== Figure-2 baseline vs optimized dataflow (authorized branch) ===");
    println!(
        "constructs: {:>3} constraints | makespan {:>4} | peak concurrency {} | {:>5} checks",
        baseline_cs.constraint_count(),
        baseline.trace.makespan(),
        baseline.trace.max_concurrency(),
        baseline.constraint_checks,
    );
    println!(
        "minimal P*: {:>3} constraints | makespan {:>4} | peak concurrency {} | {:>5} checks",
        out.weaver.minimal.constraint_count(),
        out.schedule.trace.makespan(),
        out.schedule.trace.max_concurrency(),
        out.schedule.constraint_checks,
    );

    println!("\n=== Generated BPEL (excerpt) ===");
    for line in out.bpel.lines().take(25) {
        println!("{line}");
    }
    println!("  ... ({} lines total)", out.bpel.lines().count());
}
