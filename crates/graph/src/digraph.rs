//! A directed multigraph with stable node/edge indices and tombstone removal.
//!
//! This is the shared substrate for every dependency structure in the
//! workspace: program-dependence graphs, DSCL constraint sets, Petri-net
//! skeletons and the scheduler's ready-tracking all build on [`DiGraph`].
//!
//! Indices are stable: removing a node or edge never renumbers the others
//! (removed slots become tombstones). Algorithms that want a dense index
//! space can call [`DiGraph::compact`] to obtain a tombstone-free copy plus
//! the index remapping.

use std::fmt;

/// Identifier of a node within one [`DiGraph`]. Stable across removals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge within one [`DiGraph`]. Stable across removals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The raw index, usable for dense side tables of size `graph.node_bound()`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw index, usable for dense side tables of size `graph.edge_bound()`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct NodeSlot<N> {
    weight: N,
    out: Vec<EdgeId>,
    inc: Vec<EdgeId>,
}

#[derive(Clone, Debug)]
struct EdgeSlot<E> {
    from: NodeId,
    to: NodeId,
    weight: E,
}

/// A directed multigraph with node weights `N` and edge weights `E`.
#[derive(Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<Option<NodeSlot<N>>>,
    edges: Vec<Option<EdgeSlot<E>>>,
    node_count: usize,
    edge_count: usize,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            node_count: 0,
            edge_count: 0,
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            node_count: 0,
            edge_count: 0,
        }
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Exclusive upper bound on node indices (tombstones included).
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Exclusive upper bound on edge indices (tombstones included).
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its stable id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(NodeSlot {
            weight,
            out: Vec::new(),
            inc: Vec::new(),
        }));
        self.node_count += 1;
        id
    }

    /// True if `n` refers to a live node.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(Option::is_some)
    }

    /// True if `e` refers to a live edge.
    pub fn contains_edge_id(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(Option::is_some)
    }

    fn node(&self, n: NodeId) -> &NodeSlot<N> {
        self.nodes[n.index()].as_ref().expect("node was removed")
    }

    fn node_mut(&mut self, n: NodeId) -> &mut NodeSlot<N> {
        self.nodes[n.index()].as_mut().expect("node was removed")
    }

    fn edge(&self, e: EdgeId) -> &EdgeSlot<E> {
        self.edges[e.index()].as_ref().expect("edge was removed")
    }

    /// Node weight. Panics on a removed/invalid id.
    pub fn weight(&self, n: NodeId) -> &N {
        &self.node(n).weight
    }

    /// Mutable node weight. Panics on a removed/invalid id.
    pub fn weight_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.node_mut(n).weight
    }

    /// Edge weight. Panics on a removed/invalid id.
    pub fn edge_weight(&self, e: EdgeId) -> &E {
        &self.edge(e).weight
    }

    /// Mutable edge weight. Panics on a removed/invalid id.
    pub fn edge_weight_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].as_mut().expect("edge was removed").weight
    }

    /// The `(from, to)` endpoints of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let s = self.edge(e);
        (s.from, s.to)
    }

    /// Adds an edge `from -> to`, returning its stable id. Parallel edges
    /// are allowed (constraint graphs can carry several differently
    /// conditioned constraints between one activity pair).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: E) -> EdgeId {
        assert!(self.contains_node(from), "edge source was removed");
        assert!(self.contains_node(to), "edge target was removed");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(EdgeSlot { from, to, weight }));
        self.node_mut(from).out.push(id);
        self.node_mut(to).inc.push(id);
        self.edge_count += 1;
        id
    }

    /// Removes an edge, returning its weight. Panics on invalid id.
    pub fn remove_edge(&mut self, e: EdgeId) -> E {
        let slot = self.edges[e.index()].take().expect("edge already removed");
        self.node_mut(slot.from).out.retain(|&x| x != e);
        self.node_mut(slot.to).inc.retain(|&x| x != e);
        self.edge_count -= 1;
        slot.weight
    }

    /// Removes a node and all incident edges, returning its weight.
    pub fn remove_node(&mut self, n: NodeId) -> N {
        let slot = self.nodes[n.index()].take().expect("node already removed");
        for e in slot.out.iter().chain(&slot.inc) {
            if let Some(edge) = self.edges[e.index()].take() {
                self.edge_count -= 1;
                // Detach from the opposite endpoint (skip self-loops whose
                // both endpoints are the removed node).
                let other_lists = if edge.from == n { edge.to } else { edge.from };
                if other_lists != n {
                    let other = self.node_mut(other_lists);
                    other.out.retain(|&x| x != *e);
                    other.inc.retain(|&x| x != *e);
                }
            }
        }
        self.node_count -= 1;
        slot.weight
    }

    /// Iterates over live node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Iterates over live edge ids in ascending order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Iterates `(edge, from, to, weight)` over live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|e| (EdgeId(i as u32), e.from, e.to, &e.weight))
        })
    }

    /// Outgoing edge ids of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.node(n).out.iter().copied()
    }

    /// Incoming edge ids of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.node(n).inc.iter().copied()
    }

    /// Successor nodes of `n` (with duplicates if parallel edges exist).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(n).out.iter().map(|&e| self.edge(e).to)
    }

    /// Predecessor nodes of `n` (with duplicates if parallel edges exist).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(n).inc.iter().map(|&e| self.edge(e).from)
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.node(n).out.len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.node(n).inc.len()
    }

    /// First live edge `from -> to`, if any.
    pub fn find_edge(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.node(from)
            .out
            .iter()
            .copied()
            .find(|&e| self.edge(e).to == to)
    }

    /// True if at least one live edge `from -> to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.find_edge(from, to).is_some()
    }

    /// Returns a tombstone-free copy and the node remapping
    /// (`map[old.index()] == Some(new)` for live nodes).
    pub fn compact(&self) -> (DiGraph<N, E>, Vec<Option<NodeId>>)
    where
        N: Clone,
        E: Clone,
    {
        let mut g = DiGraph::with_capacity(self.node_count, self.edge_count);
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for (i, slot) in self.nodes.iter().enumerate() {
            if let Some(s) = slot {
                map[i] = Some(g.add_node(s.weight.clone()));
            }
        }
        for slot in self.edges.iter().flatten() {
            let from = map[slot.from.index()].expect("live edge with dead source");
            let to = map[slot.to.index()].expect("live edge with dead target");
            g.add_edge(from, to, slot.weight.clone());
        }
        (g, map)
    }

    /// Maps node and edge weights into a structurally identical graph,
    /// preserving ids (tombstones included).
    pub fn map<N2, E2>(
        &self,
        mut fnode: impl FnMut(NodeId, &N) -> N2,
        mut fedge: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.as_ref().map(|s| NodeSlot {
                        weight: fnode(NodeId(i as u32), &s.weight),
                        out: s.out.clone(),
                        inc: s.inc.clone(),
                    })
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.as_ref().map(|s| EdgeSlot {
                        from: s.from,
                        to: s.to,
                        weight: fedge(EdgeId(i as u32), &s.weight),
                    })
                })
                .collect(),
            node_count: self.node_count,
            edge_count: self.edge_count,
        }
    }
}

impl<N: fmt::Debug, E: fmt::Debug> fmt::Debug for DiGraph<N, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph ({} nodes, {} edges)", self.node_count, self.edge_count)?;
        for n in self.node_ids() {
            writeln!(f, "  {:?}: {:?}", n, self.weight(n))?;
        }
        for (e, a, b, w) in self.edges() {
            writeln!(f, "  {:?}: {:?} -> {:?} [{:?}]", e, a, b, w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.in_degree(b), 1);
    }

    #[test]
    fn neighbors() {
        let (g, [a, b, c, d]) = diamond();
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<_> = g.predecessors(d).collect();
        assert_eq!(pred, vec![b, c]);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _c, _d]) = diamond();
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.remove_edge(e), 1);
        assert!(!g.has_edge(a, b));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 0);
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [a, b, c, d]) = diamond();
        g.remove_node(b);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(a, c));
        assert!(g.has_edge(c, d));
        assert!(!g.contains_node(b));
        // Remaining ids are stable.
        assert_eq!(*g.weight(d), "d");
    }

    #[test]
    fn self_loop_removal() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(g.edge_count(), 1);
        g.remove_node(a);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), char> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 'x');
        g.add_edge(a, b, 'y');
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a).count(), 2);
    }

    #[test]
    fn compact_renumbers() {
        let (mut g, [a, b, _c, d]) = diamond();
        g.remove_node(b);
        let (c2, map) = g.compact();
        assert_eq!(c2.node_count(), 3);
        assert_eq!(c2.node_bound(), 3);
        assert_eq!(c2.edge_count(), 2);
        assert!(map[b.index()].is_none());
        let na = map[a.index()].unwrap();
        let nd = map[d.index()].unwrap();
        assert_eq!(*c2.weight(na), "a");
        assert_eq!(*c2.weight(nd), "d");
    }

    #[test]
    fn map_preserves_ids() {
        let (g, [a, ..]) = diamond();
        let m = g.map(|_, w| w.len(), |_, e| *e as u64);
        assert_eq!(*m.weight(a), 1);
        assert_eq!(m.edge_count(), 4);
    }

    #[test]
    fn edges_iterator_reports_endpoints() {
        let (g, [a, b, ..]) = diamond();
        let first = g.edges().next().unwrap();
        assert_eq!((first.1, first.2, *first.3), (a, b, 1));
    }
}
