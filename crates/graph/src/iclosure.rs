//! Interned, level-parallel condition-annotated closure (Definition 3).
//!
//! [`crate::annotated::annotated_closure`] builds structural
//! [`Dnf`](crate::annotated::Dnf) rows
//! and leaves interning to the caller — every annotation is materialized,
//! cloned through `BTreeMap` accumulators, and hashed again when the
//! minimizer pools it. This module builds the same closure **directly in
//! interned form**: rows are sorted `(target, DnfId)` vectors from the
//! start, every union/compose goes through the pool's memo tables, and
//! the per-row accumulator is a dense scratch array instead of an ordered
//! map. On top of that, the DAG is swept level by level (longest path to
//! a sink), and wide levels fan out to the [`crate::par`] worker pool:
//! a node's row only reads rows of strictly smaller levels, so levels
//! are natural barriers.
//!
//! Workers never lock the pool. Each worker runs against a read-only
//! snapshot ([`DnfPool::peek_compose`] / [`DnfPool::peek_union`] /
//! [`DnfPool::lookup`]) and *mints* formulas the snapshot lacks into a
//! thread-local delta pool with provisional ids. The main thread merges
//! the deltas window by window in [`crate::par::par_ranges`] order, which
//! makes the global id numbering — and therefore every produced row,
//! bit for bit — identical for every thread count, including the fully
//! sequential path.
//!
//! Cyclic inputs: [`interned_closure`] mirrors `annotated_closure` and
//! returns the [`CycleError`] untouched (the optimizer treats cycles as
//! specification conflicts), while [`interned_closure_condensed`] falls
//! back to the shared SCC condensation ([`crate::closure::condense`]) and
//! a per-component least fixpoint, exactly like
//! [`crate::annotated::annotated_closure_condensed`].
//!
//! ```
//! use dscweaver_graph::{interned_closure, irow_get, DiGraph, DnfPool};
//!
//! // The paper's running example: a1 → a2 →_T a3 → a4.
//! let mut g: DiGraph<(), Option<(u32, bool)>> = DiGraph::new();
//! let a1 = g.add_node(());
//! let a2 = g.add_node(());
//! let a3 = g.add_node(());
//! let a4 = g.add_node(());
//! g.add_edge(a1, a2, None);
//! g.add_edge(a2, a3, Some((a2.0, true)));
//! g.add_edge(a3, a4, None);
//!
//! let mut pool = DnfPool::new();
//! let (rows, stats) = interned_closure(&g, &|_, w: &Option<(u32, bool)>| *w, &mut pool, 1)
//!     .expect("acyclic");
//! // a1+ = {a2, a3(T@a2), a4(T@a2)}: a2 unconditionally, the rest guarded.
//! assert_eq!(rows[a1.index()].len(), 3);
//! let a2_id = irow_get(&rows[a1.index()], a2.0).unwrap();
//! assert!(pool.dnf(a2_id).is_always());
//! let a4_id = irow_get(&rows[a1.index()], a4.0).unwrap();
//! assert_eq!(pool.dnf(a4_id).terms(), &[vec![(a2.0, true)]]);
//! assert_eq!(stats.rows, 4);
//! ```

use crate::annotated::GuardFn;
use crate::closure::condense;
use crate::digraph::DiGraph;
use crate::intern::{DnfId, DnfPool, SnapshotOps, TermId};
use crate::par::par_ranges;
use crate::topo::{topo_sort, CycleError};
use dscweaver_obs as obs;

/// An interned closure row: `(target node index, annotation id)` sorted by
/// target. With all rows drawn from one pool, row equality is bitwise.
pub type IRow = Vec<(u32, DnfId)>;

/// The annotation with which `t` is reached in an interned row.
pub fn irow_get(row: &IRow, t: u32) -> Option<DnfId> {
    row.binary_search_by_key(&t, |&(k, _)| k)
        .ok()
        .map(|i| row[i].1)
}

/// Build telemetry returned by the interned closure engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosureStats {
    /// Rows composed (live nodes swept).
    pub rows: usize,
    /// Topological levels the sweep was batched into (0 for the
    /// condensed fallback, which runs per-component instead).
    pub levels: usize,
    /// Distinct DNFs the build added to the pool.
    pub minted: usize,
    /// Memo hits across all union/compose operations, worker-local
    /// probes included.
    pub pool_hits: u64,
    /// Memo misses (structural computations), worker-local included.
    pub pool_misses: u64,
}

/// Sentinel for "target untouched" in the dense accumulator.
const NONE: u32 = u32::MAX;

/// Minimum level width before the sweep fans out to worker threads —
/// below this the scope setup costs more than the rows.
const PAR_LEVEL_MIN: usize = 8;

/// Reusable dense accumulator for composing one row: `acc[t]` holds the
/// running annotation id of target `t` (or an internal sentinel), and
/// `touched` remembers which slots to harvest and reset. Allocate once
/// per thread, reuse for every row.
pub struct RowScratch {
    acc: Vec<u32>,
    touched: Vec<u32>,
}

impl RowScratch {
    /// A scratch sized for node indices `< bound`.
    pub fn new(bound: usize) -> Self {
        RowScratch {
            acc: vec![NONE; bound],
            touched: Vec::new(),
        }
    }
}

/// Id-level DNF operations a row composition needs. Implemented by the
/// owning-pool path (sequential) and the frozen-snapshot path (workers).
trait IdOps<G> {
    fn compose(&mut self, a: DnfId, t: Option<TermId>) -> DnfId;
    fn union(&mut self, a: DnfId, b: DnfId) -> DnfId;
}

struct MainOps<'p, G> {
    pool: &'p mut DnfPool<G>,
}

impl<G: Ord + Clone + std::hash::Hash> IdOps<G> for MainOps<'_, G> {
    #[inline]
    fn compose(&mut self, a: DnfId, t: Option<TermId>) -> DnfId {
        match t {
            None => a,
            Some(t) => self.pool.compose_term(a, t),
        }
    }

    #[inline]
    fn union(&mut self, a: DnfId, b: DnfId) -> DnfId {
        self.pool.union(a, b)
    }
}

/// Worker-side ops against a read-only pool snapshot — now the
/// first-class [`SnapshotOps`] overlay from [`crate::intern`]: formulas
/// the snapshot lacks are minted with provisional ids `>= base`, and the
/// main thread re-interns them in discovery order
/// ([`DnfPool::absorb`]), which keeps the global numbering identical to
/// the sequential sweep.
impl<G: Ord + Clone + std::hash::Hash> IdOps<G> for SnapshotOps<'_, G> {
    #[inline]
    fn compose(&mut self, a: DnfId, t: Option<TermId>) -> DnfId {
        SnapshotOps::compose(self, a, t)
    }

    #[inline]
    fn union(&mut self, a: DnfId, b: DnfId) -> DnfId {
        SnapshotOps::union(self, a, b)
    }
}

impl RowScratch {
    /// `acc[t] ∪= d` with a dense slot per target.
    #[inline]
    fn upsert<G, O: IdOps<G>>(&mut self, ops: &mut O, t: u32, d: DnfId) {
        let slot = &mut self.acc[t as usize];
        if *slot == NONE {
            *slot = d.0;
            self.touched.push(t);
        } else if *slot != d.0 {
            *slot = ops.union(DnfId(*slot), d).0;
        }
    }

    /// Harvests the accumulated row (sorted by target) and resets the
    /// touched slots for reuse.
    fn harvest(&mut self) -> IRow {
        self.touched.sort_unstable();
        let row: IRow = self
            .touched
            .iter()
            .map(|&t| (t, DnfId(self.acc[t as usize])))
            .collect();
        for &t in &self.touched {
            self.acc[t as usize] = NONE;
        }
        self.touched.clear();
        row
    }
}

/// Per-edge view the sweep composes from: `(target index, direct-edge
/// annotation id, guard term id if conditional)`. The direct id and the
/// term are interned up front on the main thread, so the hot loop never
/// hashes a guard value.
type Adj = Vec<Vec<(u32, DnfId, Option<TermId>)>>;

/// Pre-interns every edge guard (deterministic node/edge order) and
/// builds the per-node adjacency view.
fn build_adj<N, E, G: Ord + Clone + std::hash::Hash>(
    g: &DiGraph<N, E>,
    guard_of: &impl GuardFn<E, G>,
    pool: &mut DnfPool<G>,
) -> Adj {
    let mut adj: Adj = vec![Vec::new(); g.node_bound()];
    for n in g.node_ids() {
        let out = &mut adj[n.index()];
        for e in g.out_edges(n) {
            let (_, m) = g.endpoints(e);
            match guard_of.guard(e, g.edge_weight(e)) {
                None => out.push((m.0, DnfPool::<G>::ALWAYS, None)),
                Some(gv) => {
                    let t = pool.intern_term(&vec![gv.clone()]);
                    let d = pool.of_guard(Some(&gv));
                    out.push((m.0, d, Some(t)));
                }
            }
        }
    }
    adj
}

/// Composes one row from an adjacency view:
/// `row(n) = ⋃_{n →g m} ({m: g} ∪ g ⊗ row_of(m))`.
fn compose_row_ops<'r, G, O: IdOps<G>>(
    ops: &mut O,
    scratch: &mut RowScratch,
    adj: impl IntoIterator<Item = (u32, DnfId, Option<TermId>)>,
    row_of: impl Fn(u32) -> &'r IRow,
) -> IRow {
    debug_assert!(scratch.touched.is_empty());
    for (m, direct, t) in adj {
        scratch.upsert(ops, m, direct);
        for &(tt, did) in row_of(m) {
            let composed = ops.compose(did, t);
            scratch.upsert(ops, tt, composed);
        }
    }
    scratch.harvest()
}

/// Composes one interned row against an owning pool — the sequential
/// building block, shared with the minimizer's greedy recomputation
/// (which feeds it a filtered adjacency and an overlay `row_of`).
///
/// `row_of(m)` must already be the finished row of `m`.
pub fn compose_interned_row<'r, G, A, F>(
    pool: &mut DnfPool<G>,
    scratch: &mut RowScratch,
    adj: A,
    row_of: F,
) -> IRow
where
    G: Ord + Clone + std::hash::Hash,
    A: IntoIterator<Item = (u32, DnfId, Option<TermId>)>,
    F: Fn(u32) -> &'r IRow,
{
    let mut ops = MainOps { pool };
    compose_row_ops(&mut ops, scratch, adj, row_of)
}

/// Computes the condition-annotated closure of a **DAG** directly in
/// interned form, level-parallel over `threads` workers (`<= 1` is fully
/// sequential). Rows are indexed by node index (tombstone slots hold
/// empty rows) and are **bit-identical for every thread count** — the
/// worker deltas are merged in deterministic window order, so even the
/// pool's id numbering matches the sequential sweep.
///
/// Returns the cycle error untouched for cyclic inputs, mirroring
/// [`crate::annotated::annotated_closure`]; use
/// [`interned_closure_condensed`] for the SCC fallback.
pub fn interned_closure<N: Sync, E: Sync, G>(
    g: &DiGraph<N, E>,
    guard_of: &(impl GuardFn<E, G> + Sync),
    pool: &mut DnfPool<G>,
    threads: usize,
) -> Result<(Vec<IRow>, ClosureStats), CycleError>
where
    G: Ord + Clone + std::hash::Hash + Send + Sync,
{
    let order = topo_sort(g)?;
    Ok(closure_by_levels(g, guard_of, pool, threads, &order))
}

/// The DAG sweep: group nodes by longest-path-to-sink level, process
/// levels ascending, fan wide levels out to the pool.
fn closure_by_levels<N: Sync, E: Sync, G>(
    g: &DiGraph<N, E>,
    guard_of: &(impl GuardFn<E, G> + Sync),
    pool: &mut DnfPool<G>,
    threads: usize,
    order: &[crate::digraph::NodeId],
) -> (Vec<IRow>, ClosureStats)
where
    G: Ord + Clone + std::hash::Hash + Send + Sync,
{
    let bound = g.node_bound();
    let dnfs_before = pool.dnf_count();
    let hits_before = pool.ops_hits();
    let misses_before = pool.ops_misses();
    let adj = build_adj(g, guard_of, pool);

    // Longest-path-to-sink levels: successors always sit on strictly
    // smaller levels, so a level only reads finished rows.
    let mut level = vec![0usize; bound];
    let mut max_level = 0usize;
    for &n in order.iter().rev() {
        let l = adj[n.index()]
            .iter()
            .map(|&(m, _, _)| level[m as usize] + 1)
            .max()
            .unwrap_or(0);
        level[n.index()] = l;
        max_level = max_level.max(l);
    }
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for &n in order {
        levels[level[n.index()]].push(n.0);
    }
    for nodes in &mut levels {
        nodes.sort_unstable();
    }

    let mut rows: Vec<IRow> = vec![Vec::new(); bound];
    let mut stats = ClosureStats {
        rows: order.len(),
        levels: levels.len(),
        ..ClosureStats::default()
    };
    let mut scratch = RowScratch::new(bound);
    for (li, nodes) in levels.iter().enumerate() {
        let _span = obs::span_with("closure.level", || {
            format!("level={li} nodes={}", nodes.len())
        });
        let out = compose_level_batch(
            &adj,
            nodes,
            pool,
            &rows,
            &mut scratch,
            threads,
            bound,
            &mut stats.pool_hits,
            &mut stats.pool_misses,
        );
        for (&n, row) in nodes.iter().zip(out) {
            rows[n as usize] = row;
        }
    }

    stats.minted = pool.dnf_count() - dnfs_before;
    stats.pool_hits += pool.ops_hits() - hits_before;
    stats.pool_misses += pool.ops_misses() - misses_before;
    (rows, stats)
}

/// Composes the new rows of one same-level batch (`nodes` sorted
/// ascending) against the finished `rows`, fanning out to the worker pool
/// when the batch is wide. Rows are returned in `nodes` order rather than
/// written in place — callers decide how to install them. The worker
/// deltas are merged in deterministic window order, so pool numbering is
/// identical for every thread count.
#[allow(clippy::too_many_arguments)]
fn compose_level_batch<G>(
    adj: &Adj,
    nodes: &[u32],
    pool: &mut DnfPool<G>,
    rows: &[IRow],
    scratch: &mut RowScratch,
    threads: usize,
    bound: usize,
    worker_hits: &mut u64,
    worker_misses: &mut u64,
) -> Vec<IRow>
where
    G: Ord + Clone + std::hash::Hash + Send + Sync,
{
    if threads > 1 && nodes.len() >= PAR_LEVEL_MIN {
        let pool_snap: &DnfPool<G> = &*pool;
        let results = par_ranges(threads, nodes.len(), &|r| {
            let mut ops = SnapshotOps::new(pool_snap);
            let mut scratch = RowScratch::new(bound);
            let wrows: Vec<IRow> = r
                .map(|i| {
                    let n = nodes[i] as usize;
                    compose_row_ops(&mut ops, &mut scratch, adj[n].iter().copied(), |m| {
                        &rows[m as usize]
                    })
                })
                .collect();
            (wrows, ops.into_parts())
        });
        // Deterministic merge: windows in order, each worker's mints
        // re-interned in discovery order (first occurrence wins), so
        // the numbering equals the sequential sweep's.
        let mut out: Vec<IRow> = Vec::with_capacity(nodes.len());
        for (wrows, parts) in results {
            *worker_hits += parts.hits();
            *worker_misses += parts.misses();
            let remap = pool.absorb(parts);
            for wrow in wrows {
                out.push(wrow.into_iter().map(|(t, d)| (t, remap.fix(d))).collect());
            }
        }
        out
    } else {
        let mut ops = MainOps { pool: &mut *pool };
        nodes
            .iter()
            .map(|&n| {
                compose_row_ops(&mut ops, scratch, adj[n as usize].iter().copied(), |m| {
                    &rows[m as usize]
                })
            })
            .collect()
    }
}

/// Telemetry from one [`interned_closure_delta`] update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaClosureStats {
    /// Rows the wavefront recomposed (whether or not they changed).
    pub recomputed: usize,
    /// Rows whose content actually changed.
    pub changed: usize,
    /// Distinct levels the wavefront visited.
    pub levels_touched: usize,
    /// Distinct DNFs the update added to the pool.
    pub minted: usize,
    /// Memo hits across the update's union/compose operations.
    pub pool_hits: u64,
    /// Memo misses (structural computations).
    pub pool_misses: u64,
}

/// In-place delta update of a previously built interned closure.
///
/// `rows` and `level` come from a prior [`interned_closure`] sweep of a
/// *previous version* of the graph (with `level[n]` the longest-path-to-
/// sink level of node `n`); `changed_tails` must list every node whose
/// out-edge set — heads, guards, or multiplicities — differs between the
/// two versions. The update recomposes only the change-propagation cone:
/// the changed tails first, then, level by ascending level, any
/// predecessor of a node whose row *actually* changed. A node whose
/// recomposed row is unchanged stops the propagation, so the cost is
/// proportional to the real impact of the diff, not to the graph size.
///
/// Returns `None` — leaving `rows` untouched — when the delta cannot be
/// applied soundly: the node bound changed, a changed tail is out of
/// bounds, or any changed tail's recomputed level differs from the
/// recorded one. The level check doubles as the acyclicity proof: only
/// edits at the changed tails can alter the level function, so if every
/// changed tail keeps its recorded level, every edge of the edited graph
/// still strictly decreases `level` — the graph is a DAG with the *same*
/// level function, and a cycle-creating insert always raises its tail's
/// level, tripping the fallback. Callers rebuild from scratch on `None`.
///
/// On success returns the ascending list of nodes whose rows changed,
/// plus stats. Given the same inputs the update is bit-identical for
/// every thread count, including the pool's id numbering.
pub fn interned_closure_delta<N: Sync, E: Sync, G>(
    g: &DiGraph<N, E>,
    guard_of: &(impl GuardFn<E, G> + Sync),
    pool: &mut DnfPool<G>,
    threads: usize,
    rows: &mut [IRow],
    level: &[usize],
    changed_tails: &[u32],
) -> Option<(Vec<u32>, DeltaClosureStats)>
where
    G: Ord + Clone + std::hash::Hash + Send + Sync,
{
    let bound = g.node_bound();
    if bound != level.len() || bound != rows.len() {
        return None;
    }
    let dnfs_before = pool.dnf_count();
    let hits_before = pool.ops_hits();
    let misses_before = pool.ops_misses();
    let adj = build_adj(g, guard_of, pool);

    // Pointwise level validation on the edited tails — the whole
    // fallback test, per the invariant above.
    for &u in changed_tails {
        let ui = u as usize;
        if ui >= bound {
            return None;
        }
        let l = adj[ui]
            .iter()
            .map(|&(m, _, _)| level[m as usize] + 1)
            .max()
            .unwrap_or(0);
        if l != level[ui] {
            return None;
        }
    }

    // Ascending-level wavefront. A recomposed row only reads strictly
    // smaller levels, all final by the time its level is drained; a
    // changed row enqueues its predecessors, which sit on strictly
    // higher levels, so every node is recomposed at most once.
    let mut pending: std::collections::BTreeMap<usize, std::collections::BTreeSet<u32>> =
        std::collections::BTreeMap::new();
    for &u in changed_tails {
        pending.entry(level[u as usize]).or_default().insert(u);
    }
    let mut stats = DeltaClosureStats::default();
    let mut changed_all: Vec<u32> = Vec::new();
    let mut scratch = RowScratch::new(bound);
    while let Some((&lvl, _)) = pending.iter().next() {
        let nodes: Vec<u32> = pending.remove(&lvl).expect("peeked key").into_iter().collect();
        stats.levels_touched += 1;
        let out = compose_level_batch(
            &adj,
            &nodes,
            pool,
            rows,
            &mut scratch,
            threads,
            bound,
            &mut stats.pool_hits,
            &mut stats.pool_misses,
        );
        for (&n, row) in nodes.iter().zip(out) {
            stats.recomputed += 1;
            let ni = n as usize;
            if rows[ni] == row {
                continue;
            }
            rows[ni] = row;
            changed_all.push(n);
            for e in g.in_edges(crate::digraph::NodeId(n)) {
                let (p, _) = g.endpoints(e);
                debug_assert!(level[p.index()] > lvl);
                pending.entry(level[p.index()]).or_default().insert(p.0);
            }
        }
    }
    changed_all.sort_unstable();
    stats.changed = changed_all.len();
    stats.minted = pool.dnf_count() - dnfs_before;
    stats.pool_hits += pool.ops_hits() - hits_before;
    stats.pool_misses += pool.ops_misses() - misses_before;
    Some((changed_all, stats))
}

/// [`interned_closure`] with the shared SCC-condensation fallback instead
/// of a `CycleError`: cyclic components are solved by a per-component
/// least fixpoint over the same interned composition (sequential — the
/// condensed path is a diagnostic route, not a hot one). On acyclic
/// inputs this is exactly the level sweep.
pub fn interned_closure_condensed<N: Sync, E: Sync, G>(
    g: &DiGraph<N, E>,
    guard_of: &(impl GuardFn<E, G> + Sync),
    pool: &mut DnfPool<G>,
    threads: usize,
) -> (Vec<IRow>, ClosureStats)
where
    G: Ord + Clone + std::hash::Hash + Send + Sync,
{
    if let Ok(out) = interned_closure(g, guard_of, pool, threads) {
        return out;
    }
    let bound = g.node_bound();
    let dnfs_before = pool.dnf_count();
    let hits_before = pool.ops_hits();
    let misses_before = pool.ops_misses();
    let adj = build_adj(g, guard_of, pool);
    let cond = condense(g);

    let mut rows: Vec<IRow> = vec![Vec::new(); bound];
    let mut scratch = RowScratch::new(bound);
    let mut ops = MainOps { pool };
    let mut rows_composed = 0usize;
    for (c, members) in cond.comps.iter().enumerate() {
        if !cond.cyclic[c] {
            let n = members[0].index();
            let row = {
                let rows_snap: &[IRow] = &rows;
                compose_row_ops(&mut ops, &mut scratch, adj[n].iter().copied(), |m| {
                    &rows_snap[m as usize]
                })
            };
            rows[n] = row;
            rows_composed += 1;
            continue;
        }
        // Monotone fixpoint on the finite lattice of minimal guard-set
        // antichains: coverage only grows, so iteration terminates.
        loop {
            let mut changed = false;
            for &n in members {
                let ni = n.index();
                let row = {
                    let rows_snap: &[IRow] = &rows;
                    compose_row_ops(&mut ops, &mut scratch, adj[ni].iter().copied(), |m| {
                        &rows_snap[m as usize]
                    })
                };
                rows_composed += 1;
                if row != rows[ni] {
                    rows[ni] = row;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    let pool = ops.pool;
    let stats = ClosureStats {
        rows: rows_composed,
        levels: 0,
        minted: pool.dnf_count() - dnfs_before,
        pool_hits: pool.ops_hits() - hits_before,
        pool_misses: pool.ops_misses() - misses_before,
    };
    (rows, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotated::{annotated_closure, Dnf};
    use crate::digraph::EdgeId;

    type G = (u32, bool);

    fn guard_of() -> impl Fn(EdgeId, &Option<G>) -> Option<G> + Sync {
        |_, w: &Option<G>| *w
    }

    /// Resolves interned rows to structural `(target, Dnf)` pairs.
    fn resolve(pool: &DnfPool<G>, rows: &[IRow]) -> Vec<Vec<(u32, Dnf<G>)>> {
        rows.iter()
            .map(|r| r.iter().map(|&(t, d)| (t, pool.dnf(d).clone())).collect())
            .collect()
    }

    fn diamond() -> DiGraph<(), Option<G>> {
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, Some((a.0, true)));
        g.add_edge(a, c, Some((a.0, false)));
        g.add_edge(b, d, None);
        g.add_edge(c, d, None);
        g
    }

    #[test]
    fn matches_structural_closure() {
        let g = diamond();
        let mut pool = DnfPool::new();
        let (rows, stats) = interned_closure(&g, &guard_of(), &mut pool, 1).unwrap();
        let structural = annotated_closure(&g, &guard_of()).unwrap();
        for (ni, srow) in structural.rows().iter().enumerate() {
            let expect: Vec<(u32, Dnf<G>)> =
                srow.iter().map(|(t, d)| (t.0, d.clone())).collect();
            let got: Vec<(u32, Dnf<G>)> = rows[ni]
                .iter()
                .map(|&(t, d)| (t, pool.dnf(d).clone()))
                .collect();
            assert_eq!(got, expect, "row {ni}");
        }
        assert_eq!(stats.rows, 4);
        assert!(stats.levels >= 3);
    }

    #[test]
    fn cycle_is_reported() {
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, None);
        g.add_edge(b, a, None);
        let mut pool = DnfPool::new();
        assert!(interned_closure(&g, &guard_of(), &mut pool, 1).is_err());
    }

    #[test]
    fn condensed_fallback_solves_cycles() {
        // a ⇄ b (cyclic), both reaching c.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, None);
        g.add_edge(b, a, None);
        g.add_edge(b, c, Some((b.0, true)));
        let mut pool = DnfPool::new();
        let (rows, _) = interned_closure_condensed(&g, &guard_of(), &mut pool, 1);
        // a reaches itself (through the cycle), b, and c (guarded).
        assert!(irow_get(&rows[a.index()], a.0).is_some());
        assert!(pool
            .dnf(irow_get(&rows[a.index()], b.0).unwrap())
            .is_always());
        assert_eq!(
            pool.dnf(irow_get(&rows[a.index()], c.0).unwrap()).terms(),
            &[vec![(b.0, true)]]
        );
    }

    /// Delta vs from-scratch on the edited graph: structurally equal rows.
    fn assert_delta_matches_fresh(
        g: &DiGraph<(), Option<G>>,
        pool: &DnfPool<G>,
        rows: &[IRow],
    ) {
        let mut fresh_pool = DnfPool::new();
        let (fresh, _) = interned_closure(g, &guard_of(), &mut fresh_pool, 1).unwrap();
        assert_eq!(resolve(pool, rows), resolve(&fresh_pool, &fresh));
    }

    #[test]
    fn delta_insert_recomputes_cone_only() {
        let g = diamond();
        let mut pool = DnfPool::new();
        let (mut rows, _) = interned_closure(&g, &guard_of(), &mut pool, 1).unwrap();
        let levels: Vec<usize> = vec![2, 1, 1, 0];
        let mut g2 = g.clone();
        let (a, d) = (crate::digraph::NodeId(0), crate::digraph::NodeId(3));
        g2.add_edge(a, d, None); // shortcut a → d; level(a) stays 2
        let (changed, stats) =
            interned_closure_delta(&g2, &guard_of(), &mut pool, 1, &mut rows, &levels, &[a.0])
                .expect("level-stable edit");
        // Only a's row is in the cone, and it does change (d's annotation
        // goes from {T@a}∪{F@a} to always).
        assert_eq!(changed, vec![a.0]);
        assert_eq!(stats.recomputed, 1);
        assert_eq!(stats.levels_touched, 1);
        assert!(pool.dnf(irow_get(&rows[a.index()], d.0).unwrap()).is_always());
        assert_delta_matches_fresh(&g2, &pool, &rows);
    }

    #[test]
    fn delta_delete_matches_fresh() {
        // Build WITH the shortcut, then delete it.
        let mut g = diamond();
        let (a, d) = (crate::digraph::NodeId(0), crate::digraph::NodeId(3));
        let shortcut = g.add_edge(a, d, None);
        let mut pool = DnfPool::new();
        let (mut rows, _) = interned_closure(&g, &guard_of(), &mut pool, 1).unwrap();
        let levels: Vec<usize> = vec![2, 1, 1, 0];
        let mut g2 = g.clone();
        g2.remove_edge(shortcut);
        let (changed, _) =
            interned_closure_delta(&g2, &guard_of(), &mut pool, 1, &mut rows, &levels, &[a.0])
                .expect("level-stable edit");
        assert_eq!(changed, vec![a.0]);
        assert_delta_matches_fresh(&g2, &pool, &rows);
    }

    #[test]
    fn delta_unchanged_row_stops_propagation() {
        // chain s → a → b; duplicate edge a → b inserted: a's row is
        // unchanged (b was already reached unconditionally), so s is
        // never recomposed.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(s, a, None);
        g.add_edge(a, b, None);
        let mut pool = DnfPool::new();
        let (mut rows, _) = interned_closure(&g, &guard_of(), &mut pool, 1).unwrap();
        let levels = vec![2usize, 1, 0];
        let mut g2 = g.clone();
        g2.add_edge(a, b, None);
        let (changed, stats) =
            interned_closure_delta(&g2, &guard_of(), &mut pool, 1, &mut rows, &levels, &[a.0])
                .expect("level-stable edit");
        assert!(changed.is_empty());
        assert_eq!(stats.recomputed, 1, "only the changed tail itself");
        assert_delta_matches_fresh(&g2, &pool, &rows);
    }

    #[test]
    fn delta_rejects_level_perturbation_and_cycles() {
        let g = diamond();
        let mut pool = DnfPool::new();
        let (mut rows, _) = interned_closure(&g, &guard_of(), &mut pool, 1).unwrap();
        let rows_before = rows.clone();
        let levels: Vec<usize> = vec![2, 1, 1, 0];
        let (a, b, d) = (
            crate::digraph::NodeId(0),
            crate::digraph::NodeId(1),
            crate::digraph::NodeId(3),
        );
        // Cycle: d → a raises d's level.
        let mut cyc = g.clone();
        cyc.add_edge(d, a, None);
        assert!(interned_closure_delta(
            &cyc,
            &guard_of(),
            &mut pool,
            1,
            &mut rows,
            &levels,
            &[d.0]
        )
        .is_none());
        // Still acyclic but level-perturbing: b → c stretches b's level.
        let mut stretch = g.clone();
        stretch.add_edge(b, crate::digraph::NodeId(2), None);
        assert!(interned_closure_delta(
            &stretch,
            &guard_of(),
            &mut pool,
            1,
            &mut rows,
            &levels,
            &[b.0]
        )
        .is_none());
        assert_eq!(rows, rows_before, "failed delta must not touch rows");
    }

    #[test]
    fn delta_identical_across_thread_counts() {
        // Three layers so the delta wavefront hits a wide (>= PAR_LEVEL_MIN)
        // batch: 12 sources → 12 mids → sink; editing one mid's out-edge
        // dirties every source.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let sink = g.add_node(());
        let mids: Vec<_> = (0..12).map(|_| g.add_node(())).collect();
        let srcs: Vec<_> = (0..12).map(|_| g.add_node(())).collect();
        // Every mid → sink edge guarded on a distinct variable, so each
        // source's sink annotation is a 12-term antichain that the guard
        // flip below genuinely changes.
        let mut mid_edges = Vec::new();
        for &m in &mids {
            mid_edges.push(g.add_edge(m, sink, Some((m.0, true))));
        }
        for &s in &srcs {
            for &m in &mids {
                g.add_edge(s, m, None);
            }
        }
        let mut base_pool = DnfPool::new();
        let (base_rows, _) = interned_closure(&g, &guard_of(), &mut base_pool, 1).unwrap();
        let mut levels = vec![0usize; g.node_bound()];
        for &m in &mids {
            levels[m.index()] = 1;
        }
        for &s in &srcs {
            levels[s.index()] = 2;
        }
        // Edit: flip mid 0's guard (delete + re-add).
        let mut g2 = g.clone();
        g2.remove_edge(mid_edges[0]);
        g2.add_edge(mids[0], sink, Some((mids[0].0, false)));

        let mut reference: Option<(Vec<IRow>, DnfPool<G>, Vec<u32>)> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut pool = base_pool.clone();
            let mut rows = base_rows.clone();
            let (changed, _) = interned_closure_delta(
                &g2,
                &guard_of(),
                &mut pool,
                threads,
                &mut rows,
                &levels,
                &[mids[0].0],
            )
            .expect("level-stable edit");
            // Cone: the edited mid plus every source.
            assert_eq!(changed.len(), 1 + srcs.len(), "threads={threads}");
            match &reference {
                None => {
                    assert_delta_matches_fresh(&g2, &pool, &rows);
                    reference = Some((rows, pool, changed));
                }
                Some((rrows, rpool, rchanged)) => {
                    assert_eq!(&rows, rrows, "threads={threads}");
                    assert_eq!(pool.dnf_count(), rpool.dnf_count(), "threads={threads}");
                    assert_eq!(&changed, rchanged, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn rows_identical_across_thread_counts() {
        // Wide fork-join so the parallel path actually engages.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let src = g.add_node(());
        let sink = g.add_node(());
        for i in 0..40u32 {
            let mid = g.add_node(());
            let guard = (i % 3 == 0).then_some((src.0, i % 2 == 0));
            g.add_edge(src, mid, guard);
            g.add_edge(mid, sink, None);
        }
        let mut pool1 = DnfPool::new();
        let (rows1, _) = interned_closure(&g, &guard_of(), &mut pool1, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let mut pool_t = DnfPool::new();
            let (rows_t, _) = interned_closure(&g, &guard_of(), &mut pool_t, threads).unwrap();
            assert_eq!(rows_t, rows1, "threads={threads}");
            assert_eq!(pool_t.dnf_count(), pool1.dnf_count(), "threads={threads}");
            assert_eq!(resolve(&pool_t, &rows_t), resolve(&pool1, &rows1));
        }
    }
}
