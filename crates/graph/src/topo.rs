//! Topological ordering, layering and DAG metrics (critical path, width).
//!
//! The scheduler uses layers and the critical path to report the concurrency
//! profile of a synchronization scheme; the benches use them to show that
//! the minimal constraint set preserves the critical path while shrinking
//! the monitored edge count.

use crate::digraph::{DiGraph, NodeId};

/// Error returned when an operation requires a DAG but the graph is cyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Some node that lies on a cycle.
    pub on_cycle: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle through {:?}", self.on_cycle)
    }
}

impl std::error::Error for CycleError {}

/// Kahn topological sort. Fails with a node on a cycle if the graph is not
/// a DAG.
pub fn topo_sort<N, E>(g: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let mut indeg: Vec<usize> = vec![0; g.node_bound()];
    for n in g.node_ids() {
        indeg[n.index()] = g.in_degree(n);
    }
    let mut ready: Vec<NodeId> = g.node_ids().filter(|n| indeg[n.index()] == 0).collect();
    // Process in ascending id order for deterministic output.
    ready.sort();
    ready.reverse();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = ready.pop() {
        order.push(n);
        let mut newly = Vec::new();
        for m in g.successors(n) {
            indeg[m.index()] -= 1;
            if indeg[m.index()] == 0 {
                newly.push(m);
            }
        }
        newly.sort();
        newly.reverse();
        // Keep `ready` behaving like a min-id stack: merge sorted runs.
        ready.extend(newly);
        ready.sort();
        ready.reverse();
    }
    if order.len() != g.node_count() {
        let on_cycle = g
            .node_ids()
            .find(|n| indeg[n.index()] > 0)
            .expect("missing node must have positive in-degree");
        return Err(CycleError { on_cycle });
    }
    Ok(order)
}

/// Assigns each node its earliest layer: `layer(n) = 1 + max(layer(pred))`,
/// sources at layer 0. Fails on cyclic graphs.
pub fn layers<N, E>(g: &DiGraph<N, E>) -> Result<Vec<usize>, CycleError> {
    let order = topo_sort(g)?;
    let mut layer = vec![0usize; g.node_bound()];
    for &n in &order {
        for m in g.successors(n) {
            layer[m.index()] = layer[m.index()].max(layer[n.index()] + 1);
        }
    }
    Ok(layer)
}

/// The number of nodes on the most populous layer — a cheap lower-ish bound
/// on exploitable concurrency (the exact maximum antichain lives in
/// [`crate::matching::max_antichain`]).
pub fn max_layer_width<N, E>(g: &DiGraph<N, E>) -> Result<usize, CycleError> {
    let layer = layers(g)?;
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for n in g.node_ids() {
        *counts.entry(layer[n.index()]).or_default() += 1;
    }
    Ok(counts.values().copied().max().unwrap_or(0))
}

/// Longest weighted path through the DAG, where each node contributes
/// `weight(n)`. Returns `(total, path)`; the empty graph yields `(0, [])`.
///
/// This is the makespan lower bound of a schedule with unlimited workers.
pub fn critical_path<N, E>(
    g: &DiGraph<N, E>,
    mut weight: impl FnMut(NodeId) -> u64,
) -> Result<(u64, Vec<NodeId>), CycleError> {
    let order = topo_sort(g)?;
    let mut best: Vec<u64> = vec![0; g.node_bound()];
    let mut prev: Vec<Option<NodeId>> = vec![None; g.node_bound()];
    for &n in &order {
        let wn = weight(n);
        if best[n.index()] == 0 {
            best[n.index()] = wn;
        }
        for m in g.successors(n) {
            let cand = best[n.index()] + weight(m);
            if cand > best[m.index()] {
                best[m.index()] = cand;
                prev[m.index()] = Some(n);
            }
        }
    }
    let Some(end) = g.node_ids().max_by_key(|n| best[n.index()]) else {
        return Ok((0, Vec::new()));
    };
    let mut path = vec![end];
    let mut cur = end;
    while let Some(p) = prev[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Ok((best[end.index()], path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<(), ()>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        (g, [a, b, c, d])
    }

    #[test]
    fn topo_sort_diamond() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(topo_sort(&g).unwrap(), vec![a, b, c, d]);
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(topo_sort(&g).is_err());
    }

    #[test]
    fn topo_deterministic_min_id_first() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        // No edges: order must be id order regardless of insertion effects.
        let _ = (a, b, c);
        assert_eq!(topo_sort(&g).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn layers_and_width() {
        let (g, [a, b, c, d]) = diamond();
        let l = layers(&g).unwrap();
        assert_eq!(l[a.index()], 0);
        assert_eq!(l[b.index()], 1);
        assert_eq!(l[c.index()], 1);
        assert_eq!(l[d.index()], 2);
        assert_eq!(max_layer_width(&g).unwrap(), 2);
    }

    #[test]
    fn critical_path_unit_weights() {
        let (g, [a, _, _, d]) = diamond();
        let (len, path) = critical_path(&g, |_| 1).unwrap();
        assert_eq!(len, 3);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], a);
        assert_eq!(*path.last().unwrap(), d);
    }

    #[test]
    fn critical_path_weighted_prefers_heavy_branch() {
        let (g, [a, b, c, d]) = diamond();
        // Make branch through c heavy.
        let (len, path) = critical_path(&g, |n| if n == c { 10 } else { 1 }).unwrap();
        assert_eq!(len, 12);
        assert_eq!(path, vec![a, c, d]);
        let _ = b;
    }

    #[test]
    fn empty_graph_metrics() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(topo_sort(&g).unwrap().is_empty());
        assert_eq!(max_layer_width(&g).unwrap(), 0);
        assert_eq!(critical_path(&g, |_| 1).unwrap().0, 0);
    }

    #[test]
    fn works_with_tombstones() {
        let (mut g, [_, b, ..]) = diamond();
        g.remove_node(b);
        let order = topo_sort(&g).unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(max_layer_width(&g).unwrap(), 1);
    }
}
