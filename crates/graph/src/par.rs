//! Shared scoped-thread worker pool.
//!
//! Three phases of the pipeline are embarrassingly parallel behind a
//! deterministic merge: §4.4 minimization (candidate screening and
//! level-batched ancestor recomputation), Petri-net validation (one
//! independent maximal-step run per branch assignment) and the DES
//! scheduler's per-wavefront readiness evaluation. All of them share this
//! module: chunked fork/join maps over [`std::thread::scope`], with a
//! `threads: usize` knob following one convention everywhere — `0` picks
//! the machine's available parallelism, `1` forces the fully sequential
//! path, and the result is bit-identical for any value.
//!
//! The pool is deliberately scope-per-call: workers borrow the caller's
//! read-only snapshot directly (no `Arc`, no channels), and a call with
//! `threads <= 1` or a tiny input never spawns at all, so sprinkling
//! `par_map` on a cold path costs nothing.
//!
//! When the global `dscweaver-obs` recorder is on, each spawned worker
//! tags itself with the stable `worker-{slot}` trace lane and wraps its
//! chunk/window in a span (`par.map.chunk` / `par.range.window`), so a
//! Chrome-trace export shows one row per pool slot with the fork/join
//! structure of every parallel phase. Disabled, this is one relaxed
//! atomic load per spawned worker.
//!
//! ```
//! use dscweaver_graph::{par_map, par_ranges};
//!
//! let xs: Vec<u64> = (0..100).collect();
//! // Output order matches input order for any thread count.
//! assert_eq!(par_map(4, &xs, &|x| x * x), par_map(1, &xs, &|x| x * x));
//!
//! // Deterministic contiguous windows over 0..n, merged positionally.
//! let sums = par_ranges(3, 100, &|r| r.map(|i| i as u64).sum::<u64>());
//! assert_eq!(sums.len(), 3);
//! assert_eq!(sums.iter().sum::<u64>(), 4950);
//! ```

use dscweaver_obs as obs;

/// Resolves a user-facing thread knob: `0` picks the machine's available
/// parallelism (capped at `cap` — the row/assignment work saturates well
/// before large core counts), anything else is taken literally.
pub fn effective_threads(threads: usize, cap: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cap.max(1))
}

/// Chunked parallel map over scoped threads. Falls back to a plain
/// sequential map for one thread or tiny inputs. Output order matches
/// input order regardless of thread count.
pub fn par_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: &(impl Fn(&T) -> R + Sync),
) -> Vec<R> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        for (wslot, (ichunk, ochunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            scope.spawn(move || {
                let _lane = obs::worker_lane(wslot);
                {
                    let _span =
                        obs::span_with("par.map.chunk", || format!("len={}", ichunk.len()));
                    for (item, slot) in ichunk.iter().zip(ochunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                }
                // Flush inside the closure body: `thread::scope` only
                // waits for the closure, not for thread teardown, so the
                // TLS drop-flush could land after the scope returns.
                obs::flush_thread();
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Splits `0..n` into at most `threads` contiguous windows and maps each
/// on its own scoped thread, returning the per-window results in window
/// order. The deterministic window layout (equal-sized, remainder spread
/// over the leading windows) makes the concatenated result independent of
/// the thread count, so callers can merge worker outputs positionally —
/// e.g. branch-assignment validation keeps its failures in
/// assignment-lexicographic order by construction.
pub fn par_ranges<R: Send>(
    threads: usize,
    n: usize,
    f: &(impl Fn(std::ops::Range<usize>) -> R + Sync),
) -> Vec<R> {
    let windows = windows_of(threads, n);
    if threads <= 1 || windows.len() <= 1 {
        return windows.into_iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(windows.len()).collect();
    std::thread::scope(|scope| {
        for (wslot, (w, slot)) in windows.into_iter().zip(out.iter_mut()).enumerate() {
            scope.spawn(move || {
                let _lane = obs::worker_lane(wslot);
                {
                    let _span =
                        obs::span_with("par.range.window", || format!("{}..{}", w.start, w.end));
                    *slot = Some(f(w));
                }
                // See par_map: flush before the scope's join point, not
                // in thread teardown.
                obs::flush_thread();
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Chunked parallel map over *mutable* shards: each worker owns a
/// contiguous chunk of `shards` exclusively for the duration of the call,
/// so shard state can be advanced in place without locks. The per-shard
/// results come back in shard order regardless of the thread count, which
/// keeps a positional merge deterministic — the streaming conformance
/// monitor relies on this for its batch-ingest fan-out. `f` receives the
/// shard's index alongside the shard so workers can look up read-only
/// side tables (e.g. per-shard routing lists) without capturing them
/// mutably.
///
/// Falls back to a plain sequential loop for `threads <= 1` or a single
/// shard; like [`par_map`], the result is bit-identical either way.
pub fn par_shards<T: Send, R: Send>(
    threads: usize,
    shards: &mut [T],
    f: &(impl Fn(usize, &mut T) -> R + Sync),
) -> Vec<R> {
    if threads <= 1 || shards.len() <= 1 {
        return shards.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect();
    }
    let chunk = shards.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(shards.len()).collect();
    std::thread::scope(|scope| {
        for (wslot, (ichunk, ochunk)) in
            shards.chunks_mut(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            scope.spawn(move || {
                let _lane = obs::worker_lane(wslot);
                {
                    let _span =
                        obs::span_with("par.shard.chunk", || format!("len={}", ichunk.len()));
                    for (i, (shard, slot)) in
                        ichunk.iter_mut().zip(ochunk.iter_mut()).enumerate()
                    {
                        *slot = Some(f(wslot * chunk + i, shard));
                    }
                }
                // See par_map: flush before the scope's join point, not
                // in thread teardown.
                obs::flush_thread();
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// The contiguous window layout used by [`par_ranges`]: `min(threads, n)`
/// windows covering `0..n`, sizes differing by at most one, remainder on
/// the leading windows. Empty for `n == 0`.
pub fn windows_of(threads: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let k = threads.max(1).min(n);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0usize, 1, 2, 3, 7, 100, 1000] {
            let got = par_map(threads, &items, &|&x| x * x + 1);
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, &|&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], &|&x| x + 1), vec![8]);
    }

    #[test]
    fn par_shards_mutates_in_place_and_merges_in_shard_order() {
        for threads in [0usize, 1, 2, 3, 7, 64] {
            let mut shards: Vec<Vec<u64>> = (0..9).map(|i| vec![i]).collect();
            let sums = par_shards(threads, &mut shards, &|i, s: &mut Vec<u64>| {
                s.push(i as u64 * 10);
                s.iter().sum::<u64>()
            });
            let expect: Vec<u64> = (0..9u64).map(|i| i + i * 10).collect();
            assert_eq!(sums, expect, "threads {threads}");
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s, &vec![i as u64, i as u64 * 10], "shard {i} mutated once");
            }
        }
    }

    #[test]
    fn windows_cover_exactly_once() {
        for threads in 1..8 {
            for n in 0..50 {
                let ws = windows_of(threads, n);
                let mut covered = Vec::new();
                for w in &ws {
                    covered.extend(w.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "t={threads} n={n}");
                if n > 0 {
                    assert_eq!(ws.len(), threads.min(n));
                    let sizes: Vec<usize> = ws.iter().map(|w| w.len()).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "balanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_ranges_concatenation_is_thread_count_independent() {
        let collect = |threads: usize| -> Vec<usize> {
            par_ranges(threads, 37, &|r| r.map(|i| i * 3).collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect()
        };
        // NOTE: window *boundaries* differ with the thread count; only the
        // concatenation is pinned.
        let expect = collect(1);
        for threads in [2usize, 3, 5, 64] {
            assert_eq!(collect(threads), expect, "threads {threads}");
        }
    }

    #[test]
    fn effective_threads_convention() {
        assert_eq!(effective_threads(3, 8), 3);
        assert_eq!(effective_threads(1, 8), 1);
        assert!(effective_threads(0, 8) >= 1);
        assert!(effective_threads(0, 2) <= 2);
    }
}
