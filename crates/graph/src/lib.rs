//! # dscweaver-graph
//!
//! Graph substrate for the DSCWeaver workspace — the reproduction of
//! *"Categorization and Optimization of Synchronization Dependencies in
//! Business Processes"* (Wu, Pu, Sahai, Barga — ICDE 2007).
//!
//! Every dependency structure in the paper is ultimately a directed graph:
//! program-dependence graphs (§3.1), synchronization constraint sets
//! (Definition 1), Petri-net skeletons (§4.1) and the scheduler's ready
//! tracking. This crate provides those structures and the algorithms the
//! paper's optimization rests on, implemented from scratch:
//!
//! * [`DiGraph`] — a directed multigraph with stable indices and tombstone
//!   removal (service-dependency translation removes external nodes in
//!   place).
//! * [`closure`] — plain transitive closure (bitset rows).
//! * [`annotated`] — the paper's Definition 3: **condition-annotated**
//!   transitive closure, where activities reached through conditional
//!   constraints carry their guard annotations.
//! * [`reduction`] — transitive reduction, the fast path for minimal
//!   constraint sets on unconditional DAGs (Definition 6).
//! * [`scc`] / [`topo`] — conflict (cycle) detection and DAG orderings.
//! * [`dom`] — dominators/post-dominators for control-dependence extraction.
//! * [`matching`] — Hopcroft–Karp and exact maximum antichains (peak
//!   concurrency of a schedule).
//! * [`iclosure`] — Definition 3 built **directly in interned form**,
//!   level-parallel on the [`par`] pool (the minimizer's closure engine).
//! * [`lru`] — a bounded least-recently-used map capping the minimizer's
//!   `implies` memo (graceful hit-rate degradation past the limit).
//! * [`fx`] — the fast multiply-rotate hasher behind every memo table.

#![warn(missing_docs)]

pub mod annotated;
pub mod bitset;
pub mod closure;
pub mod digraph;
pub mod dom;
pub mod dot;
pub mod fx;
pub mod iclosure;
pub mod intern;
pub mod lru;
pub mod matching;
pub mod par;
pub mod reduction;
pub mod scc;
pub mod topo;
pub mod visit;

pub use annotated::{
    annotated_closure, annotated_closure_condensed, AnnotatedClosure, Dnf, GuardSet, Row,
};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use iclosure::{
    compose_interned_row, interned_closure, interned_closure_condensed, interned_closure_delta,
    irow_get, ClosureStats, DeltaClosureStats, IRow, RowScratch,
};
pub use intern::{DnfId, DnfPool, FrozenDnfPool, PoolRemap, SnapshotOps, SnapshotParts, TermId};
pub use lru::LruCache;
pub use bitset::BitSet;
pub use closure::{condense, transitive_closure, Closure, Condensation};
pub use digraph::{DiGraph, EdgeId, NodeId};
pub use dom::{dominators, Dominators};
pub use dot::{to_dot, EdgeStyle, NodeStyle};
pub use matching::{hopcroft_karp, max_antichain};
pub use par::{effective_threads, par_map, par_ranges, par_shards};
pub use reduction::{redundant_edges, transitive_reduction};
pub use scc::{condensation, find_cycle, has_cycle, tarjan_scc};
pub use topo::{critical_path, layers, max_layer_width, topo_sort, CycleError};
pub use visit::{bfs_order, dfs_postorder, reachable_from, reaching_to, shortest_path};
