//! A bounded LRU map used to cap memoization tables.
//!
//! The minimizer's `implies` memo previously stopped caching entirely
//! once the interning pool crossed `pool_cache_limit` — a hit-rate
//! cliff. [`LruCache`] replaces that with graceful degradation: the memo
//! keeps its `capacity` most-recently-used entries and evicts the
//! coldest, so sustained churn degrades the hit rate smoothly instead of
//! to zero. The recency list is intrusive (u32 prev/next indices into a
//! slot arena), so an access is two `HashMap` probes and a handful of
//! index writes — no allocation after the arena fills.
//!
//! ```
//! use dscweaver_graph::LruCache;
//!
//! let mut cache: LruCache<u32, &str> = LruCache::new(2);
//! cache.insert(1, "one");
//! cache.insert(2, "two");
//! assert_eq!(cache.get(&1), Some(&"one")); // refreshes 1
//! cache.insert(3, "three"); // evicts 2, the least recently used
//! assert_eq!(cache.get(&2), None);
//! assert_eq!(cache.len(), 2);
//! assert_eq!(cache.evictions(), 1);
//! ```

use crate::fx::FxHashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

struct Slot<K, V> {
    key: K,
    val: V,
    prev: u32,
    next: u32,
}

/// A hash map bounded to `capacity` entries with least-recently-used
/// eviction. `capacity == 0` means unbounded (no eviction ever), keeping
/// the pre-existing "0 = no limit" knob convention.
pub struct LruCache<K, V> {
    map: FxHashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    head: u32,
    tail: u32,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates an empty cache holding at most `capacity` entries
    /// (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries have been evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.slots[idx as usize].val)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        Some(&self.slots[idx as usize].val)
    }

    /// Inserts or updates `key`, marking it most-recently-used. At
    /// capacity, the least-recently-used entry is evicted and its slot
    /// reused.
    pub fn insert(&mut self, key: K, val: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx as usize].val = val;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.capacity != 0 && self.map.len() >= self.capacity {
            let idx = self.tail;
            debug_assert_ne!(idx, NIL);
            self.detach(idx);
            let slot = &mut self.slots[idx as usize];
            self.map.remove(&slot.key);
            slot.key = key.clone();
            slot.val = val;
            self.map.insert(key, idx);
            self.attach_front(idx);
            self.evictions += 1;
            return;
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot { key: key.clone(), val, prev: NIL, next: NIL });
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_in_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 0..3 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 0);
        c.insert(3, 30); // evicts 0
        c.insert(4, 40); // evicts 1
        assert_eq!(c.get(&0), None);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&1), Some(&1)); // 2 is now the LRU entry
        c.insert(3, 3);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&1));
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn insert_updates_existing_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(1, 100);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.peek(&1), Some(&100));
        c.insert(3, 3); // 2 is the LRU entry after 1's refresh-by-update
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        for k in 0..10_000 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 10_000);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&0), Some(&0));
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn matches_naive_model_under_random_workload() {
        use dscweaver_prng::Rng;
        let mut rng = Rng::seed_from_u64(0xD5C_4EA);
        for cap in [1usize, 2, 7, 16] {
            let mut c: LruCache<u32, u32> = LruCache::new(cap);
            // Naive model: Vec of (key, val), front = most recent.
            let mut model: Vec<(u32, u32)> = Vec::new();
            for step in 0..4000u32 {
                let key = rng.random_range(24) as u32;
                if rng.random_bool(0.5) {
                    let got = c.get(&key).copied();
                    let want = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let e = model.remove(i);
                        model.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want, "cap {cap} step {step} get {key}");
                } else {
                    c.insert(key, step);
                    if let Some(i) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(i);
                    } else if model.len() >= cap {
                        model.pop();
                    }
                    model.insert(0, (key, step));
                }
                assert_eq!(c.len(), model.len());
            }
        }
    }
}
