//! A fast, non-cryptographic hasher for the workspace's hot memo tables.
//!
//! The interning pool and the minimizer's caches key on tiny tuples of
//! `u32` ids and look them up millions of times per closure build; the
//! standard library's SipHash dominates those probes. This is the
//! multiply-rotate construction used by rustc (`FxHasher`), implemented
//! in-repo because the build runs with zero network access. All keys are
//! trusted internal values, so HashDoS resistance is irrelevant here.
//!
//! ```
//! use dscweaver_graph::fx::FxHashMap;
//!
//! let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
//! m.insert((1, 2), 3);
//! assert_eq!(m.get(&(1, 2)), Some(&3));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-rotate hasher. Deterministic (no random
/// state), so iteration-order-sensitive callers must still sort.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(bytes[..4].try_into().unwrap())));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishing() {
        let h = |f: &dyn Fn(&mut FxHasher)| {
            let mut x = FxHasher::default();
            f(&mut x);
            x.finish()
        };
        assert_eq!(h(&|x| x.write_u64(7)), h(&|x| x.write_u64(7)));
        assert_ne!(h(&|x| x.write_u64(7)), h(&|x| x.write_u64(8)));
        assert_ne!(
            h(&|x| {
                x.write_u32(1);
                x.write_u32(2)
            }),
            h(&|x| {
                x.write_u32(2);
                x.write_u32(1)
            })
        );
    }

    #[test]
    fn map_roundtrip_with_tuple_and_string_keys() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                m.insert((a, b), a * 100 + b);
            }
        }
        assert_eq!(m.len(), 2500);
        assert_eq!(m.get(&(13, 37)), Some(&1337));

        let mut s: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..100 {
            s.insert(format!("key-{i}"), i);
        }
        assert_eq!(s.get("key-42"), Some(&42));
    }
}
