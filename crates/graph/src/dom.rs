//! Dominator analysis (Cooper–Harvey–Kennedy "A Simple, Fast Dominance
//! Algorithm").
//!
//! The PDG crate derives **control dependence** from post-dominators exactly
//! as Ferrante–Ottenstein–Warren do: activity `b` is control dependent on
//! branch `a` iff `a` has a successor from which `b` is (post-)dominated by
//! `b`... see `dscweaver-pdg::control`. This module supplies the dominator
//! tree over an arbitrary rooted flow graph; post-dominators are obtained by
//! running it on the reversed graph.

use crate::digraph::{DiGraph, NodeId};
use crate::visit::dfs_postorder;

/// The immediate-dominator relation for nodes reachable from `root`.
#[derive(Clone, Debug)]
pub struct Dominators {
    root: NodeId,
    /// `idom[n.index()]` is the immediate dominator of `n`; the root maps to
    /// itself; unreachable nodes map to `None`.
    idom: Vec<Option<NodeId>>,
}

impl Dominators {
    /// The root the analysis was run from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immediate dominator of `n` (the root returns itself); `None` if `n`
    /// is unreachable from the root.
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom.get(n.index()).copied().flatten()
    }

    /// True if `a` dominates `b` (reflexive: every node dominates itself).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }

    /// True if `a` *strictly* dominates `b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The dominator-tree path from `n` up to the root (inclusive).
    pub fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = vec![n];
        let mut cur = n;
        while let Some(p) = self.idom(cur) {
            if p == cur {
                break;
            }
            out.push(p);
            cur = p;
        }
        out
    }
}

/// Computes dominators of nodes reachable from `root` following edges
/// forward. For post-dominators, call with `reverse = true` and `root` set
/// to the unique exit node.
pub fn dominators<N, E>(g: &DiGraph<N, E>, root: NodeId, reverse: bool) -> Dominators {
    // Work on a forward view: neighbor functions swap under `reverse`.
    let succ = |n: NodeId| -> Vec<NodeId> {
        if reverse {
            g.predecessors(n).collect()
        } else {
            g.successors(n).collect()
        }
    };
    let pred = |n: NodeId| -> Vec<NodeId> {
        if reverse {
            g.successors(n).collect()
        } else {
            g.predecessors(n).collect()
        }
    };

    // Postorder over the (possibly reversed) graph.
    let postorder: Vec<NodeId> = if reverse {
        // dfs_postorder walks forward edges; emulate by local DFS on preds.
        reverse_postorder_on(g, root)
    } else {
        dfs_postorder(g, root)
    };
    let mut order_of: Vec<usize> = vec![usize::MAX; g.node_bound()];
    for (i, &n) in postorder.iter().enumerate() {
        order_of[n.index()] = i;
    }

    let mut idom: Vec<Option<NodeId>> = vec![None; g.node_bound()];
    idom[root.index()] = Some(root);

    let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
        while a != b {
            while order_of[a.index()] < order_of[b.index()] {
                a = idom[a.index()].expect("processed node lacks idom");
            }
            while order_of[b.index()] < order_of[a.index()] {
                b = idom[b.index()].expect("processed node lacks idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder, skipping the root.
        for &n in postorder.iter().rev() {
            if n == root {
                continue;
            }
            let mut new_idom: Option<NodeId> = None;
            for p in pred(n) {
                if order_of[p.index()] == usize::MAX || idom[p.index()].is_none() {
                    continue; // unreachable or not yet processed
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[n.index()] != Some(ni) {
                    idom[n.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    let _ = succ; // succ retained for symmetry/documentation
    Dominators { root, idom }
}

/// Postorder of nodes reachable from `root` along **reversed** edges.
fn reverse_postorder_on<N, E>(g: &DiGraph<N, E>, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_bound()];
    let mut order = Vec::new();
    let mut stack = vec![(root, false)];
    while let Some((n, expanded)) = stack.pop() {
        if expanded {
            order.push(n);
            continue;
        }
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        stack.push((n, true));
        let preds: Vec<NodeId> = g.predecessors(n).collect();
        for m in preds.into_iter().rev() {
            if !seen[m.index()] {
                stack.push((m, false));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic CFG:
    /// entry → a → b → d → exit
    ///          ↘ c ↗
    fn diamond_cfg() -> (DiGraph<&'static str, ()>, [NodeId; 6]) {
        let mut g = DiGraph::new();
        let entry = g.add_node("entry");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let exit = g.add_node("exit");
        g.add_edge(entry, a, ());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        g.add_edge(d, exit, ());
        (g, [entry, a, b, c, d, exit])
    }

    #[test]
    fn idoms_on_diamond() {
        let (g, [entry, a, b, c, d, exit]) = diamond_cfg();
        let dom = dominators(&g, entry, false);
        assert_eq!(dom.idom(a), Some(entry));
        assert_eq!(dom.idom(b), Some(a));
        assert_eq!(dom.idom(c), Some(a));
        assert_eq!(dom.idom(d), Some(a), "joins are dominated by the branch");
        assert_eq!(dom.idom(exit), Some(d));
        assert!(dom.dominates(a, exit));
        assert!(!dom.dominates(b, d));
        assert!(dom.strictly_dominates(entry, exit));
        assert!(!dom.strictly_dominates(d, d));
    }

    #[test]
    fn postdominators_on_diamond() {
        let (g, [entry, a, b, c, d, exit]) = diamond_cfg();
        let pdom = dominators(&g, exit, true);
        assert_eq!(pdom.idom(d), Some(exit));
        assert_eq!(pdom.idom(b), Some(d));
        assert_eq!(pdom.idom(c), Some(d));
        assert_eq!(pdom.idom(a), Some(d), "the join post-dominates the branch");
        assert_eq!(pdom.idom(entry), Some(a));
        assert!(pdom.dominates(d, entry));
        assert!(!pdom.dominates(b, a));
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let (mut g, [entry, ..]) = diamond_cfg();
        let island = g.add_node("island");
        let dom = dominators(&g, entry, false);
        assert_eq!(dom.idom(island), None);
        assert!(!dom.dominates(entry, island));
    }

    #[test]
    fn loop_cfg() {
        // entry → h → body → h (back edge), h → exit.
        let mut g = DiGraph::new();
        let entry = g.add_node("entry");
        let h = g.add_node("h");
        let body = g.add_node("body");
        let exit = g.add_node("exit");
        g.add_edge(entry, h, ());
        g.add_edge(h, body, ());
        g.add_edge(body, h, ());
        g.add_edge(h, exit, ());
        let dom = dominators(&g, entry, false);
        assert_eq!(dom.idom(body), Some(h));
        assert_eq!(dom.idom(exit), Some(h));
        let pdom = dominators(&g, exit, true);
        assert_eq!(pdom.idom(body), Some(h), "body must come back through h");
        assert_eq!(pdom.idom(entry), Some(h));
    }

    #[test]
    fn ancestors_chain() {
        let (g, [entry, a, b, _, d, exit]) = diamond_cfg();
        let dom = dominators(&g, entry, false);
        assert_eq!(dom.ancestors(exit), vec![exit, d, a, entry]);
        let _ = b;
    }
}
