//! Condition-annotated transitive closure — the paper's Definition 3.
//!
//! Given `a1 → a2 →_T a3 → a4`, the paper writes the closure of `a1` as
//! `{a2, a3(T@a2), a4(T@a2)}`: activities reached through a conditional
//! constraint carry the guard annotation, and the annotation propagates to
//! everything downstream of the guard.
//!
//! We generalize this soundly to multiple paths: the annotation of a
//! reachable node is the **set of minimal guard-sets** over all paths from
//! the source (a monotone DNF). A path with no guards contributes the empty
//! guard-set, which absorbs every other term ("reachable unconditionally").
//! Two closures are *the same* (Definition 3's note) iff they reach the same
//! nodes with identical minimal DNFs.
//!
//! The guard type `G` is abstract; the DSCL crate instantiates it with
//! `(guard activity, branch value)` pairs.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use crate::topo::{topo_sort, CycleError};
use std::collections::BTreeMap;

/// A conjunction of guards, kept sorted and deduplicated.
pub type GuardSet<G> = Vec<G>;

/// A monotone DNF over guards: the set of *minimal* guard-sets under
/// inclusion. Canonically sorted, so `Eq` is semantic equality (and
/// `Hash` is consistent with it — required by [`crate::intern::DnfPool`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Dnf<G> {
    terms: Vec<GuardSet<G>>,
}

impl<G: Ord + Clone> Dnf<G> {
    /// The DNF with no terms (unreachable / identity for union).
    pub fn empty() -> Self {
        Dnf { terms: Vec::new() }
    }

    /// The DNF containing only the unconditional term `{}` ("always").
    pub fn always() -> Self {
        Dnf {
            terms: vec![Vec::new()],
        }
    }

    /// A DNF with a single conjunction term.
    pub fn term(mut gs: GuardSet<G>) -> Self {
        gs.sort();
        gs.dedup();
        Dnf { terms: vec![gs] }
    }

    /// True if no term exists.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if the unconditional term `{}` is present (and, by minimality,
    /// is the only term).
    pub fn is_always(&self) -> bool {
        self.terms.first().is_some_and(Vec::is_empty)
    }

    /// The minimal terms, each sorted, in canonical order.
    pub fn terms(&self) -> &[GuardSet<G>] {
        &self.terms
    }

    /// Adds a term; returns true if coverage grew. Maintains minimality:
    /// a term subsumed by an existing subset is dropped, and existing
    /// supersets of the new term are removed.
    pub fn insert(&mut self, mut gs: GuardSet<G>) -> bool {
        gs.sort();
        gs.dedup();
        if self.terms.iter().any(|t| is_subset(t, &gs)) {
            return false;
        }
        self.terms.retain(|t| !is_subset(&gs, t));
        let pos = self.terms.binary_search(&gs).unwrap_err();
        self.terms.insert(pos, gs);
        true
    }

    /// Union with another DNF; returns true if coverage grew.
    pub fn union_with(&mut self, other: &Dnf<G>) -> bool {
        let mut changed = false;
        for t in &other.terms {
            changed |= self.insert(t.clone());
        }
        changed
    }

    /// Every term of `self`, each extended with `extra`, inserted into
    /// `target`; returns true if `target`'s coverage grew. This is the
    /// "walk one more (possibly guarded) edge" composition step.
    pub fn compose_into(&self, extra: Option<&G>, target: &mut Dnf<G>) -> bool {
        let mut changed = false;
        for t in &self.terms {
            let mut gs = t.clone();
            if let Some(g) = extra {
                gs.push(g.clone());
            }
            changed |= target.insert(gs);
        }
        changed
    }
}

/// Sorted-slice subset test.
fn is_subset<G: Ord>(small: &[G], big: &[G]) -> bool {
    let mut i = 0;
    for b in big {
        if i == small.len() {
            return true;
        }
        match small[i].cmp(b) {
            std::cmp::Ordering::Equal => i += 1,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {}
        }
    }
    i == small.len()
}

/// One closure row: target node index → annotation DNF.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Row<G> {
    entries: BTreeMap<u32, Dnf<G>>,
}

impl<G: Ord + Clone> Row<G> {
    /// Empty row.
    pub fn new() -> Self {
        Row {
            entries: BTreeMap::new(),
        }
    }

    /// The annotation with which `n` is reached, if reachable.
    pub fn get(&self, n: NodeId) -> Option<&Dnf<G>> {
        self.entries.get(&n.0)
    }

    /// True if `n` is reachable (under any condition).
    pub fn reaches(&self, n: NodeId) -> bool {
        self.entries.contains_key(&n.0)
    }

    /// Number of reachable targets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(target, dnf)` in ascending target order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Dnf<G>)> {
        self.entries.iter().map(|(&i, d)| (NodeId(i), d))
    }

    fn entry(&mut self, n: NodeId) -> &mut Dnf<G> {
        self.entries.entry(n.0).or_insert_with(Dnf::empty)
    }

    /// Adds one guard-set term to the annotation of `n`; returns true if
    /// coverage grew.
    pub fn add_term(&mut self, n: NodeId, term: GuardSet<G>) -> bool {
        self.entry(n).insert(term)
    }

    /// Folds `dnf ⊗ extra` into the annotation of `n`; returns true if
    /// coverage grew.
    pub fn compose_from(&mut self, n: NodeId, dnf: &Dnf<G>, extra: Option<&G>) -> bool {
        dnf.compose_into(extra, self.entry(n))
    }

    /// Definition 4's per-activity test, annotation-exact: every target of
    /// `self` is a target of `other` **with the same minimal DNF**.
    pub fn covered_by(&self, other: &Row<G>) -> bool
    where
        G: PartialEq,
    {
        self.entries
            .iter()
            .all(|(i, d)| other.entries.get(i) == Some(d))
    }
}

/// Extracts the closure-relevant view of an edge: `(target, guard)` where
/// `guard` is `None` for unconditional constraints.
pub trait GuardFn<E, G> {
    /// The guard carried by edge `e` with weight `w`, if conditional.
    fn guard(&self, e: EdgeId, w: &E) -> Option<G>;
}

impl<E, G, F: Fn(EdgeId, &E) -> Option<G>> GuardFn<E, G> for F {
    fn guard(&self, e: EdgeId, w: &E) -> Option<G> {
        self(e, w)
    }
}

/// Composes the row of `n` from its out-edges and the rows of its
/// successors: `row(n) = ⋃_{n →g m} ({m: g} ∪ g ⊗ row(m))`.
///
/// `row_of(m)` must already be the finished row of `m` (reverse topological
/// processing guarantees this on DAGs). Returns the freshly built row.
pub fn compose_row<N, E, G: Ord + Clone>(
    g: &DiGraph<N, E>,
    n: NodeId,
    guard_of: &impl GuardFn<E, G>,
    mut row_of: impl FnMut(NodeId) -> Row<G>,
) -> Row<G> {
    let mut row = Row::new();
    for e in g.out_edges(n) {
        let (_, m) = g.endpoints(e);
        let guard = guard_of.guard(e, g.edge_weight(e));
        // Direct edge n -> m.
        row.entry(m).insert(match &guard {
            Some(gu) => vec![gu.clone()],
            None => Vec::new(),
        });
        // Everything m reaches, with the edge guard appended.
        let mrow = row_of(m);
        for (t, dnf) in mrow.iter() {
            dnf.compose_into(guard.as_ref(), row.entry(t));
        }
    }
    row
}

/// The full condition-annotated transitive closure (all rows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnotatedClosure<G> {
    rows: Vec<Row<G>>,
}

impl<G: Ord + Clone> AnnotatedClosure<G> {
    /// The row for `n`.
    pub fn row(&self, n: NodeId) -> &Row<G> {
        &self.rows[n.index()]
    }

    /// All rows indexed by node index (tombstone slots hold empty rows).
    pub fn rows(&self) -> &[Row<G>] {
        &self.rows
    }

    /// Consumes the closure, yielding the rows.
    pub fn into_rows(self) -> Vec<Row<G>> {
        self.rows
    }
}

/// Computes the annotated closure of a **DAG** in one reverse-topological
/// pass. Returns the cycle error untouched for cyclic inputs — the callers
/// (optimizer, validator) treat cycles as specification conflicts and
/// report them separately.
pub fn annotated_closure<N, E, G: Ord + Clone>(
    g: &DiGraph<N, E>,
    guard_of: &impl GuardFn<E, G>,
) -> Result<AnnotatedClosure<G>, CycleError> {
    let order = topo_sort(g)?;
    let mut rows: Vec<Row<G>> = vec![Row::new(); g.node_bound()];
    for &n in order.iter().rev() {
        let row = compose_row(g, n, guard_of, |m| rows[m.index()].clone());
        rows[n.index()] = row;
    }
    Ok(AnnotatedClosure { rows })
}

/// [`annotated_closure`] with a cyclic fallback instead of a `CycleError`:
/// the graph is condensed through the shared [`crate::closure::condense`]
/// entry point and each cyclic component is solved by a least fixpoint
/// (iterate [`compose_row`] until no row grows — coverage is monotone over
/// the finite lattice of minimal guard-set antichains, so this
/// terminates). Acyclic inputs take exactly the one-pass DAG path.
///
/// Members of a cyclic component reach themselves, mirroring the strict
/// unconditional closure's self-reachability-on-cycles convention.
pub fn annotated_closure_condensed<N, E, G: Ord + Clone>(
    g: &DiGraph<N, E>,
    guard_of: &impl GuardFn<E, G>,
) -> AnnotatedClosure<G> {
    if let Ok(c) = annotated_closure(g, guard_of) {
        return c;
    }
    let cond = crate::closure::condense(g);
    let mut rows: Vec<Row<G>> = vec![Row::new(); g.node_bound()];
    for (c, members) in cond.comps.iter().enumerate() {
        if !cond.cyclic[c] {
            let n = members[0];
            let row = compose_row(g, n, guard_of, |m| rows[m.index()].clone());
            rows[n.index()] = row;
            continue;
        }
        loop {
            let mut changed = false;
            for &n in members {
                let row = compose_row(g, n, guard_of, |m| rows[m.index()].clone());
                if row != rows[n.index()] {
                    rows[n.index()] = row;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    AnnotatedClosure { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    type G = (u32, bool); // (guard node raw id, branch value)

    fn guard_of() -> impl Fn(EdgeId, &Option<G>) -> Option<G> {
        |_, w: &Option<G>| *w
    }

    /// The paper's running example: a1 → a2 →_T a3 → a4.
    #[test]
    fn paper_definition3_example() {
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a1 = g.add_node(());
        let a2 = g.add_node(());
        let a3 = g.add_node(());
        let a4 = g.add_node(());
        g.add_edge(a1, a2, None);
        g.add_edge(a2, a3, Some((a2.0, true)));
        g.add_edge(a3, a4, None);
        let c = annotated_closure(&g, &guard_of()).unwrap();
        let r = c.row(a1);
        // a1+ = {a2, a3(T@a2), a4(T@a2)}
        assert_eq!(r.len(), 3);
        assert!(r.get(a2).unwrap().is_always());
        assert_eq!(r.get(a3).unwrap().terms(), &[vec![(a2.0, true)]]);
        assert_eq!(r.get(a4).unwrap().terms(), &[vec![(a2.0, true)]]);
        // a2+ = {a3(T@a2), a4(T@a2)} — the annotation note applies from the
        // conditional edge onward.
        let r2 = c.row(a2);
        assert_eq!(r2.get(a4).unwrap().terms(), &[vec![(a2.0, true)]]);
    }

    #[test]
    fn unconditional_path_absorbs_conditional() {
        // a → b (direct) and a →_T c → b: b is reachable unconditionally.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, None);
        g.add_edge(a, c, Some((a.0, true)));
        g.add_edge(c, b, None);
        let cl = annotated_closure(&g, &guard_of()).unwrap();
        assert!(cl.row(a).get(b).unwrap().is_always());
        assert_eq!(cl.row(a).get(c).unwrap().terms(), &[vec![(a.0, true)]]);
    }

    #[test]
    fn alternative_guards_kept_as_separate_terms() {
        // a →_T b and a →_F c →(unconditionally) b ... both guarded paths
        // to d: d carries two minimal one-guard terms.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, Some((a.0, true)));
        g.add_edge(a, c, Some((a.0, false)));
        g.add_edge(b, d, None);
        g.add_edge(c, d, None);
        let cl = annotated_closure(&g, &guard_of()).unwrap();
        let dnf = cl.row(a).get(d).unwrap();
        assert_eq!(dnf.terms().len(), 2);
        assert_eq!(
            dnf.terms(),
            &[vec![(a.0, false)], vec![(a.0, true)]],
            "canonical order"
        );
    }

    #[test]
    fn nested_guards_accumulate() {
        // a →_T b →_F c: c annotated with both guards.
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, Some((a.0, true)));
        g.add_edge(b, c, Some((b.0, false)));
        let cl = annotated_closure(&g, &guard_of()).unwrap();
        assert_eq!(
            cl.row(a).get(c).unwrap().terms(),
            &[vec![(a.0, true), (b.0, false)]]
        );
    }

    #[test]
    fn dnf_minimality() {
        let mut d: Dnf<u32> = Dnf::empty();
        assert!(d.insert(vec![1, 2]));
        assert!(d.insert(vec![3]));
        assert!(!d.insert(vec![1, 2, 3]), "superset of an existing term is subsumed");
        assert!(d.insert(vec![1]), "subset replaces wider term");
        assert_eq!(d.terms(), &[vec![1], vec![3]]);
        assert!(!d.insert(vec![1]));
        assert!(d.insert(vec![]), "always absorbs everything");
        assert!(d.is_always());
        assert_eq!(d.terms().len(), 1);
    }

    #[test]
    fn dnf_union() {
        let mut a: Dnf<u32> = Dnf::term(vec![1]);
        let b: Dnf<u32> = Dnf::term(vec![2]);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.terms().len(), 2);
    }

    #[test]
    fn row_cover_is_annotation_exact() {
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, Some((a.0, true)));
        g.add_edge(b, c, None);
        let cl = annotated_closure(&g, &guard_of()).unwrap();

        // Same graph but with the guard dropped: rows differ.
        let mut g2: DiGraph<(), Option<G>> = DiGraph::new();
        let a2 = g2.add_node(());
        let b2 = g2.add_node(());
        let c2 = g2.add_node(());
        g2.add_edge(a2, b2, None);
        g2.add_edge(b2, c2, None);
        let cl2 = annotated_closure(&g2, &guard_of()).unwrap();

        assert!(cl.row(a).covered_by(cl.row(a)));
        assert!(
            !cl.row(a).covered_by(cl2.row(a2)),
            "conditional vs unconditional annotations are not the same"
        );
    }

    #[test]
    fn cycle_is_reported() {
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, None);
        g.add_edge(b, a, None);
        assert!(annotated_closure(&g, &guard_of()).is_err());
    }

    #[test]
    fn compose_row_matches_full_closure() {
        let mut g: DiGraph<(), Option<G>> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, Some((a.0, true)));
        g.add_edge(b, c, None);
        g.add_edge(a, c, Some((a.0, false)));
        let cl = annotated_closure(&g, &guard_of()).unwrap();
        let rebuilt = compose_row(&g, a, &guard_of(), |m| cl.row(m).clone());
        assert_eq!(&rebuilt, cl.row(a));
    }
}
