//! Bipartite matching (Hopcroft–Karp) and the exact maximum antichain of a
//! DAG via Dilworth's theorem.
//!
//! The maximum antichain of a dependency DAG is the exact peak concurrency a
//! scheduler with unlimited workers can exploit; the benches report it next
//! to the cheaper layer-width estimate when comparing the optimized and
//! construct-based schedules (experiment Ext-D).

use crate::bitset::BitSet;
use crate::closure::transitive_closure;
use crate::digraph::{DiGraph, NodeId};
use crate::topo::CycleError;
use crate::topo::topo_sort;
use std::collections::VecDeque;

/// A maximum-cardinality matching in a bipartite graph given as adjacency
/// lists `adj[l] = right neighbors of left vertex l`.
///
/// Returns `match_l[l] = Some(r)` pairs; unmatched vertices map to `None`.
pub fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    assert_eq!(adj.len(), n_left);
    const INF: u32 = u32::MAX;
    let mut match_l: Vec<Option<usize>> = vec![None; n_left];
    let mut match_r: Vec<Option<usize>> = vec![None; n_right];
    let mut dist: Vec<u32> = vec![INF; n_left];

    loop {
        // BFS phase: layer free left vertices.
        let mut queue = VecDeque::new();
        for (l, m) in match_l.iter().enumerate() {
            if m.is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                match match_r[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        fn try_augment(
            l: usize,
            adj: &[Vec<usize>],
            dist: &mut [u32],
            match_l: &mut [Option<usize>],
            match_r: &mut [Option<usize>],
        ) -> bool {
            for i in 0..adj[l].len() {
                let r = adj[l][i];
                let ok = match match_r[r] {
                    None => true,
                    Some(l2) => {
                        dist[l2] == dist[l] + 1
                            && try_augment(l2, adj, dist, match_l, match_r)
                    }
                };
                if ok {
                    match_l[l] = Some(r);
                    match_r[r] = Some(l);
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n_left {
            if match_l[l].is_none() {
                try_augment(l, adj, &mut dist, &mut match_l, &mut match_r);
            }
        }
    }
    match_l
}

/// The exact maximum antichain of a DAG (Dilworth / Fulkerson): the minimum
/// number of chains covering the *comparability* order equals `n - M` where
/// `M` is a maximum matching in the split bipartite graph over the
/// transitive closure; the maximum antichain size equals that chain count.
///
/// Also returns one concrete antichain (a maximum independent set of the
/// comparability relation, recovered via König's theorem).
pub fn max_antichain<N, E>(g: &DiGraph<N, E>) -> Result<(usize, Vec<NodeId>), CycleError> {
    topo_sort(g)?;
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let n = nodes.len();
    let mut pos: Vec<usize> = vec![usize::MAX; g.node_bound()];
    for (i, &nd) in nodes.iter().enumerate() {
        pos[nd.index()] = i;
    }
    let closure = transitive_closure(g);
    // Left copy i connects to right copy j iff i strictly reaches j.
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&a| {
            closure
                .row(a)
                .iter()
                .filter(|&t| pos[t] != usize::MAX)
                .map(|t| pos[t])
                .collect()
        })
        .collect();
    let match_l = hopcroft_karp(n, n, &adj);
    let matched = match_l.iter().flatten().count();
    let width = n - matched;

    // König: minimum vertex cover = Z-construction; the antichain is the
    // complement, intersected per Dilworth's correspondence.
    let mut match_r: Vec<Option<usize>> = vec![None; n];
    for (l, r) in match_l.iter().enumerate() {
        if let Some(r) = r {
            match_r[*r] = Some(l);
        }
    }
    // Z = free left vertices plus everything alternating-reachable.
    let mut z_l = BitSet::new(n);
    let mut z_r = BitSet::new(n);
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (l, m) in match_l.iter().enumerate() {
        if m.is_none() {
            z_l.insert(l);
            queue.push_back(l);
        }
    }
    while let Some(l) = queue.pop_front() {
        for &r in &adj[l] {
            if Some(r) == match_l[l] {
                continue; // only non-matching edges L→R
            }
            if !z_r.contains(r) {
                z_r.insert(r);
                if let Some(l2) = match_r[r] {
                    if !z_l.contains(l2) {
                        z_l.insert(l2);
                        queue.push_back(l2);
                    }
                }
            }
        }
    }
    // Vertex cover = (L \ Z_L) ∪ (R ∩ Z_R). A node is in the antichain iff
    // neither of its copies is in the cover.
    let antichain: Vec<NodeId> = (0..n)
        .filter(|&i| z_l.contains(i) && !z_r.contains(i))
        .map(|i| nodes[i])
        .collect();
    debug_assert_eq!(antichain.len(), width, "König recovery size mismatch");
    Ok((width, antichain))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopcroft_karp_perfect() {
        // 3x3 with a perfect matching.
        let adj = vec![vec![0, 1], vec![0], vec![2]];
        let m = hopcroft_karp(3, 3, &adj);
        assert_eq!(m.iter().flatten().count(), 3);
        assert_eq!(m[1], Some(0));
        assert_eq!(m[0], Some(1));
        assert_eq!(m[2], Some(2));
    }

    #[test]
    fn hopcroft_karp_partial() {
        // Two lefts both only liking right 0.
        let adj = vec![vec![0], vec![0]];
        let m = hopcroft_karp(2, 1, &adj);
        assert_eq!(m.iter().flatten().count(), 1);
    }

    #[test]
    fn antichain_of_chain_is_one() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let (w, ac) = max_antichain(&g).unwrap();
        assert_eq!(w, 1);
        assert_eq!(ac.len(), 1);
    }

    #[test]
    fn antichain_of_independent_set_is_n() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..7 {
            g.add_node(());
        }
        let (w, ac) = max_antichain(&g).unwrap();
        assert_eq!(w, 7);
        assert_eq!(ac.len(), 7);
    }

    #[test]
    fn antichain_diamond_is_two() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let (w, ac) = max_antichain(&g).unwrap();
        assert_eq!(w, 2);
        assert_eq!(ac, vec![b, c]);
    }

    #[test]
    fn antichain_exceeds_layer_width() {
        // Staircase where the max antichain spans two layers:
        // a→b, c (isolated at layer 0), b has layer 1. Antichain {b, c}... use
        // a case where layer width underestimates: a→b→c and d→c: layers are
        // {a,d}, {b}, {c}: width 2; antichain {b, d} also 2. Construct a
        // sharper case: two chains of different length sharing the sink.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        // chain a→b→e, chain c→d→e plus cross edge a→d.
        g.add_edge(a, b, ());
        g.add_edge(b, e, ());
        g.add_edge(c, d, ());
        g.add_edge(d, e, ());
        g.add_edge(a, d, ());
        let (w, ac) = max_antichain(&g).unwrap();
        assert_eq!(w, 2);
        for &x in &ac {
            for &y in &ac {
                if x != y {
                    let cl = transitive_closure(&g);
                    assert!(!cl.reaches(x, y) && !cl.reaches(y, x));
                }
            }
        }
    }

    #[test]
    fn antichain_is_independent() {
        // Deterministic pseudo-random DAG; verify the recovered antichain is
        // pairwise incomparable and matches the reported width.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..20).map(|_| g.add_node(())).collect();
        let mut x: u64 = 42;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..20usize {
            for j in (i + 1)..20 {
                if rnd() % 4 == 0 {
                    g.add_edge(ids[i], ids[j], ());
                }
            }
        }
        let (w, ac) = max_antichain(&g).unwrap();
        assert_eq!(w, ac.len());
        let cl = transitive_closure(&g);
        for &a in &ac {
            for &b in &ac {
                if a != b {
                    assert!(!cl.reaches(a, b));
                }
            }
        }
    }

    #[test]
    fn cyclic_rejected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(max_antichain(&g).is_err());
    }
}
