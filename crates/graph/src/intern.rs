//! Hash-consing pool for guard terms and [`Dnf`]s.
//!
//! The §4.4 minimizer compares, unions, and composes the same annotation
//! DNFs millions of times on large constraint sets. Interning collapses
//! each distinct guard-set and each distinct DNF to a `u32` id:
//!
//! * equality of rows becomes equality of id vectors (no tree walks);
//! * union and guard-composition are memoized — the same `(lhs, rhs)`
//!   pair is computed structurally once and looked up ever after;
//! * downstream semantic caches (e.g. the minimizer's implication cache)
//!   can key on `(DnfId, DnfId)` pairs instead of whole formulas.
//!
//! The pool keeps the structural [`Dnf`] of every interned id, so holders
//! of a shared `&DnfPool` (worker threads) can resolve ids back to
//! formulas without synchronization; only interning new values needs
//! `&mut`.

use crate::annotated::{Dnf, GuardSet};
use crate::fx::FxHashMap;

/// Id of an interned guard-set (conjunction term).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(pub u32);

/// Id of an interned DNF. Ids are dense and stable for the pool's
/// lifetime; `DnfId` equality is semantic DNF equality (DNFs are kept in
/// canonical minimal form by [`Dnf`] itself).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DnfId(pub u32);

/// The hash-consing pool. `EMPTY` and `ALWAYS` are pre-interned so the
/// two ubiquitous constants never hit the hash maps.
#[derive(Clone, Debug)]
pub struct DnfPool<G> {
    terms: Vec<GuardSet<G>>,
    term_ids: FxHashMap<GuardSet<G>, TermId>,
    /// Canonical term-id vector per DNF (sorted by id — deterministic,
    /// therefore a valid hash-cons key).
    dnf_keys: Vec<Vec<TermId>>,
    dnf_ids: FxHashMap<Vec<TermId>, DnfId>,
    /// Structural form per DNF, for `&self` resolution.
    dnf_structs: Vec<Dnf<G>>,
    union_memo: FxHashMap<(DnfId, DnfId), DnfId>,
    and_memo: FxHashMap<(DnfId, DnfId), DnfId>,
    /// `compose(dnf, guard)` keyed by the guard's singleton term id.
    compose_memo: FxHashMap<(DnfId, TermId), DnfId>,
    guard_dnf_memo: FxHashMap<TermId, DnfId>,
    ops_hits: u64,
    ops_misses: u64,
}

impl<G: Ord + Clone + std::hash::Hash> Default for DnfPool<G> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: Ord + Clone + std::hash::Hash> DnfPool<G> {
    /// The id of [`Dnf::empty`] in every pool.
    pub const EMPTY: DnfId = DnfId(0);
    /// The id of [`Dnf::always`] in every pool.
    pub const ALWAYS: DnfId = DnfId(1);

    /// A pool with `EMPTY` and `ALWAYS` pre-interned.
    pub fn new() -> Self {
        let mut pool = DnfPool {
            terms: Vec::new(),
            term_ids: FxHashMap::default(),
            dnf_keys: Vec::new(),
            dnf_ids: FxHashMap::default(),
            dnf_structs: Vec::new(),
            union_memo: FxHashMap::default(),
            and_memo: FxHashMap::default(),
            compose_memo: FxHashMap::default(),
            guard_dnf_memo: FxHashMap::default(),
            ops_hits: 0,
            ops_misses: 0,
        };
        let e = pool.intern(&Dnf::empty());
        let a = pool.intern(&Dnf::always());
        debug_assert_eq!(e, Self::EMPTY);
        debug_assert_eq!(a, Self::ALWAYS);
        pool
    }

    /// Number of distinct DNFs interned.
    pub fn dnf_count(&self) -> usize {
        self.dnf_structs.len()
    }

    /// Number of distinct guard-set terms interned.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Interns one guard-set. The slice must already be in the canonical
    /// sorted/deduplicated form [`Dnf`] maintains.
    pub fn intern_term(&mut self, gs: &GuardSet<G>) -> TermId {
        if let Some(&id) = self.term_ids.get(gs) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(gs.clone());
        self.term_ids.insert(gs.clone(), id);
        id
    }

    /// The guard-set behind a term id.
    pub fn term(&self, id: TermId) -> &GuardSet<G> {
        &self.terms[id.0 as usize]
    }

    /// Interns a DNF (canonical by construction) and returns its id.
    /// Structurally equal DNFs always map to the same id.
    pub fn intern(&mut self, d: &Dnf<G>) -> DnfId {
        let mut key: Vec<TermId> = d.terms().iter().map(|t| self.intern_term(t)).collect();
        key.sort_unstable();
        if let Some(&id) = self.dnf_ids.get(&key) {
            return id;
        }
        let id = DnfId(self.dnf_structs.len() as u32);
        self.dnf_keys.push(key.clone());
        self.dnf_ids.insert(key, id);
        self.dnf_structs.push(d.clone());
        id
    }

    /// The structural DNF behind an id — `&self`, so shareable across
    /// read-only borrowers.
    pub fn dnf(&self, id: DnfId) -> &Dnf<G> {
        &self.dnf_structs[id.0 as usize]
    }

    /// Read-only lookup of an already-interned guard-set. Returns `None`
    /// (without mutating the pool) when the term was never interned.
    pub fn lookup_term(&self, gs: &GuardSet<G>) -> Option<TermId> {
        self.term_ids.get(gs).copied()
    }

    /// Read-only lookup of an already-interned DNF. Worker threads use
    /// this to dedupe freshly computed rows against the shared pool
    /// before minting thread-local ids.
    pub fn lookup(&self, d: &Dnf<G>) -> Option<DnfId> {
        let mut key = Vec::with_capacity(d.terms().len());
        for t in d.terms() {
            key.push(self.lookup_term(t)?);
        }
        key.sort_unstable();
        self.dnf_ids.get(&key).copied()
    }

    /// Read-only probe of the compose memo (`&self`, worker-safe).
    /// Identity/absorption short-circuits are applied; `None` means the
    /// pair was never computed on the owning thread.
    pub fn peek_compose(&self, a: DnfId, t: TermId) -> Option<DnfId> {
        if a == Self::EMPTY {
            return Some(Self::EMPTY);
        }
        self.compose_memo.get(&(a, t)).copied()
    }

    /// Read-only probe of the union memo (`&self`, worker-safe).
    pub fn peek_union(&self, a: DnfId, b: DnfId) -> Option<DnfId> {
        if a == b || b == Self::EMPTY {
            return Some(a);
        }
        if a == Self::EMPTY {
            return Some(b);
        }
        if a == Self::ALWAYS || b == Self::ALWAYS {
            return Some(Self::ALWAYS);
        }
        self.union_memo.get(&(a.min(b), a.max(b))).copied()
    }

    /// Records a compose result discovered off-pool (e.g. by a worker's
    /// thread-local delta pool) so later sequential calls hit the memo.
    /// The ids must all be valid in this pool.
    pub fn note_compose(&mut self, a: DnfId, t: TermId, r: DnfId) {
        self.compose_memo.insert((a, t), r);
    }

    /// Records a union result discovered off-pool; see [`Self::note_compose`].
    pub fn note_union(&mut self, a: DnfId, b: DnfId, r: DnfId) {
        self.union_memo.insert((a.min(b), a.max(b)), r);
    }

    /// Memo hits across `union`/`and`/`compose` since construction
    /// (identity short-circuits are not counted).
    pub fn ops_hits(&self) -> u64 {
        self.ops_hits
    }

    /// Structural (memo-miss) computations across `union`/`and`/`compose`.
    pub fn ops_misses(&self) -> u64 {
        self.ops_misses
    }

    /// True if `id` is the empty (unreachable) DNF.
    pub fn is_empty(&self, id: DnfId) -> bool {
        id == Self::EMPTY
    }

    /// True if `id` is the unconditional DNF.
    pub fn is_always(&self, id: DnfId) -> bool {
        id == Self::ALWAYS
    }

    /// The singleton DNF `{{g}}` for a guard, or `ALWAYS` for `None`.
    pub fn of_guard(&mut self, g: Option<&G>) -> DnfId {
        match g {
            None => Self::ALWAYS,
            Some(g) => {
                let t = self.intern_term(&vec![g.clone()]);
                if let Some(&id) = self.guard_dnf_memo.get(&t) {
                    return id;
                }
                let id = self.intern(&Dnf::term(vec![g.clone()]));
                self.guard_dnf_memo.insert(t, id);
                id
            }
        }
    }

    /// Memoized union. Commutative, so the memo is keyed `(min, max)`.
    pub fn union(&mut self, a: DnfId, b: DnfId) -> DnfId {
        if a == b || b == Self::EMPTY {
            return a;
        }
        if a == Self::EMPTY {
            return b;
        }
        if a == Self::ALWAYS || b == Self::ALWAYS {
            return Self::ALWAYS;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.union_memo.get(&key) {
            self.ops_hits += 1;
            return id;
        }
        self.ops_misses += 1;
        let mut out = self.dnf(a).clone();
        out.union_with(self.dnf(b));
        let id = self.intern(&out);
        self.union_memo.insert(key, id);
        id
    }

    /// Memoized conjunction (cross product of terms, minimized).
    pub fn and(&mut self, a: DnfId, b: DnfId) -> DnfId {
        if a == b || b == Self::ALWAYS {
            return a;
        }
        if a == Self::ALWAYS {
            return b;
        }
        if a == Self::EMPTY || b == Self::EMPTY {
            return Self::EMPTY;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.and_memo.get(&key) {
            self.ops_hits += 1;
            return id;
        }
        self.ops_misses += 1;
        let mut out = Dnf::empty();
        for ta in self.dnf(a).terms() {
            for tb in self.dnf(b).terms() {
                let mut t = ta.clone();
                t.extend(tb.iter().cloned());
                out.insert(t);
            }
        }
        let id = self.intern(&out);
        self.and_memo.insert(key, id);
        id
    }

    /// Memoized "walk one more guarded edge": every term of `a` extended
    /// with `extra`. With no guard this is the identity.
    pub fn compose(&mut self, a: DnfId, extra: Option<&G>) -> DnfId {
        let Some(g) = extra else { return a };
        if a == Self::EMPTY {
            return Self::EMPTY;
        }
        let t = self.intern_term(&vec![g.clone()]);
        self.compose_term(a, t)
    }

    /// [`Self::compose`] addressed by an already-interned singleton guard
    /// term — the closure engine pre-interns every edge guard once and
    /// then composes by id only, skipping the per-call term hash.
    pub fn compose_term(&mut self, a: DnfId, t: TermId) -> DnfId {
        if a == Self::EMPTY {
            return Self::EMPTY;
        }
        let key = (a, t);
        if let Some(&id) = self.compose_memo.get(&key) {
            self.ops_hits += 1;
            return id;
        }
        self.ops_misses += 1;
        debug_assert_eq!(self.terms[t.0 as usize].len(), 1, "guard terms are singletons");
        let g = self.terms[t.0 as usize][0].clone();
        let mut out = Dnf::empty();
        self.dnf(a).compose_into(Some(&g), &mut out);
        let id = self.intern(&out);
        self.compose_memo.insert(key, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_pre_interned() {
        let pool: DnfPool<u32> = DnfPool::new();
        assert!(pool.dnf(DnfPool::<u32>::EMPTY).is_empty());
        assert!(pool.dnf(DnfPool::<u32>::ALWAYS).is_always());
        assert_eq!(pool.dnf_count(), 2);
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let mut a = Dnf::term(vec![1, 2]);
        a.insert(vec![3]);
        let mut b = Dnf::term(vec![3]);
        b.insert(vec![2, 1]);
        let ia = pool.intern(&a);
        let ib = pool.intern(&b);
        assert_eq!(ia, ib);
        assert_eq!(pool.dnf(ia), &a);
        // A different DNF gets a different id.
        let ic = pool.intern(&Dnf::term(vec![1]));
        assert_ne!(ia, ic);
    }

    #[test]
    fn union_matches_structural() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let a = pool.intern(&Dnf::term(vec![1]));
        let b = pool.intern(&Dnf::term(vec![2]));
        let u = pool.union(a, b);
        let mut expect = Dnf::term(vec![1]);
        expect.union_with(&Dnf::term(vec![2]));
        assert_eq!(pool.dnf(u), &expect);
        // Memo: same answer, and identities short-circuit.
        assert_eq!(pool.union(b, a), u);
        assert_eq!(pool.union(a, DnfPool::<u32>::EMPTY), a);
        assert_eq!(pool.union(a, DnfPool::<u32>::ALWAYS), DnfPool::<u32>::ALWAYS);
        assert_eq!(pool.union(u, u), u);
    }

    #[test]
    fn and_matches_structural() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let mut ab = Dnf::term(vec![1]);
        ab.insert(vec![2]);
        let a = pool.intern(&ab);
        let b = pool.intern(&Dnf::term(vec![3]));
        let c = pool.and(a, b);
        let mut expect = Dnf::term(vec![1, 3]);
        expect.insert(vec![2, 3]);
        assert_eq!(pool.dnf(c), &expect);
        assert_eq!(pool.and(a, DnfPool::<u32>::ALWAYS), a);
        assert_eq!(pool.and(a, DnfPool::<u32>::EMPTY), DnfPool::<u32>::EMPTY);
    }

    #[test]
    fn compose_appends_guard() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let a = pool.intern(&Dnf::term(vec![1]));
        let c = pool.compose(a, Some(&7));
        assert_eq!(pool.dnf(c), &Dnf::term(vec![1, 7]));
        assert_eq!(pool.compose(a, None), a, "no guard is identity");
        assert_eq!(
            pool.compose(DnfPool::<u32>::ALWAYS, Some(&7)),
            pool.intern(&Dnf::term(vec![7]))
        );
        assert_eq!(
            pool.compose(DnfPool::<u32>::EMPTY, Some(&7)),
            DnfPool::<u32>::EMPTY
        );
    }

    #[test]
    fn of_guard_memoizes() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let a = pool.of_guard(Some(&4));
        let b = pool.of_guard(Some(&4));
        assert_eq!(a, b);
        assert_eq!(pool.of_guard(None), DnfPool::<u32>::ALWAYS);
        assert_eq!(pool.dnf(a), &Dnf::term(vec![4]));
    }
}
