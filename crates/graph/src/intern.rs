//! Hash-consing pool for guard terms and [`Dnf`]s.
//!
//! The §4.4 minimizer compares, unions, and composes the same annotation
//! DNFs millions of times on large constraint sets. Interning collapses
//! each distinct guard-set and each distinct DNF to a `u32` id:
//!
//! * equality of rows becomes equality of id vectors (no tree walks);
//! * union and guard-composition are memoized — the same `(lhs, rhs)`
//!   pair is computed structurally once and looked up ever after;
//! * downstream semantic caches (e.g. the minimizer's implication cache)
//!   can key on `(DnfId, DnfId)` pairs instead of whole formulas.
//!
//! The pool keeps the structural [`Dnf`] of every interned id, so holders
//! of a shared `&DnfPool` (worker threads) can resolve ids back to
//! formulas without synchronization; only interning new values needs
//! `&mut`.

use crate::annotated::{Dnf, GuardSet};
use crate::fx::FxHashMap;
use std::sync::Arc;

/// Id of an interned guard-set (conjunction term).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(pub u32);

/// Id of an interned DNF. Ids are dense and stable for the pool's
/// lifetime; `DnfId` equality is semantic DNF equality (DNFs are kept in
/// canonical minimal form by [`Dnf`] itself).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DnfId(pub u32);

/// The hash-consing pool. `EMPTY` and `ALWAYS` are pre-interned so the
/// two ubiquitous constants never hit the hash maps.
#[derive(Clone, Debug)]
pub struct DnfPool<G> {
    terms: Vec<GuardSet<G>>,
    term_ids: FxHashMap<GuardSet<G>, TermId>,
    /// Canonical term-id vector per DNF (sorted by id — deterministic,
    /// therefore a valid hash-cons key).
    dnf_keys: Vec<Vec<TermId>>,
    dnf_ids: FxHashMap<Vec<TermId>, DnfId>,
    /// Structural form per DNF, for `&self` resolution.
    dnf_structs: Vec<Dnf<G>>,
    union_memo: FxHashMap<(DnfId, DnfId), DnfId>,
    and_memo: FxHashMap<(DnfId, DnfId), DnfId>,
    /// `compose(dnf, guard)` keyed by the guard's singleton term id.
    compose_memo: FxHashMap<(DnfId, TermId), DnfId>,
    guard_dnf_memo: FxHashMap<TermId, DnfId>,
    ops_hits: u64,
    ops_misses: u64,
}

impl<G: Ord + Clone + std::hash::Hash> Default for DnfPool<G> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: Ord + Clone + std::hash::Hash> DnfPool<G> {
    /// The id of [`Dnf::empty`] in every pool.
    pub const EMPTY: DnfId = DnfId(0);
    /// The id of [`Dnf::always`] in every pool.
    pub const ALWAYS: DnfId = DnfId(1);

    /// A pool with `EMPTY` and `ALWAYS` pre-interned.
    pub fn new() -> Self {
        let mut pool = DnfPool {
            terms: Vec::new(),
            term_ids: FxHashMap::default(),
            dnf_keys: Vec::new(),
            dnf_ids: FxHashMap::default(),
            dnf_structs: Vec::new(),
            union_memo: FxHashMap::default(),
            and_memo: FxHashMap::default(),
            compose_memo: FxHashMap::default(),
            guard_dnf_memo: FxHashMap::default(),
            ops_hits: 0,
            ops_misses: 0,
        };
        let e = pool.intern(&Dnf::empty());
        let a = pool.intern(&Dnf::always());
        debug_assert_eq!(e, Self::EMPTY);
        debug_assert_eq!(a, Self::ALWAYS);
        pool
    }

    /// Number of distinct DNFs interned.
    pub fn dnf_count(&self) -> usize {
        self.dnf_structs.len()
    }

    /// Number of distinct guard-set terms interned.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Interns one guard-set. The slice must already be in the canonical
    /// sorted/deduplicated form [`Dnf`] maintains.
    pub fn intern_term(&mut self, gs: &GuardSet<G>) -> TermId {
        if let Some(&id) = self.term_ids.get(gs) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(gs.clone());
        self.term_ids.insert(gs.clone(), id);
        id
    }

    /// The guard-set behind a term id.
    pub fn term(&self, id: TermId) -> &GuardSet<G> {
        &self.terms[id.0 as usize]
    }

    /// Interns a DNF (canonical by construction) and returns its id.
    /// Structurally equal DNFs always map to the same id.
    pub fn intern(&mut self, d: &Dnf<G>) -> DnfId {
        let mut key: Vec<TermId> = d.terms().iter().map(|t| self.intern_term(t)).collect();
        key.sort_unstable();
        if let Some(&id) = self.dnf_ids.get(&key) {
            return id;
        }
        let id = DnfId(self.dnf_structs.len() as u32);
        self.dnf_keys.push(key.clone());
        self.dnf_ids.insert(key, id);
        self.dnf_structs.push(d.clone());
        id
    }

    /// The structural DNF behind an id — `&self`, so shareable across
    /// read-only borrowers.
    pub fn dnf(&self, id: DnfId) -> &Dnf<G> {
        &self.dnf_structs[id.0 as usize]
    }

    /// Read-only lookup of an already-interned guard-set. Returns `None`
    /// (without mutating the pool) when the term was never interned.
    pub fn lookup_term(&self, gs: &GuardSet<G>) -> Option<TermId> {
        self.term_ids.get(gs).copied()
    }

    /// Read-only lookup of an already-interned DNF. Worker threads use
    /// this to dedupe freshly computed rows against the shared pool
    /// before minting thread-local ids.
    pub fn lookup(&self, d: &Dnf<G>) -> Option<DnfId> {
        let mut key = Vec::with_capacity(d.terms().len());
        for t in d.terms() {
            key.push(self.lookup_term(t)?);
        }
        key.sort_unstable();
        self.dnf_ids.get(&key).copied()
    }

    /// Read-only probe of the compose memo (`&self`, worker-safe).
    /// Identity/absorption short-circuits are applied; `None` means the
    /// pair was never computed on the owning thread.
    pub fn peek_compose(&self, a: DnfId, t: TermId) -> Option<DnfId> {
        if a == Self::EMPTY {
            return Some(Self::EMPTY);
        }
        self.compose_memo.get(&(a, t)).copied()
    }

    /// Read-only probe of the union memo (`&self`, worker-safe).
    pub fn peek_union(&self, a: DnfId, b: DnfId) -> Option<DnfId> {
        if a == b || b == Self::EMPTY {
            return Some(a);
        }
        if a == Self::EMPTY {
            return Some(b);
        }
        if a == Self::ALWAYS || b == Self::ALWAYS {
            return Some(Self::ALWAYS);
        }
        self.union_memo.get(&(a.min(b), a.max(b))).copied()
    }

    /// Records a compose result discovered off-pool (e.g. by a worker's
    /// thread-local delta pool) so later sequential calls hit the memo.
    /// The ids must all be valid in this pool.
    pub fn note_compose(&mut self, a: DnfId, t: TermId, r: DnfId) {
        self.compose_memo.insert((a, t), r);
    }

    /// Records a union result discovered off-pool; see [`Self::note_compose`].
    pub fn note_union(&mut self, a: DnfId, b: DnfId, r: DnfId) {
        self.union_memo.insert((a.min(b), a.max(b)), r);
    }

    /// Memo hits across `union`/`and`/`compose` since construction
    /// (identity short-circuits are not counted).
    pub fn ops_hits(&self) -> u64 {
        self.ops_hits
    }

    /// Structural (memo-miss) computations across `union`/`and`/`compose`.
    pub fn ops_misses(&self) -> u64 {
        self.ops_misses
    }

    /// True if `id` is the empty (unreachable) DNF.
    pub fn is_empty(&self, id: DnfId) -> bool {
        id == Self::EMPTY
    }

    /// True if `id` is the unconditional DNF.
    pub fn is_always(&self, id: DnfId) -> bool {
        id == Self::ALWAYS
    }

    /// The singleton DNF `{{g}}` for a guard, or `ALWAYS` for `None`.
    pub fn of_guard(&mut self, g: Option<&G>) -> DnfId {
        match g {
            None => Self::ALWAYS,
            Some(g) => {
                let t = self.intern_term(&vec![g.clone()]);
                if let Some(&id) = self.guard_dnf_memo.get(&t) {
                    return id;
                }
                let id = self.intern(&Dnf::term(vec![g.clone()]));
                self.guard_dnf_memo.insert(t, id);
                id
            }
        }
    }

    /// Memoized union. Commutative, so the memo is keyed `(min, max)`.
    pub fn union(&mut self, a: DnfId, b: DnfId) -> DnfId {
        if a == b || b == Self::EMPTY {
            return a;
        }
        if a == Self::EMPTY {
            return b;
        }
        if a == Self::ALWAYS || b == Self::ALWAYS {
            return Self::ALWAYS;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.union_memo.get(&key) {
            self.ops_hits += 1;
            return id;
        }
        self.ops_misses += 1;
        let mut out = self.dnf(a).clone();
        out.union_with(self.dnf(b));
        let id = self.intern(&out);
        self.union_memo.insert(key, id);
        id
    }

    /// Memoized conjunction (cross product of terms, minimized).
    pub fn and(&mut self, a: DnfId, b: DnfId) -> DnfId {
        if a == b || b == Self::ALWAYS {
            return a;
        }
        if a == Self::ALWAYS {
            return b;
        }
        if a == Self::EMPTY || b == Self::EMPTY {
            return Self::EMPTY;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.and_memo.get(&key) {
            self.ops_hits += 1;
            return id;
        }
        self.ops_misses += 1;
        let mut out = Dnf::empty();
        for ta in self.dnf(a).terms() {
            for tb in self.dnf(b).terms() {
                let mut t = ta.clone();
                t.extend(tb.iter().cloned());
                out.insert(t);
            }
        }
        let id = self.intern(&out);
        self.and_memo.insert(key, id);
        id
    }

    /// Memoized "walk one more guarded edge": every term of `a` extended
    /// with `extra`. With no guard this is the identity.
    pub fn compose(&mut self, a: DnfId, extra: Option<&G>) -> DnfId {
        let Some(g) = extra else { return a };
        if a == Self::EMPTY {
            return Self::EMPTY;
        }
        let t = self.intern_term(&vec![g.clone()]);
        self.compose_term(a, t)
    }

    /// [`Self::compose`] addressed by an already-interned singleton guard
    /// term — the closure engine pre-interns every edge guard once and
    /// then composes by id only, skipping the per-call term hash.
    pub fn compose_term(&mut self, a: DnfId, t: TermId) -> DnfId {
        if a == Self::EMPTY {
            return Self::EMPTY;
        }
        let key = (a, t);
        if let Some(&id) = self.compose_memo.get(&key) {
            self.ops_hits += 1;
            return id;
        }
        self.ops_misses += 1;
        debug_assert_eq!(self.terms[t.0 as usize].len(), 1, "guard terms are singletons");
        let g = self.terms[t.0 as usize][0].clone();
        let mut out = Dnf::empty();
        self.dnf(a).compose_into(Some(&g), &mut out);
        let id = self.intern(&out);
        self.compose_memo.insert(key, id);
        id
    }

    /// Consumes the pool into an immutable, `Arc`-shared snapshot that any
    /// number of threads can read concurrently. Every id interned so far
    /// stays valid (and resolves to the same formula) in the snapshot.
    pub fn freeze(self) -> FrozenDnfPool<G> {
        FrozenDnfPool {
            pool: Arc::new(self),
        }
    }

    /// Merges the provisional mints and memo discoveries of one
    /// [`SnapshotOps`] overlay back into this pool, in discovery order.
    ///
    /// Re-interning in discovery order (first occurrence wins) is what
    /// makes the level-parallel closure's pool numbering bit-identical to
    /// the sequential sweep: callers absorb worker overlays in a fixed
    /// window order, so the id each minted formula receives is independent
    /// of thread scheduling. The returned [`PoolRemap`] translates the
    /// overlay's provisional ids (`>= base`) to their final pool ids.
    ///
    /// The overlay must have been built against a pool whose first
    /// `parts.base()` ids agree with this one — in the common case, this
    /// very pool, or a snapshot of it.
    pub fn absorb(&mut self, parts: SnapshotParts<G>) -> PoolRemap {
        let remap = PoolRemap {
            base: parts.base,
            map: parts.minted.iter().map(|d| self.intern(d)).collect(),
        };
        for (a, t, r) in parts.new_compose {
            self.note_compose(remap.fix(DnfId(a)), TermId(t), remap.fix(DnfId(r)));
        }
        for (a, b, r) in parts.new_union {
            self.note_union(remap.fix(DnfId(a)), remap.fix(DnfId(b)), remap.fix(DnfId(r)));
        }
        remap
    }
}

/// An immutable, reference-counted snapshot of a [`DnfPool`], safe to
/// share across request/worker threads (`Clone` is an `Arc` bump).
///
/// This is the first-class form of the snapshot pattern the level-parallel
/// closure proved out: readers resolve ids, probe memos, and look up
/// formulas with no locking, because nothing can mutate the pool anymore.
/// Threads that need to *create* formulas layer a [`SnapshotOps`] overlay
/// on top and later [`DnfPool::absorb`] it into a mutable pool.
///
/// ```
/// use dscweaver_graph::{Dnf, DnfPool};
///
/// let mut pool: DnfPool<u32> = DnfPool::new();
/// let id = pool.intern(&Dnf::term(vec![1, 2]));
/// let frozen = pool.freeze();
/// let reader = frozen.clone(); // hand this to another thread
/// assert_eq!(reader.dnf(id), &Dnf::term(vec![1, 2]));
/// assert_eq!(reader.lookup(&Dnf::term(vec![1, 2])), Some(id));
/// ```
#[derive(Clone, Debug)]
pub struct FrozenDnfPool<G> {
    pool: Arc<DnfPool<G>>,
}

impl<G: Ord + Clone + std::hash::Hash> FrozenDnfPool<G> {
    /// The read-only pool behind the snapshot.
    pub fn as_pool(&self) -> &DnfPool<G> {
        &self.pool
    }

    /// Number of distinct DNFs interned at freeze time.
    pub fn dnf_count(&self) -> usize {
        self.pool.dnf_count()
    }

    /// Number of distinct guard-set terms interned at freeze time.
    pub fn term_count(&self) -> usize {
        self.pool.term_count()
    }

    /// The structural DNF behind an id.
    pub fn dnf(&self, id: DnfId) -> &Dnf<G> {
        self.pool.dnf(id)
    }

    /// The guard-set behind a term id.
    pub fn term(&self, id: TermId) -> &GuardSet<G> {
        self.pool.term(id)
    }

    /// Read-only lookup of an already-interned DNF.
    pub fn lookup(&self, d: &Dnf<G>) -> Option<DnfId> {
        self.pool.lookup(d)
    }

    /// Read-only lookup of an already-interned guard-set.
    pub fn lookup_term(&self, gs: &GuardSet<G>) -> Option<TermId> {
        self.pool.lookup_term(gs)
    }

    /// A fresh mutable pool with identical contents and numbering —
    /// the escape hatch for paths that must intern (e.g. an incremental
    /// re-weave seeded from a frozen cache entry).
    pub fn thaw(&self) -> DnfPool<G> {
        (*self.pool).clone()
    }

    /// A write overlay for one worker/request thread: reads hit this
    /// snapshot, new formulas get provisional ids. See [`SnapshotOps`].
    pub fn overlay(&self) -> SnapshotOps<'_, G> {
        SnapshotOps::new(&self.pool)
    }
}

/// A thread-local write overlay over a read-only pool (or pool snapshot).
///
/// Reads (`resolve`, memo probes) go to the underlying pool without
/// synchronization; formulas the pool lacks are *minted* with provisional
/// ids `>= base` (where `base` is the pool's `dnf_count()` at overlay
/// creation) and recorded together with every memo discovery. The owner
/// of a mutable pool later calls [`DnfPool::absorb`] on
/// [`SnapshotOps::into_parts`] to merge the overlay deterministically —
/// absorbing overlays in a fixed order yields the same pool numbering as
/// a fully sequential run, which is what lets the closure engines (and
/// the serve registry) share one pool across threads while staying
/// bit-identical at any thread count.
pub struct SnapshotOps<'p, G> {
    pool: &'p DnfPool<G>,
    base: u32,
    minted: Vec<Dnf<G>>,
    minted_ids: FxHashMap<Dnf<G>, u32>,
    compose_local: FxHashMap<(u32, u32), u32>,
    union_local: FxHashMap<(u32, u32), u32>,
    new_compose: Vec<(u32, u32, u32)>,
    new_union: Vec<(u32, u32, u32)>,
    hits: u64,
    misses: u64,
}

/// What one [`SnapshotOps`] overlay hands back for the deterministic
/// merge: the minted formulas in discovery order plus the memo entries
/// discovered while composing, ready for [`DnfPool::absorb`].
pub struct SnapshotParts<G> {
    base: u32,
    minted: Vec<Dnf<G>>,
    new_compose: Vec<(u32, u32, u32)>,
    new_union: Vec<(u32, u32, u32)>,
    hits: u64,
    misses: u64,
}

impl<G> SnapshotParts<G> {
    /// The pool size the overlay was created at — provisional ids start
    /// here.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Memo hits observed by the overlay (pool probes and local).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Structural computations the overlay had to perform.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Translates an overlay's provisional ids to final pool ids after
/// [`DnfPool::absorb`]. Ids below the overlay base pass through.
pub struct PoolRemap {
    base: u32,
    map: Vec<DnfId>,
}

impl PoolRemap {
    /// Final pool id for `id` (identity below the overlay base).
    pub fn fix(&self, id: DnfId) -> DnfId {
        if id.0 >= self.base {
            self.map[(id.0 - self.base) as usize]
        } else {
            id
        }
    }
}

impl<'p, G: Ord + Clone + std::hash::Hash> SnapshotOps<'p, G> {
    /// An overlay over `pool` with provisional ids starting at the pool's
    /// current `dnf_count()`.
    pub fn new(pool: &'p DnfPool<G>) -> Self {
        SnapshotOps {
            pool,
            base: pool.dnf_count() as u32,
            minted: Vec::new(),
            minted_ids: FxHashMap::default(),
            compose_local: FxHashMap::default(),
            union_local: FxHashMap::default(),
            new_compose: Vec::new(),
            new_union: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// First provisional id this overlay mints.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The structural DNF behind a pool id or a provisional id minted by
    /// this overlay.
    pub fn resolve(&self, id: DnfId) -> &Dnf<G> {
        if id.0 >= self.base {
            &self.minted[(id.0 - self.base) as usize]
        } else {
            self.pool.dnf(id)
        }
    }

    /// Local intern: dedupe against the shared pool first, then against
    /// formulas already minted on this overlay.
    pub fn mint(&mut self, d: Dnf<G>) -> DnfId {
        if let Some(id) = self.pool.lookup(&d) {
            return id;
        }
        if let Some(&id) = self.minted_ids.get(&d) {
            return DnfId(id);
        }
        let id = self.base + self.minted.len() as u32;
        self.minted_ids.insert(d.clone(), id);
        self.minted.push(d);
        DnfId(id)
    }

    /// Overlay analogue of [`DnfPool::compose_term`] (with `None` as the
    /// identity). `a` must be a pool id, not a provisional one — closure
    /// compositions always read finished (global) rows.
    pub fn compose(&mut self, a: DnfId, t: Option<TermId>) -> DnfId {
        let Some(t) = t else { return a };
        debug_assert!(a.0 < self.base);
        if let Some(r) = self.pool.peek_compose(a, t) {
            self.hits += 1;
            return r;
        }
        if let Some(&r) = self.compose_local.get(&(a.0, t.0)) {
            self.hits += 1;
            return DnfId(r);
        }
        self.misses += 1;
        let out = {
            let g = &self.pool.term(t)[0];
            let mut out = Dnf::empty();
            self.resolve(a).compose_into(Some(g), &mut out);
            out
        };
        let r = self.mint(out);
        self.compose_local.insert((a.0, t.0), r.0);
        self.new_compose.push((a.0, t.0, r.0));
        r
    }

    /// Overlay analogue of [`DnfPool::union`]; either operand may be
    /// provisional.
    pub fn union(&mut self, a: DnfId, b: DnfId) -> DnfId {
        if a.0 < self.base && b.0 < self.base {
            if let Some(r) = self.pool.peek_union(a, b) {
                self.hits += 1;
                return r;
            }
        } else if a == b {
            return a;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&r) = self.union_local.get(&key) {
            self.hits += 1;
            return DnfId(r);
        }
        self.misses += 1;
        let mut out = self.resolve(a).clone();
        out.union_with(self.resolve(b));
        let r = self.mint(out);
        self.union_local.insert(key, r.0);
        self.new_union.push((key.0, key.1, r.0));
        r
    }

    /// Memo hits so far (pool probes and overlay-local).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Structural computations so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Finishes the overlay for [`DnfPool::absorb`].
    pub fn into_parts(self) -> SnapshotParts<G> {
        SnapshotParts {
            base: self.base,
            minted: self.minted,
            new_compose: self.new_compose,
            new_union: self.new_union,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_pre_interned() {
        let pool: DnfPool<u32> = DnfPool::new();
        assert!(pool.dnf(DnfPool::<u32>::EMPTY).is_empty());
        assert!(pool.dnf(DnfPool::<u32>::ALWAYS).is_always());
        assert_eq!(pool.dnf_count(), 2);
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let mut a = Dnf::term(vec![1, 2]);
        a.insert(vec![3]);
        let mut b = Dnf::term(vec![3]);
        b.insert(vec![2, 1]);
        let ia = pool.intern(&a);
        let ib = pool.intern(&b);
        assert_eq!(ia, ib);
        assert_eq!(pool.dnf(ia), &a);
        // A different DNF gets a different id.
        let ic = pool.intern(&Dnf::term(vec![1]));
        assert_ne!(ia, ic);
    }

    #[test]
    fn union_matches_structural() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let a = pool.intern(&Dnf::term(vec![1]));
        let b = pool.intern(&Dnf::term(vec![2]));
        let u = pool.union(a, b);
        let mut expect = Dnf::term(vec![1]);
        expect.union_with(&Dnf::term(vec![2]));
        assert_eq!(pool.dnf(u), &expect);
        // Memo: same answer, and identities short-circuit.
        assert_eq!(pool.union(b, a), u);
        assert_eq!(pool.union(a, DnfPool::<u32>::EMPTY), a);
        assert_eq!(pool.union(a, DnfPool::<u32>::ALWAYS), DnfPool::<u32>::ALWAYS);
        assert_eq!(pool.union(u, u), u);
    }

    #[test]
    fn and_matches_structural() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let mut ab = Dnf::term(vec![1]);
        ab.insert(vec![2]);
        let a = pool.intern(&ab);
        let b = pool.intern(&Dnf::term(vec![3]));
        let c = pool.and(a, b);
        let mut expect = Dnf::term(vec![1, 3]);
        expect.insert(vec![2, 3]);
        assert_eq!(pool.dnf(c), &expect);
        assert_eq!(pool.and(a, DnfPool::<u32>::ALWAYS), a);
        assert_eq!(pool.and(a, DnfPool::<u32>::EMPTY), DnfPool::<u32>::EMPTY);
    }

    #[test]
    fn compose_appends_guard() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let a = pool.intern(&Dnf::term(vec![1]));
        let c = pool.compose(a, Some(&7));
        assert_eq!(pool.dnf(c), &Dnf::term(vec![1, 7]));
        assert_eq!(pool.compose(a, None), a, "no guard is identity");
        assert_eq!(
            pool.compose(DnfPool::<u32>::ALWAYS, Some(&7)),
            pool.intern(&Dnf::term(vec![7]))
        );
        assert_eq!(
            pool.compose(DnfPool::<u32>::EMPTY, Some(&7)),
            DnfPool::<u32>::EMPTY
        );
    }

    /// The frozen-snapshot satellite regression: driving the same
    /// operations through a single-owner pool and through a
    /// `SnapshotOps` overlay (absorbed in discovery order) must produce
    /// bit-identical pool numbering — ids, counts, and resolutions.
    #[test]
    fn snapshot_overlay_numbering_matches_single_owner() {
        // Single-owner reference path.
        let mut own: DnfPool<u32> = DnfPool::new();
        let seed_a = own.intern(&Dnf::term(vec![1]));
        let seed_b = own.intern(&Dnf::term(vec![2]));
        let t7 = own.intern_term(&vec![7]);
        let mut own_results = Vec::new();
        own_results.push(own.union(seed_a, seed_b));
        own_results.push(own.compose_term(seed_a, t7));
        own_results.push(own.union(own_results[0], own_results[1]));

        // Snapshot path: same seeds, then the same ops through an
        // overlay over a frozen snapshot, absorbed back into a thawed
        // mutable pool.
        let mut base: DnfPool<u32> = DnfPool::new();
        let sa = base.intern(&Dnf::term(vec![1]));
        let sb = base.intern(&Dnf::term(vec![2]));
        let st7 = base.intern_term(&vec![7]);
        assert_eq!((sa, sb, st7), (seed_a, seed_b, t7));
        let frozen = base.freeze();
        let mut ops = frozen.overlay();
        let mut snap_results = Vec::new();
        snap_results.push(ops.union(sa, sb));
        snap_results.push(ops.compose(sa, Some(st7)));
        snap_results.push(ops.union(snap_results[0], snap_results[1]));
        assert!(ops.misses() >= 3, "all three ops are fresh");
        let parts = ops.into_parts();
        let mut merged = frozen.thaw();
        let remap = merged.absorb(parts);
        let snap_fixed: Vec<DnfId> = snap_results.iter().map(|&d| remap.fix(d)).collect();

        assert_eq!(snap_fixed, own_results, "id numbering must match");
        assert_eq!(merged.dnf_count(), own.dnf_count());
        assert_eq!(merged.term_count(), own.term_count());
        for id in 0..own.dnf_count() as u32 {
            assert_eq!(merged.dnf(DnfId(id)), own.dnf(DnfId(id)), "dnf {id}");
        }
        // Absorb also carried the memos: re-running the ops on the merged
        // pool is all hits, no new ids.
        let before = merged.dnf_count();
        let h0 = merged.ops_hits();
        assert_eq!(merged.union(sa, sb), own_results[0]);
        assert_eq!(merged.compose_term(sa, st7), own_results[1]);
        assert_eq!(merged.dnf_count(), before);
        assert_eq!(merged.ops_hits(), h0 + 2);
    }

    /// Concurrent readers of one frozen snapshot resolve identical
    /// formulas — the read-mostly sharing contract the serve registry
    /// relies on.
    #[test]
    fn frozen_pool_shared_across_threads() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let ids: Vec<DnfId> = (0..16u32).map(|i| pool.intern(&Dnf::term(vec![i]))).collect();
        let frozen = pool.freeze();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reader = frozen.clone();
                let ids = ids.clone();
                std::thread::spawn(move || {
                    ids.iter()
                        .map(|&id| reader.dnf(id).clone())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            let got = h.join().expect("reader thread");
            for (i, d) in got.iter().enumerate() {
                assert_eq!(d, &Dnf::term(vec![i as u32]));
            }
        }
    }

    #[test]
    fn of_guard_memoizes() {
        let mut pool: DnfPool<u32> = DnfPool::new();
        let a = pool.of_guard(Some(&4));
        let b = pool.of_guard(Some(&4));
        assert_eq!(a, b);
        assert_eq!(pool.of_guard(None), DnfPool::<u32>::ALWAYS);
        assert_eq!(pool.dnf(a), &Dnf::term(vec![4]));
    }
}
