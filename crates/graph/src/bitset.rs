//! A fixed-capacity bit set used by the closure and matching algorithms.
//!
//! We deliberately avoid external bit-set crates: the dependency-graph
//! algorithms in this workspace only need a small, predictable API and we
//! want dense `u64`-block storage with fast union/intersection for the
//! transitive-closure kernels (see [`crate::closure`]).

/// A fixed-capacity set of `usize` indices backed by `u64` blocks.
///
/// The capacity is set at construction; all indices passed to methods must be
/// `< len()`. Operations across two sets require equal capacity.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty set with capacity for `len` indices.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Number of indices this set can hold (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Sets `bit`. Panics if out of range.
    pub fn insert(&mut self, bit: usize) {
        assert!(bit < self.len, "bit {bit} out of range {}", self.len);
        self.blocks[bit / BITS] |= 1 << (bit % BITS);
    }

    /// Clears `bit`. Panics if out of range.
    pub fn remove(&mut self, bit: usize) {
        assert!(bit < self.len, "bit {bit} out of range {}", self.len);
        self.blocks[bit / BITS] &= !(1 << (bit % BITS));
    }

    /// True if `bit` is set. Panics if out of range.
    pub fn contains(&self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of range {}", self.len);
        self.blocks[bit / BITS] & (1 << (bit % BITS)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Clears all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// `self |= other`. Returns true if any bit changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self -= other` (set difference).
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share at least one set bit
    /// (non-destructive intersection test).
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.blocks.iter().zip(&other.blocks).any(|(a, b)| a & b != 0)
    }

    /// True if every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let tz = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(i * BITS + tz)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is `max(indices) + 1` (or 0 when empty).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn intersects_is_non_destructive() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        a.insert(5);
        a.insert(129);
        b.insert(64);
        assert!(!a.intersects(&b));
        b.insert(129);
        assert!(a.intersects(&b));
        assert_eq!(a.count(), 2, "operands untouched");
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(3));
    }

    #[test]
    fn subset_and_difference() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(1);
        b.insert(65);
        b.insert(2);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        b.difference_with(&a);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let mut s = BitSet::new(200);
        for i in [199, 0, 64, 127, 128, 5] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 64, 127, 128, 199]);
    }

    #[test]
    fn intersect() {
        let mut a = BitSet::new(8);
        let mut b = BitSet::new(8);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn from_iter_capacity() {
        let s: BitSet = [4usize, 9].into_iter().collect();
        assert_eq!(s.len(), 10);
        assert!(s.contains(4) && s.contains(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(4);
        s.contains(4);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::new(100);
        s.insert(99);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 100);
    }
}
