//! Graphviz DOT export for any [`DiGraph`] — dependency graphs, constraint
//! sets and Petri-net skeletons all render through this one entry point
//! (`dot -Tsvg` the output to get the paper's figures as actual pictures).

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Styling for one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStyle {
    /// The displayed label.
    pub label: String,
    /// Graphviz `shape` (empty = default ellipse).
    pub shape: String,
    /// Graphviz `style` (e.g. "dashed", "filled").
    pub style: String,
    /// Fill color when `style` includes "filled".
    pub fillcolor: String,
}

impl NodeStyle {
    /// A plain labeled node.
    pub fn label(l: impl Into<String>) -> NodeStyle {
        NodeStyle {
            label: l.into(),
            ..Default::default()
        }
    }
}

/// Styling for one edge.
#[derive(Clone, Debug, Default)]
pub struct EdgeStyle {
    /// Edge label (e.g. the branch condition).
    pub label: String,
    /// Graphviz `style` ("dashed" for data deps, "bold" for translated...).
    pub style: String,
    /// Edge color.
    pub color: String,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the graph in DOT syntax. Node and edge appearance come from the
/// two style callbacks.
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    mut node_style: impl FnMut(NodeId, &N) -> NodeStyle,
    mut edge_style: impl FnMut(EdgeId, &E) -> EdgeStyle,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(name)));
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n  edge [fontsize=9];\n");
    for n in g.node_ids() {
        let s = node_style(n, g.weight(n));
        let mut attrs = vec![format!("label=\"{}\"", escape(&s.label))];
        if !s.shape.is_empty() {
            attrs.push(format!("shape={}", s.shape));
        }
        if !s.style.is_empty() {
            attrs.push(format!("style=\"{}\"", s.style));
        }
        if !s.fillcolor.is_empty() {
            attrs.push(format!("fillcolor=\"{}\"", s.fillcolor));
        }
        out.push_str(&format!("  n{} [{}];\n", n.index(), attrs.join(", ")));
    }
    for (e, a, b, w) in g.edges() {
        let s = edge_style(e, w);
        let mut attrs = Vec::new();
        if !s.label.is_empty() {
            attrs.push(format!("label=\"{}\"", escape(&s.label)));
        }
        if !s.style.is_empty() {
            attrs.push(format!("style=\"{}\"", s.style));
        }
        if !s.color.is_empty() {
            attrs.push(format!("color=\"{}\"", s.color));
        }
        let attr_str = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        out.push_str(&format!("  n{} -> n{}{};\n", a.index(), b.index(), attr_str));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        let a = g.add_node("alpha");
        let b = g.add_node("beta");
        g.add_edge(a, b, "data");
        let dot = to_dot(
            &g,
            "test",
            |_, w| NodeStyle::label(*w),
            |_, w| EdgeStyle {
                label: w.to_string(),
                style: "dashed".into(),
                ..Default::default()
            },
        );
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.contains("n0 [label=\"alpha\"];"));
        assert!(dot.contains("n0 -> n1 [label=\"data\", style=\"dashed\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(&g, "q\"q", |_, w| NodeStyle::label(*w), |_, _| EdgeStyle::default());
        assert!(dot.contains("digraph \"q\\\"q\""));
        assert!(dot.contains("label=\"say \\\"hi\\\"\""));
    }

    #[test]
    fn tombstones_skipped() {
        let mut g: DiGraph<u32, ()> = DiGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        g.add_edge(a, b, ());
        g.remove_node(a);
        let dot = to_dot(&g, "t", |_, w| NodeStyle::label(w.to_string()), |_, _| EdgeStyle::default());
        assert!(!dot.contains("label=\"1\""));
        assert!(dot.contains("label=\"2\""));
        assert!(!dot.contains("->"));
    }
}
