//! Transitive reduction of DAGs.
//!
//! For an **unconditional** constraint set on a DAG, the paper's minimal
//! synchronization constraint set (Definition 6) is exactly the transitive
//! reduction, which is unique for DAGs (Aho–Garey–Ullman). The optimizer
//! uses this as a fast path and the property tests check it against the
//! paper's greedy algorithm.

use crate::closure::transitive_closure;
use crate::digraph::{DiGraph, EdgeId, NodeId};
use crate::topo::CycleError;
use crate::topo::topo_sort;

/// Returns the edge ids that are **redundant**: `u → v` is redundant iff
/// some other successor of `u` already reaches `v` (so the edge adds nothing
/// to the closure). Exactly one edge of each parallel bundle is kept.
///
/// Fails on cyclic graphs — reduction of cyclic graphs is not unique and the
/// optimizer treats cycles as specification conflicts.
pub fn redundant_edges<N, E>(g: &DiGraph<N, E>) -> Result<Vec<EdgeId>, CycleError> {
    topo_sort(g)?; // cycle check only
    let closure = transitive_closure(g);
    let mut redundant = Vec::new();
    for u in g.node_ids() {
        let out: Vec<EdgeId> = g.out_edges(u).collect();
        // Direct targets with their edge ids; first occurrence of each
        // target is the candidate keeper for parallel bundles.
        let mut seen_target: std::collections::HashMap<NodeId, EdgeId> =
            std::collections::HashMap::new();
        for &e in &out {
            let (_, v) = g.endpoints(e);
            if let std::collections::hash_map::Entry::Vacant(slot) = seen_target.entry(v) {
                slot.insert(e);
            } else {
                redundant.push(e); // parallel duplicate
            }
        }
        for (&v, &e) in &seen_target {
            // Is v reachable from u through some other direct successor?
            let through_other = seen_target.keys().any(|&w| {
                w != v && closure.reaches(w, v)
            });
            if through_other {
                redundant.push(e);
            }
        }
    }
    redundant.sort();
    Ok(redundant)
}

/// Removes all redundant edges in place, returning how many were removed.
pub fn transitive_reduction<N, E>(g: &mut DiGraph<N, E>) -> Result<usize, CycleError> {
    let redundant = redundant_edges(g)?;
    let n = redundant.len();
    for e in redundant {
        g.remove_edge(e);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::transitive_closure;

    #[test]
    fn removes_shortcut_edge() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let shortcut = g.add_edge(a, c, ());
        assert_eq!(redundant_edges(&g).unwrap(), vec![shortcut]);
        assert_eq!(transitive_reduction(&mut g).unwrap(), 1);
        assert!(g.has_edge(a, b) && g.has_edge(b, c) && !g.has_edge(a, c));
    }

    #[test]
    fn diamond_is_already_reduced() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        assert!(redundant_edges(&g).unwrap().is_empty());
    }

    #[test]
    fn long_shortcut_chain() {
        // a→b→c→d plus a→c, a→d, b→d: all three shortcuts go.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g.add_edge(ids[0], ids[2], ());
        g.add_edge(ids[0], ids[3], ());
        g.add_edge(ids[1], ids[3], ());
        assert_eq!(transitive_reduction(&mut g).unwrap(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn parallel_edges_deduplicated() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert_eq!(transitive_reduction(&mut g).unwrap(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reduction_preserves_closure() {
        // Random-ish layered DAG, deterministic.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..12).map(|_| g.add_node(())).collect();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..12usize {
            for j in (i + 1)..12 {
                if rnd() % 3 == 0 {
                    g.add_edge(ids[i], ids[j], ());
                }
            }
        }
        let before = transitive_closure(&g);
        let mut h = g.clone();
        transitive_reduction(&mut h).unwrap();
        let after = transitive_closure(&h);
        for n in g.node_ids() {
            assert_eq!(before.row(n), after.row(n), "closure changed at {n:?}");
        }
    }

    #[test]
    fn cyclic_input_rejected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(transitive_reduction(&mut g).is_err());
    }

    #[test]
    fn reduced_graph_is_minimal() {
        // After reduction, removing any edge must change the closure.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        for i in 0..6usize {
            for j in (i + 1)..6 {
                g.add_edge(ids[i], ids[j], ());
            }
        }
        transitive_reduction(&mut g).unwrap();
        let base = transitive_closure(&g);
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        for e in edges {
            let mut h = g.clone();
            h.remove_edge(e);
            let c = transitive_closure(&h);
            let differs = g.node_ids().any(|n| c.row(n) != base.row(n));
            assert!(differs, "edge {e:?} was removable after reduction");
        }
    }
}
