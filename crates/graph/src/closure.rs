//! Plain (unconditional) transitive closure and reachability matrices.
//!
//! The paper's Definition 3 needs *condition-annotated* closures (see
//! [`crate::annotated`]); this module provides the unconditional variant used
//! by the transitive-reduction fast path and by set-cover checks on
//! constraint sets without conditional edges.

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use crate::scc::tarjan_scc;
use crate::topo::topo_sort;

/// Dense reachability matrix: `row(n)` is the set of nodes strictly
/// reachable from `n` (the paper's `n+`; `n` itself is included only if it
/// lies on a cycle through itself).
#[derive(Clone, Debug)]
pub struct Closure {
    rows: Vec<BitSet>,
    bound: usize,
}

impl Closure {
    /// The closure row for `n`.
    pub fn row(&self, n: NodeId) -> &BitSet {
        &self.rows[n.index()]
    }

    /// True if `b` is strictly reachable from `a`.
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        self.rows[a.index()].contains(b.index())
    }

    /// Index bound the rows are sized to.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Total number of reachable pairs.
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(BitSet::count).sum()
    }
}

/// The SCC condensation view shared by every closure builder's cyclic
/// fallback — one entry point, so a cyclic input can never produce a
/// `CycleError` on one closure path and a condensed answer on another.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Component index per node index (`usize::MAX` for tombstones).
    pub comp_of: Vec<usize>,
    /// Members per component, in reverse topological order of the
    /// condensation: every successor component precedes its predecessors,
    /// so one forward sweep over `comps` sees finished successors.
    pub comps: Vec<Vec<NodeId>>,
    /// True when the component is cyclic — more than one member, or a
    /// single member with a self-loop. Exactly these components admit
    /// self-reachability in the strict closure.
    pub cyclic: Vec<bool>,
}

/// Condenses `g` into its strongly connected components (see
/// [`Condensation`] for the invariants downstream sweeps rely on).
pub fn condense<N, E>(g: &DiGraph<N, E>) -> Condensation {
    let comps = tarjan_scc(g);
    let mut comp_of = vec![usize::MAX; g.node_bound()];
    for (c, members) in comps.iter().enumerate() {
        for &n in members {
            comp_of[n.index()] = c;
        }
    }
    let cyclic = comps
        .iter()
        .map(|members| {
            members.len() > 1
                || members
                    .iter()
                    .any(|&n| g.successors(n).any(|m| m == n))
        })
        .collect();
    Condensation {
        comp_of,
        comps,
        cyclic,
    }
}

/// Computes the strict transitive closure.
///
/// For DAGs a single reverse-topological pass suffices; cyclic graphs fall
/// back to SCC condensation and a single reverse-topological pass over the
/// component DAG (needed because the optimizer computes closures while
/// *diagnosing* conflicting, possibly cyclic, constraint sets).
pub fn transitive_closure<N, E>(g: &DiGraph<N, E>) -> Closure {
    let bound = g.node_bound();
    let mut rows: Vec<BitSet> = (0..bound).map(|_| BitSet::new(bound)).collect();

    match topo_sort(g) {
        Ok(order) => {
            // Reverse topological: successors' rows are complete when used.
            for &n in order.iter().rev() {
                // Two-phase to appease the borrow checker: collect successor
                // indices first, then fold their rows in.
                let succ: Vec<NodeId> = g.successors(n).collect();
                for m in succ {
                    if m == n {
                        rows[n.index()].insert(n.index());
                        continue;
                    }
                    let (a, b) = split_two(&mut rows, n.index(), m.index());
                    a.union_with(b);
                    a.insert(m.index());
                }
            }
        }
        Err(_) => {
            // Cyclic graphs: condense via the shared entry point and make
            // a single pass over the components. `comps` arrive in reverse
            // topological order of the condensation (every successor
            // component is finished first), so one sweep suffices — no
            // whole-graph fixpoint iteration.
            let cond = condense(g);
            let mut comp_rows: Vec<BitSet> = Vec::with_capacity(cond.comps.len());
            for (c, members) in cond.comps.iter().enumerate() {
                let mut acc = BitSet::new(bound);
                for &n in members {
                    for m in g.successors(n) {
                        if cond.comp_of[m.index()] != c {
                            acc.insert(m.index());
                            acc.union_with(&comp_rows[cond.comp_of[m.index()]]);
                        }
                    }
                }
                // A nontrivial component (or a self-loop) reaches all of
                // its own members, itself included — the strict closure
                // admits self-reachability exactly on cycles.
                if cond.cyclic[c] {
                    for &n in members {
                        acc.insert(n.index());
                    }
                }
                for &n in members {
                    rows[n.index()] = acc.clone();
                }
                comp_rows.push(acc);
            }
        }
    }
    Closure { rows, bound }
}

/// Mutably borrows two distinct rows at once.
fn split_two(rows: &mut [BitSet], i: usize, j: usize) -> (&mut BitSet, &BitSet) {
    assert_ne!(i, j, "self-loop rows must be handled by the caller");
    if i < j {
        let (lo, hi) = rows.split_at_mut(j);
        (&mut lo[i], &hi[0])
    } else {
        let (lo, hi) = rows.split_at_mut(i);
        (&mut hi[0], &lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_closure() {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let c = transitive_closure(&g);
        assert!(c.reaches(ids[0], ids[3]));
        assert!(c.reaches(ids[1], ids[2]));
        assert!(!c.reaches(ids[3], ids[0]));
        assert!(!c.reaches(ids[0], ids[0]), "strict closure excludes self");
        assert_eq!(c.pair_count(), 3 + 2 + 1);
    }

    #[test]
    fn diamond_closure() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let cl = transitive_closure(&g);
        assert_eq!(cl.row(a).count(), 3);
        assert!(cl.reaches(a, d));
        assert!(!cl.reaches(b, c));
    }

    #[test]
    fn cyclic_closure_includes_self() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let c = transitive_closure(&g);
        assert!(c.reaches(a, a));
        assert!(c.reaches(b, b));
        assert!(c.reaches(a, b));
        assert!(c.reaches(b, a));
    }

    #[test]
    fn self_loop() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, a, ());
        g.add_edge(a, b, ());
        let c = transitive_closure(&g);
        assert!(c.reaches(a, a));
        assert!(c.reaches(a, b));
        assert!(!c.reaches(b, b));
    }

    #[test]
    fn parallel_edges_equivalent_to_single() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        let c = transitive_closure(&g);
        assert!(c.reaches(a, b));
        assert_eq!(c.pair_count(), 1);
    }

    #[test]
    fn closure_with_tombstones() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.remove_node(b);
        g.add_edge(a, c, ());
        let cl = transitive_closure(&g);
        assert!(cl.reaches(a, c));
        assert_eq!(cl.pair_count(), 1);
    }
}
