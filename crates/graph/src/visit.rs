//! Breadth-first and depth-first traversal helpers.

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable from `start` by following edges forward (including
/// `start`), as a [`BitSet`] over node indices.
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, start: NodeId) -> BitSet {
    bfs_set(g, start, Dir::Forward)
}

/// Nodes that can reach `start` by following edges forward — i.e. reachable
/// from `start` by walking edges backward (including `start`).
pub fn reaching_to<N, E>(g: &DiGraph<N, E>, start: NodeId) -> BitSet {
    bfs_set(g, start, Dir::Backward)
}

#[derive(Clone, Copy)]
enum Dir {
    Forward,
    Backward,
}

fn bfs_set<N, E>(g: &DiGraph<N, E>, start: NodeId, dir: Dir) -> BitSet {
    let mut seen = BitSet::new(g.node_bound());
    let mut queue = VecDeque::new();
    seen.insert(start.index());
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        let next: Box<dyn Iterator<Item = NodeId>> = match dir {
            Dir::Forward => Box::new(g.successors(n)),
            Dir::Backward => Box::new(g.predecessors(n)),
        };
        for m in next {
            if !seen.contains(m.index()) {
                seen.insert(m.index());
                queue.push_back(m);
            }
        }
    }
    seen
}

/// Breadth-first order of nodes reachable from `start` (including `start`).
pub fn bfs_order<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = BitSet::new(g.node_bound());
    let mut queue = VecDeque::new();
    let mut order = Vec::new();
    seen.insert(start.index());
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for m in g.successors(n) {
            if !seen.contains(m.index()) {
                seen.insert(m.index());
                queue.push_back(m);
            }
        }
    }
    order
}

/// Depth-first postorder of nodes reachable from `start`.
pub fn dfs_postorder<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = BitSet::new(g.node_bound());
    let mut order = Vec::new();
    // Iterative DFS with an explicit phase marker so deep graphs cannot
    // overflow the call stack.
    let mut stack = vec![(start, false)];
    while let Some((n, expanded)) = stack.pop() {
        if expanded {
            order.push(n);
            continue;
        }
        if seen.contains(n.index()) {
            continue;
        }
        seen.insert(n.index());
        stack.push((n, true));
        // Push successors in reverse so the first successor is visited first.
        let succ: Vec<NodeId> = g.successors(n).collect();
        for m in succ.into_iter().rev() {
            if !seen.contains(m.index()) {
                stack.push((m, false));
            }
        }
    }
    order
}

/// Finds one shortest path `from -> to` (inclusive), if any.
pub fn shortest_path<N, E>(g: &DiGraph<N, E>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    let mut prev: Vec<Option<NodeId>> = vec![None; g.node_bound()];
    let mut seen = BitSet::new(g.node_bound());
    let mut queue = VecDeque::new();
    seen.insert(from.index());
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[cur.index()].expect("path chain broken");
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for m in g.successors(n) {
            if !seen.contains(m.index()) {
                seen.insert(m.index());
                prev[m.index()] = Some(n);
                queue.push_back(m);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (DiGraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, ids)
    }

    #[test]
    fn reachability_forward_and_backward() {
        let (g, ids) = chain(5);
        let fwd = reachable_from(&g, ids[2]);
        assert_eq!(fwd.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        let bwd = reaching_to(&g, ids[2]);
        assert_eq!(bwd.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn bfs_order_visits_level_by_level() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        assert_eq!(bfs_order(&g, a), vec![a, b, c, d]);
    }

    #[test]
    fn postorder_children_before_parent() {
        let (g, ids) = chain(4);
        let order = dfs_postorder(&g, ids[0]);
        assert_eq!(order, vec![ids[3], ids[2], ids[1], ids[0]]);
    }

    #[test]
    fn postorder_handles_deep_graphs() {
        let (g, ids) = chain(100_000);
        let order = dfs_postorder(&g, ids[0]);
        assert_eq!(order.len(), 100_000);
        assert_eq!(order[0], ids[99_999]);
    }

    #[test]
    fn shortest_path_found_and_missing() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g.add_edge(a, c, ());
        g.add_edge(c, d, ());
        g.add_edge(a, d, ());
        assert_eq!(shortest_path(&g, a, d), Some(vec![a, d]));
        assert_eq!(shortest_path(&g, d, a), None);
        assert_eq!(shortest_path(&g, a, a), Some(vec![a]));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert_eq!(reachable_from(&g, a).count(), 2);
        assert_eq!(dfs_postorder(&g, a), vec![b, a]);
    }
}
