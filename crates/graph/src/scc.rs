//! Strongly connected components (Tarjan) and cycle detection.
//!
//! Constraint sets must form DAGs for the static scheme to be realizable
//! (§4.1: "conflict dependencies like infinite synchronization sequence can
//! be detected during design stage"). The optimizer and the Petri-net
//! validator both use this module to detect and report such conflicts.

use crate::digraph::{DiGraph, NodeId};

/// Strongly connected components in reverse topological order (each
/// component appears before any component it has edges into... Tarjan emits
/// components in reverse topological order of the condensation).
pub fn tarjan_scc<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    struct State {
        index: u32,
        stack: Vec<NodeId>,
        on_stack: Vec<bool>,
        indices: Vec<Option<u32>>,
        lowlink: Vec<u32>,
        components: Vec<Vec<NodeId>>,
    }

    let bound = g.node_bound();
    let mut st = State {
        index: 0,
        stack: Vec::new(),
        on_stack: vec![false; bound],
        indices: vec![None; bound],
        lowlink: vec![0; bound],
        components: Vec::new(),
    };

    // Iterative Tarjan: frame = (node, iterator position over successors).
    for root in g.node_ids() {
        if st.indices[root.index()].is_some() {
            continue;
        }
        let mut call_stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        st.indices[root.index()] = Some(st.index);
        st.lowlink[root.index()] = st.index;
        st.index += 1;
        st.stack.push(root);
        st.on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let succ: Vec<NodeId> = g.successors(v).collect();
            if *pos < succ.len() {
                let w = succ[*pos];
                *pos += 1;
                match st.indices[w.index()] {
                    None => {
                        st.indices[w.index()] = Some(st.index);
                        st.lowlink[w.index()] = st.index;
                        st.index += 1;
                        st.stack.push(w);
                        st.on_stack[w.index()] = true;
                        call_stack.push((w, 0));
                    }
                    Some(widx) => {
                        if st.on_stack[w.index()] {
                            st.lowlink[v.index()] = st.lowlink[v.index()].min(widx);
                        }
                    }
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    st.lowlink[parent.index()] =
                        st.lowlink[parent.index()].min(st.lowlink[v.index()]);
                }
                if st.lowlink[v.index()] == st.indices[v.index()].unwrap() {
                    let mut comp = Vec::new();
                    loop {
                        let w = st.stack.pop().expect("tarjan stack underflow");
                        st.on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    st.components.push(comp);
                }
            }
        }
    }
    st.components
}

/// True if the graph contains a directed cycle (self-loops count).
pub fn has_cycle<N, E>(g: &DiGraph<N, E>) -> bool {
    if g.node_ids().any(|n| g.find_edge(n, n).is_some()) {
        return true;
    }
    tarjan_scc(g).iter().any(|c| c.len() > 1)
}

/// Returns one directed cycle as a node sequence `[a, b, ..., a]`, if any.
///
/// Used for conflict reporting: the optimizer names the activities on the
/// cycle so a process analyst can see which dependencies contradict.
pub fn find_cycle<N, E>(g: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    for n in g.node_ids() {
        if g.find_edge(n, n).is_some() {
            return Some(vec![n, n]);
        }
    }
    let sccs = tarjan_scc(g);
    let comp = sccs.into_iter().find(|c| c.len() > 1)?;
    // Walk within the component until a node repeats.
    let in_comp: std::collections::HashSet<NodeId> = comp.iter().copied().collect();
    let start = comp[0];
    let mut path = vec![start];
    let mut seen_at = std::collections::HashMap::new();
    seen_at.insert(start, 0usize);
    let mut cur = start;
    loop {
        let next = g
            .successors(cur)
            .find(|m| in_comp.contains(m))
            .expect("SCC node without intra-component successor");
        if let Some(&pos) = seen_at.get(&next) {
            let mut cycle = path[pos..].to_vec();
            cycle.push(next);
            return Some(cycle);
        }
        seen_at.insert(next, path.len());
        path.push(next);
        cur = next;
    }
}

/// Condensation: the DAG of strongly connected components.
///
/// Node weights are the member lists; edge weights count the original edges
/// between the two components.
pub fn condensation<N, E>(g: &DiGraph<N, E>) -> DiGraph<Vec<NodeId>, usize> {
    let sccs = tarjan_scc(g);
    let mut comp_of: Vec<usize> = vec![usize::MAX; g.node_bound()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &n in comp {
            comp_of[n.index()] = ci;
        }
    }
    let mut out: DiGraph<Vec<NodeId>, usize> = DiGraph::new();
    let ids: Vec<_> = sccs.iter().map(|c| out.add_node(c.clone())).collect();
    let mut counts: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for (_, a, b, _) in g.edges() {
        let (ca, cb) = (comp_of[a.index()], comp_of[b.index()]);
        if ca != cb {
            *counts.entry((ca, cb)).or_default() += 1;
        }
    }
    for ((ca, cb), k) in counts {
        out.add_edge(ids[ca], ids[cb], k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_single_node_components() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 3);
        assert!(!has_cycle(&g));
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn two_cycles_found() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(c, d, ());
        g.add_edge(d, c, ());
        g.add_edge(b, c, ());
        let mut sizes: Vec<usize> = tarjan_scc(&g).iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 2]);
        assert!(has_cycle(&g));
        let cyc = find_cycle(&g).unwrap();
        assert_eq!(cyc.first(), cyc.last());
        assert!(cyc.len() >= 3);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert!(has_cycle(&g));
        assert_eq!(find_cycle(&g), Some(vec![a, a]));
    }

    #[test]
    fn reverse_topological_emission() {
        // a -> b -> c: Tarjan emits sinks first.
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs[0], vec![c]);
        assert_eq!(sccs[2], vec![a]);
    }

    #[test]
    fn condensation_collapses_cycles() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        g.add_edge(a, c, ());
        let cond = condensation(&g);
        assert_eq!(cond.node_count(), 2);
        assert_eq!(cond.edge_count(), 1);
        let (_, _, _, w) = cond.edges().next().unwrap();
        assert_eq!(*w, 2, "both cross edges collapse into one counted edge");
        assert!(!has_cycle(&cond));
    }

    #[test]
    fn works_after_node_removal() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        g.remove_node(b);
        assert!(!has_cycle(&g));
        assert_eq!(tarjan_scc(&g).len(), 2);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..200_000).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        assert_eq!(tarjan_scc(&g).len(), 200_000);
    }
}
