//! Property-based tests over the graph substrate's core invariants.

use dscweaver_graph::annotated::Dnf;
use dscweaver_graph::{
    annotated_closure, max_antichain, max_layer_width, topo_sort, transitive_closure,
    transitive_reduction, DiGraph, NodeId,
};
use proptest::prelude::*;

/// Strategy: a random DAG over `n` nodes given as an upper-triangular edge
/// selection (edges always go from lower to higher index, so acyclicity is
/// by construction).
fn dag_strategy(max_n: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
    (2..max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let len = pairs.len();
        (Just(n), Just(pairs), proptest::collection::vec(any::<bool>(), len))
    })
    .prop_map(|(n, pairs, mask)| {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for ((i, j), keep) in pairs.into_iter().zip(mask) {
            if keep {
                g.add_edge(ids[i], ids[j], ());
            }
        }
        g
    })
}

/// Strategy: a random directed graph that may contain cycles.
fn digraph_strategy(max_n: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
    (2..max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..(n * 3)),
        )
    })
    .prop_map(|(n, edges)| {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for (i, j) in edges {
            g.add_edge(ids[i], ids[j], ());
        }
        g
    })
}

proptest! {
    /// Transitive reduction never changes the closure.
    #[test]
    fn reduction_preserves_closure(g in dag_strategy(14)) {
        let before = transitive_closure(&g);
        let mut h = g.clone();
        transitive_reduction(&mut h).unwrap();
        let after = transitive_closure(&h);
        for n in g.node_ids() {
            prop_assert_eq!(before.row(n), after.row(n));
        }
    }

    /// After reduction, every remaining edge is load-bearing.
    #[test]
    fn reduction_is_minimal(g in dag_strategy(10)) {
        let mut h = g.clone();
        transitive_reduction(&mut h).unwrap();
        let base = transitive_closure(&h);
        for e in h.edge_ids().collect::<Vec<_>>() {
            let mut h2 = h.clone();
            h2.remove_edge(e);
            let c2 = transitive_closure(&h2);
            let same = h.node_ids().all(|n| c2.row(n) == base.row(n));
            prop_assert!(!same, "edge {:?} still removable", e);
        }
    }

    /// Topological order respects every edge.
    #[test]
    fn topo_respects_edges(g in dag_strategy(16)) {
        let order = topo_sort(&g).unwrap();
        let mut pos = vec![usize::MAX; g.node_bound()];
        for (i, &n) in order.iter().enumerate() {
            pos[n.index()] = i;
        }
        for (_, a, b, _) in g.edges() {
            prop_assert!(pos[a.index()] < pos[b.index()]);
        }
    }

    /// Closure is identical whether computed by the DAG pass or the cyclic
    /// fixpoint (exercised by inserting then deleting a cycle-free edge set).
    #[test]
    fn closure_transitivity(g in digraph_strategy(10)) {
        let c = transitive_closure(&g);
        let n: Vec<NodeId> = g.node_ids().collect();
        for &a in &n {
            for &b in &n {
                for &d in &n {
                    if c.reaches(a, b) && c.reaches(b, d) {
                        prop_assert!(c.reaches(a, d), "{:?}->{:?}->{:?}", a, b, d);
                    }
                }
            }
        }
        // And every edge is in the closure.
        for (_, a, b, _) in g.edges() {
            prop_assert!(c.reaches(a, b));
        }
    }

    /// Max antichain is at least the layer width and at most n.
    #[test]
    fn antichain_bounds(g in dag_strategy(10)) {
        let (w, ac) = max_antichain(&g).unwrap();
        let lw = max_layer_width(&g).unwrap();
        prop_assert!(w >= lw, "antichain {} < layer width {}", w, lw);
        prop_assert!(w <= g.node_count());
        prop_assert_eq!(ac.len(), w);
        let c = transitive_closure(&g);
        for &a in &ac {
            for &b in &ac {
                if a != b {
                    prop_assert!(!c.reaches(a, b));
                }
            }
        }
    }

    /// The unconditional annotated closure agrees with the plain closure.
    #[test]
    fn annotated_matches_plain_when_unconditional(g in dag_strategy(12)) {
        let plain = transitive_closure(&g);
        let ann = annotated_closure::<_, _, u32>(&g, &|_, _: &()| None).unwrap();
        for n in g.node_ids() {
            let plain_targets: Vec<usize> = plain.row(n).iter().collect();
            let ann_targets: Vec<usize> =
                ann.row(n).iter().map(|(t, _)| t.index()).collect();
            prop_assert_eq!(&plain_targets, &ann_targets);
            for (_, dnf) in ann.row(n).iter() {
                prop_assert!(dnf.is_always());
            }
        }
    }

    /// DNF insert keeps a minimal antichain: no term is a subset of another.
    #[test]
    fn dnf_antichain_invariant(termsets in proptest::collection::vec(
        proptest::collection::vec(0u8..6, 0..4), 0..12)) {
        let mut d: Dnf<u8> = Dnf::empty();
        for t in termsets {
            d.insert(t);
        }
        let terms = d.terms();
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                if i != j {
                    let subset = a.iter().all(|x| b.contains(x));
                    prop_assert!(!subset, "{:?} ⊆ {:?}", a, b);
                }
            }
        }
    }
}
