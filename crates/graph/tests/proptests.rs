//! Property-based tests over the graph substrate's core invariants,
//! driven by the in-repo deterministic PRNG.

use dscweaver_graph::annotated::Dnf;
use dscweaver_graph::{
    annotated_closure, max_antichain, max_layer_width, topo_sort, transitive_closure,
    transitive_reduction, DiGraph, DnfPool, NodeId,
};
use dscweaver_prng::Rng;

/// A random DAG over up to `max_n` nodes: edges always go from lower to
/// higher index, so acyclicity holds by construction.
fn random_dag(rng: &mut Rng, max_n: usize, density: f64) -> DiGraph<(), ()> {
    let n = 2 + rng.random_range(max_n - 2);
    let mut g = DiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(density) {
                g.add_edge(ids[i], ids[j], ());
            }
        }
    }
    g
}

/// A random directed graph that may contain cycles, self-loops, and
/// parallel edges.
fn random_digraph(rng: &mut Rng, max_n: usize) -> DiGraph<(), ()> {
    let n = 2 + rng.random_range(max_n - 2);
    let mut g = DiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    let m = rng.random_range(n * 3 + 1);
    for _ in 0..m {
        let i = rng.random_range(n);
        let j = rng.random_range(n);
        g.add_edge(ids[i], ids[j], ());
    }
    g
}

/// Transitive reduction never changes the closure.
#[test]
fn reduction_preserves_closure() {
    let mut rng = Rng::seed_from_u64(0xB001);
    for case in 0..64 {
        let g = random_dag(&mut rng, 14, 0.5);
        let before = transitive_closure(&g);
        let mut h = g.clone();
        transitive_reduction(&mut h).unwrap();
        let after = transitive_closure(&h);
        for n in g.node_ids() {
            assert_eq!(before.row(n), after.row(n), "case {case} node {n:?}");
        }
    }
}

/// After reduction, every remaining edge is load-bearing.
#[test]
fn reduction_is_minimal() {
    let mut rng = Rng::seed_from_u64(0xB002);
    for case in 0..48 {
        let g = random_dag(&mut rng, 10, 0.5);
        let mut h = g.clone();
        transitive_reduction(&mut h).unwrap();
        let base = transitive_closure(&h);
        for e in h.edge_ids().collect::<Vec<_>>() {
            let mut h2 = h.clone();
            h2.remove_edge(e);
            let c2 = transitive_closure(&h2);
            let same = h.node_ids().all(|n| c2.row(n) == base.row(n));
            assert!(!same, "case {case}: edge {e:?} still removable");
        }
    }
}

/// Topological order respects every edge.
#[test]
fn topo_respects_edges() {
    let mut rng = Rng::seed_from_u64(0xB003);
    for case in 0..64 {
        let g = random_dag(&mut rng, 16, 0.5);
        let order = topo_sort(&g).unwrap();
        let mut pos = vec![usize::MAX; g.node_bound()];
        for (i, &n) in order.iter().enumerate() {
            pos[n.index()] = i;
        }
        for (_, a, b, _) in g.edges() {
            assert!(pos[a.index()] < pos[b.index()], "case {case}");
        }
    }
}

/// The closure relation is transitive and contains every edge — on
/// arbitrary digraphs, including cyclic ones (the SCC-condensation path).
#[test]
fn closure_transitivity() {
    let mut rng = Rng::seed_from_u64(0xB004);
    for case in 0..64 {
        let g = random_digraph(&mut rng, 10);
        let c = transitive_closure(&g);
        let n: Vec<NodeId> = g.node_ids().collect();
        for &a in &n {
            for &b in &n {
                for &d in &n {
                    if c.reaches(a, b) && c.reaches(b, d) {
                        assert!(c.reaches(a, d), "case {case}: {a:?}->{b:?}->{d:?}");
                    }
                }
            }
        }
        // And every edge is in the closure.
        for (_, a, b, _) in g.edges() {
            assert!(c.reaches(a, b), "case {case}");
        }
    }
}

/// The cyclic-fallback closure (SCC condensation) agrees with a brute
/// force per-node DFS reachability oracle.
#[test]
fn cyclic_closure_matches_dfs_oracle() {
    let mut rng = Rng::seed_from_u64(0xB005);
    for case in 0..64 {
        let g = random_digraph(&mut rng, 12);
        let c = transitive_closure(&g);
        for src in g.node_ids() {
            // DFS from src over out-edges; strict reachability (src only
            // counted when revisited through a cycle).
            let mut reach = vec![false; g.node_bound()];
            let mut stack: Vec<NodeId> = g.successors(src).collect();
            while let Some(x) = stack.pop() {
                if reach[x.index()] {
                    continue;
                }
                reach[x.index()] = true;
                stack.extend(g.successors(x));
            }
            for t in g.node_ids() {
                assert_eq!(
                    c.reaches(src, t),
                    reach[t.index()],
                    "case {case}: {src:?} -> {t:?}"
                );
            }
        }
    }
}

/// Max antichain is at least the layer width and at most n.
#[test]
fn antichain_bounds() {
    let mut rng = Rng::seed_from_u64(0xB006);
    for case in 0..48 {
        let g = random_dag(&mut rng, 10, 0.5);
        let (w, ac) = max_antichain(&g).unwrap();
        let lw = max_layer_width(&g).unwrap();
        assert!(w >= lw, "case {case}: antichain {w} < layer width {lw}");
        assert!(w <= g.node_count());
        assert_eq!(ac.len(), w);
        let c = transitive_closure(&g);
        for &a in &ac {
            for &b in &ac {
                if a != b {
                    assert!(!c.reaches(a, b), "case {case}");
                }
            }
        }
    }
}

/// The unconditional annotated closure agrees with the plain closure.
#[test]
fn annotated_matches_plain_when_unconditional() {
    let mut rng = Rng::seed_from_u64(0xB007);
    for case in 0..48 {
        let g = random_dag(&mut rng, 12, 0.5);
        let plain = transitive_closure(&g);
        let ann = annotated_closure::<_, _, u32>(&g, &|_, _: &()| None).unwrap();
        for n in g.node_ids() {
            let plain_targets: Vec<usize> = plain.row(n).iter().collect();
            let ann_targets: Vec<usize> =
                ann.row(n).iter().map(|(t, _)| t.index()).collect();
            assert_eq!(plain_targets, ann_targets, "case {case}");
            for (_, dnf) in ann.row(n).iter() {
                assert!(dnf.is_always(), "case {case}");
            }
        }
    }
}

/// Interning is faithful: for arbitrary DNFs, pool-id equality coincides
/// exactly with structural equality, and the pool's memoized union / and /
/// compose agree with the structural operations they cache.
#[test]
fn interned_ids_agree_with_structural_equality() {
    let mut rng = Rng::seed_from_u64(0xB009);
    let random_dnf = |rng: &mut Rng| -> Dnf<u8> {
        let mut d: Dnf<u8> = Dnf::empty();
        for _ in 0..rng.random_range(5) {
            let t: Vec<u8> = (0..rng.random_range(3))
                .map(|_| rng.random_range(4) as u8)
                .collect();
            d.insert(t);
        }
        d
    };
    for case in 0..64 {
        let mut pool: DnfPool<u8> = DnfPool::new();
        let dnfs: Vec<Dnf<u8>> = (0..12).map(|_| random_dnf(&mut rng)).collect();
        let ids: Vec<_> = dnfs.iter().map(|d| pool.intern(d)).collect();
        for i in 0..dnfs.len() {
            assert_eq!(pool.dnf(ids[i]), &dnfs[i], "case {case}: resolution");
            for j in 0..dnfs.len() {
                assert_eq!(
                    ids[i] == ids[j],
                    dnfs[i] == dnfs[j],
                    "case {case}: id equality must be structural equality ({i}, {j})"
                );
            }
        }
        // Pooled operations equal their structural counterparts.
        for _ in 0..16 {
            let i = rng.random_range(dnfs.len());
            let j = rng.random_range(dnfs.len());
            let mut u = dnfs[i].clone();
            u.union_with(&dnfs[j]);
            let uid = pool.union(ids[i], ids[j]);
            assert_eq!(pool.dnf(uid), &u, "case {case}: union");

            let guard = rng.random_range(4) as u8;
            let mut c = Dnf::empty();
            dnfs[i].compose_into(Some(&guard), &mut c);
            let cid = pool.compose(ids[i], Some(&guard));
            assert_eq!(pool.dnf(cid), &c, "case {case}: compose");
        }
    }
}

/// DNF insert keeps a minimal antichain: no term is a subset of another.
#[test]
fn dnf_antichain_invariant() {
    let mut rng = Rng::seed_from_u64(0xB008);
    for case in 0..256 {
        let mut d: Dnf<u8> = Dnf::empty();
        for _ in 0..rng.random_range(12) {
            let t: Vec<u8> = (0..rng.random_range(4))
                .map(|_| rng.random_range(6) as u8)
                .collect();
            d.insert(t);
        }
        let terms = d.terms();
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                if i != j {
                    let subset = a.iter().all(|x| b.contains(x));
                    assert!(!subset, "case {case}: {a:?} ⊆ {b:?}");
                }
            }
        }
    }
}
