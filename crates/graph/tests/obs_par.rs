//! Recorder properties of the `par` worker pool: every worker window
//! becomes a balanced span on its slot's stable `worker-N` lane, the
//! recorded coverage reconstructs the input exactly, and recording never
//! changes the computed results.

use dscweaver_graph::{interned_closure, par_map, par_ranges, DiGraph, DnfPool};
use dscweaver_obs as obs;
use dscweaver_obs::EventKind;

/// Replays each lane's Begin/End sequence, asserting the depth never goes
/// negative and ends at zero, and returns the closed spans as
/// `(lane, name, detail)`.
fn balanced_spans(snap: &obs::TraceSnapshot) -> Vec<(u32, String, String)> {
    let mut depth: std::collections::HashMap<u32, Vec<&str>> = std::collections::HashMap::new();
    let mut closed = Vec::new();
    let mut details: std::collections::HashMap<(u32, usize), String> =
        std::collections::HashMap::new();
    for e in snap.events() {
        let stack = depth.entry(e.lane).or_default();
        match e.kind {
            EventKind::Begin => {
                details.insert(
                    (e.lane, stack.len()),
                    e.detail.as_deref().unwrap_or("").to_string(),
                );
                stack.push(e.name);
            }
            EventKind::End => {
                let name = stack.pop().unwrap_or_else(|| {
                    panic!("End without Begin on lane {}", snap.lane_name(e.lane))
                });
                assert_eq!(name, e.name, "mismatched span nesting");
                let detail = details.remove(&(e.lane, stack.len())).unwrap_or_default();
                closed.push((e.lane, name.to_string(), detail));
            }
            EventKind::Instant => {}
        }
    }
    for (lane, stack) in depth {
        assert!(stack.is_empty(), "unclosed spans on lane {}", snap.lane_name(lane));
    }
    closed
}

#[test]
fn par_map_records_balanced_worker_spans_for_every_thread_count() {
    let _serial = obs::test_lock();
    let items: Vec<u64> = (0..97).collect();
    let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
    for threads in [1usize, 2, 3, 4, 8, 16] {
        let (got, snap) = obs::record_with(|| par_map(threads, &items, &|x| *x * 3 + 1));
        assert_eq!(got, expect, "threads {threads}: recording changed the result");
        let spans = balanced_spans(&snap);
        let chunks: Vec<&(u32, String, String)> =
            spans.iter().filter(|(_, n, _)| n == "par.map.chunk").collect();
        if threads <= 1 {
            assert!(chunks.is_empty(), "sequential path must not spawn");
            continue;
        }
        // One span per spawned chunk, each on a worker lane, and the
        // recorded chunk lengths re-add to the input length.
        assert!(!chunks.is_empty() && chunks.len() <= threads, "threads {threads}");
        let mut covered = 0usize;
        for (lane, _, detail) in &chunks {
            assert!(
                snap.lane_name(*lane).starts_with("worker-"),
                "chunk span on lane {:?}",
                snap.lane_name(*lane)
            );
            let len: usize = detail.strip_prefix("len=").unwrap().parse().unwrap();
            covered += len;
        }
        assert_eq!(covered, items.len(), "threads {threads}: chunks must tile the input");
    }
}

#[test]
fn par_ranges_windows_tile_the_range_on_stable_worker_lanes() {
    let _serial = obs::test_lock();
    let n = 41usize;
    let expect: Vec<Vec<usize>> = {
        let seq = par_ranges(1, n, &|r| r.collect::<Vec<usize>>());
        seq
    };
    let flat_expect: Vec<usize> = expect.iter().flatten().copied().collect();
    for threads in [2usize, 3, 5, 8] {
        let (got, snap) = obs::record_with(|| par_ranges(threads, n, &|r| r.collect::<Vec<usize>>()));
        let flat: Vec<usize> = got.iter().flatten().copied().collect();
        assert_eq!(flat, flat_expect, "threads {threads}: concatenation changed");
        let spans = balanced_spans(&snap);
        let mut windows: Vec<(usize, usize)> = spans
            .iter()
            .filter(|(_, name, _)| name == "par.range.window")
            .map(|(lane, _, detail)| {
                assert!(snap.lane_name(*lane).starts_with("worker-"));
                let (s, e) = detail.split_once("..").unwrap();
                (s.parse().unwrap(), e.parse().unwrap())
            })
            .collect();
        windows.sort();
        // The recorded windows tile 0..n contiguously and disjointly.
        assert_eq!(windows.len(), threads.min(n));
        assert_eq!(windows.first().unwrap().0, 0);
        assert_eq!(windows.last().unwrap().1, n);
        for w in windows.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gap or overlap between windows");
        }
    }
}

/// The level-parallel interned-closure build records one balanced
/// `closure.level` span per topological level on the main lane, and each
/// fanned-out level's `par.range.window` spans land on worker lanes and
/// tile the level — which only works because the pool workers flush
/// their thread-local buffers (`obs::flush_thread`) before the scope's
/// join point, so a snapshot taken right after the build sees them.
#[test]
fn interned_closure_levels_record_balanced_parallel_lanes() {
    let _serial = obs::test_lock();
    // Wide layered DAG: every layer is past the engine's parallel
    // threshold (8 nodes), so every non-sink level fans out.
    let (width, depth) = (12usize, 4usize);
    let mut g: DiGraph<(), Option<u8>> = DiGraph::new();
    let layers: Vec<Vec<_>> = (0..depth)
        .map(|_| (0..width).map(|_| g.add_node(())).collect())
        .collect();
    for d in 0..depth - 1 {
        for (i, &a) in layers[d].iter().enumerate() {
            for (j, &b) in layers[d + 1].iter().enumerate() {
                if (i + j) % 2 == 0 {
                    g.add_edge(a, b, Some(((i + j) % 3) as u8));
                }
            }
        }
    }
    let threads = 4usize;
    let mut plain_pool: DnfPool<u8> = DnfPool::new();
    let (plain_rows, _) =
        interned_closure(&g, &|_, w: &Option<u8>| *w, &mut plain_pool, threads).unwrap();

    let mut pool: DnfPool<u8> = DnfPool::new();
    let ((rows, _), snap) = obs::record_with(|| {
        interned_closure(&g, &|_, w: &Option<u8>| *w, &mut pool, threads).unwrap()
    });
    assert_eq!(rows, plain_rows, "recording changed the rows");

    let spans = balanced_spans(&snap);
    // One `closure.level` span per level, on the main lane, whose node
    // counts re-add to the whole graph.
    let levels: Vec<&(u32, String, String)> =
        spans.iter().filter(|(_, n, _)| n == "closure.level").collect();
    assert_eq!(levels.len(), depth, "one span per topological level");
    let mut swept = 0usize;
    for (lane, _, detail) in &levels {
        assert_eq!(snap.lane_name(*lane), "main", "level spans stay on main");
        let nodes: usize = detail.split("nodes=").nth(1).unwrap().parse().unwrap();
        swept += nodes;
    }
    assert_eq!(swept, width * depth, "levels must sweep every node");
    // Each fanned-out level contributes `threads` windows on worker
    // lanes; together they tile each level's width exactly.
    let windows: Vec<(usize, usize)> = spans
        .iter()
        .filter(|(_, name, _)| name == "par.range.window")
        .map(|(lane, _, detail)| {
            assert!(
                snap.lane_name(*lane).starts_with("worker-"),
                "window span on lane {:?}",
                snap.lane_name(*lane)
            );
            let (s, e) = detail.split_once("..").unwrap();
            (s.parse().unwrap(), e.parse().unwrap())
        })
        .collect();
    assert_eq!(windows.len(), depth * threads, "windows per fanned-out level");
    for &(s, e) in &windows {
        assert!(s < e && e <= width, "window {s}..{e} exceeds the level");
    }
    let covered: usize = windows.iter().map(|&(s, e)| e - s).sum();
    assert_eq!(covered, width * depth, "windows must tile every level");
}

/// Worker lanes are interned per slot: two sequential scopes reuse the
/// same `worker-N` lane names instead of minting new lanes per scope.
#[test]
fn worker_lanes_are_reused_across_scopes() {
    let _serial = obs::test_lock();
    let items: Vec<u32> = (0..8).collect();
    let (_, snap) = obs::record_with(|| {
        par_map(2, &items, &|x| x + 1);
        par_map(2, &items, &|x| x + 2);
    });
    let mut lanes: Vec<&str> = snap
        .events()
        .iter()
        .filter(|e| e.name == "par.map.chunk")
        .map(|e| snap.lane_name(e.lane))
        .collect();
    lanes.sort();
    lanes.dedup();
    assert_eq!(lanes, ["worker-0", "worker-1"]);
}
