//! Equivalence of the interned closure engine (`iclosure`) against the
//! structural `annotated_closure` reference: row-for-row identical
//! results across thread counts {1, 2, 4, 8} and graph shapes (layered,
//! fork-join, dense-conditional, cyclic via the shared SCC condensation),
//! with bitwise-stable pool numbering at every thread count.

use dscweaver_graph::annotated::Dnf;
use dscweaver_graph::{
    annotated_closure, annotated_closure_condensed, interned_closure,
    interned_closure_condensed, AnnotatedClosure, DiGraph, DnfPool, IRow, NodeId,
};
use dscweaver_prng::Rng;

type G = DiGraph<(), Option<u8>>;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn guard(rng: &mut Rng, guards: u8, p: f64) -> Option<u8> {
    if rng.random_bool(p) {
        Some(rng.random_range(guards as usize) as u8)
    } else {
        None
    }
}

/// Wide layered DAG (layers larger than the engine's parallel threshold)
/// with skip edges two layers down.
fn layered(rng: &mut Rng, width: usize, depth: usize, guards: u8) -> G {
    let mut g = DiGraph::new();
    let layers: Vec<Vec<NodeId>> = (0..depth)
        .map(|_| (0..width).map(|_| g.add_node(())).collect())
        .collect();
    for d in 0..depth - 1 {
        for &a in &layers[d] {
            for &b in &layers[d + 1] {
                if rng.random_bool(0.4) {
                    g.add_edge(a, b, guard(rng, guards, 0.5));
                }
            }
            if d + 2 < depth && rng.random_bool(0.3) {
                let b = layers[d + 2][rng.random_range(width)];
                g.add_edge(a, b, guard(rng, guards, 0.9));
            }
        }
    }
    g
}

/// Entry node fanning out to parallel chains that re-join at an exit
/// node; fork edges are guarded by branch.
fn fork_join(rng: &mut Rng, width: usize, chain_len: usize, guards: u8) -> G {
    let mut g = DiGraph::new();
    let entry = g.add_node(());
    let exit = g.add_node(());
    for b in 0..width {
        let mut prev = entry;
        for i in 0..chain_len {
            let n = g.add_node(());
            let w = if i == 0 {
                Some(b as u8 % guards)
            } else {
                guard(rng, guards, 0.3)
            };
            g.add_edge(prev, n, w);
            prev = n;
        }
        g.add_edge(prev, exit, None);
    }
    g
}

/// Dense DAG (edges from lower to higher index) where almost every edge
/// carries a guard — maximal annotation churn per row.
fn dense_conditional(rng: &mut Rng, n: usize, guards: u8) -> G {
    let mut g = DiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(0.6) {
                g.add_edge(ids[i], ids[j], guard(rng, guards, 0.9));
            }
        }
    }
    g
}

/// Arbitrary digraph guaranteed cyclic (the first two nodes always form
/// a 2-cycle) — exercises the SCC-condensation fallback.
fn cyclic(rng: &mut Rng, n: usize, guards: u8) -> G {
    let mut g = DiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
    g.add_edge(ids[0], ids[1], None);
    g.add_edge(ids[1], ids[0], guard(rng, guards, 0.5));
    for _ in 0..n * 3 {
        let i = rng.random_range(n);
        let j = rng.random_range(n);
        g.add_edge(ids[i], ids[j], guard(rng, guards, 0.4));
    }
    g
}

/// Every DAG shape the suite sweeps, regenerated per seed.
fn dag_shapes(seed: u64) -> Vec<(&'static str, G)> {
    let mut rng = Rng::seed_from_u64(seed);
    vec![
        ("layered", layered(&mut rng, 10, 6, 3)),
        ("fork_join", fork_join(&mut rng, 12, 5, 3)),
        ("dense_conditional", dense_conditional(&mut rng, 28, 4)),
    ]
}

/// Asserts the interned rows, resolved back to structural DNFs, match the
/// reference closure entry-for-entry on every live node.
fn assert_rows_match(g: &G, rows: &[IRow], pool: &DnfPool<u8>, ann: &AnnotatedClosure<u8>, ctx: &str) {
    for n in g.node_ids() {
        let want: Vec<(usize, Dnf<u8>)> =
            ann.row(n).iter().map(|(t, d)| (t.index(), d.clone())).collect();
        let got: Vec<(usize, Dnf<u8>)> = rows[n.index()]
            .iter()
            .map(|&(t, id)| (t as usize, pool.dnf(id).clone()))
            .collect();
        assert_eq!(got, want, "{ctx}: node {n:?}");
    }
}

/// At every thread count, the interned closure resolves to exactly the
/// structural `annotated_closure` rows.
#[test]
fn interned_rows_match_structural_reference_on_every_shape() {
    for seed in [11u64, 47, 0xD5C] {
        for (shape, g) in dag_shapes(seed) {
            let ann = annotated_closure(&g, &|_, w: &Option<u8>| *w).unwrap();
            for threads in THREADS {
                let mut pool: DnfPool<u8> = DnfPool::new();
                let (rows, stats) =
                    interned_closure(&g, &|_, w: &Option<u8>| *w, &mut pool, threads).unwrap();
                assert_rows_match(&g, &rows, &pool, &ann, &format!("{shape}/{seed}/t{threads}"));
                assert_eq!(stats.rows, g.node_count(), "{shape}/{seed}/t{threads}");
                assert!(stats.levels > 0, "{shape}/{seed}/t{threads}");
            }
        }
    }
}

/// Bitwise determinism: the rows AND the pool numbering are identical at
/// every thread count — not merely structurally equivalent.
#[test]
fn rows_and_pool_numbering_identical_across_thread_counts() {
    for seed in [3u64, 29, 0xBEEF] {
        for (shape, g) in dag_shapes(seed) {
            let mut pool1: DnfPool<u8> = DnfPool::new();
            let (rows1, _) =
                interned_closure(&g, &|_, w: &Option<u8>| *w, &mut pool1, 1).unwrap();
            for threads in [2usize, 4, 8] {
                let mut pool_t: DnfPool<u8> = DnfPool::new();
                let (rows_t, _) =
                    interned_closure(&g, &|_, w: &Option<u8>| *w, &mut pool_t, threads).unwrap();
                assert_eq!(rows_t, rows1, "{shape}/{seed}/t{threads}: rows diverge");
                assert_eq!(
                    pool_t.dnf_count(),
                    pool1.dnf_count(),
                    "{shape}/{seed}/t{threads}: pool size diverges"
                );
                assert_eq!(pool_t.term_count(), pool1.term_count(), "{shape}/{seed}/t{threads}");
                // Same ids resolve to the same formulas in both pools.
                for row in &rows_t {
                    for &(_, id) in row {
                        assert_eq!(pool_t.dnf(id), pool1.dnf(id), "{shape}/{seed}/t{threads}");
                    }
                }
            }
        }
    }
}

/// Cyclic inputs: both DAG-only builders report the cycle, and the two
/// condensed fallbacks (structural and interned, which share one
/// `condense` entry point) agree row-for-row at every thread count.
#[test]
fn cyclic_inputs_agree_through_the_shared_condensation() {
    for seed in [7u64, 19, 0xC1C] {
        let mut rng = Rng::seed_from_u64(seed);
        let g = cyclic(&mut rng, 12, 3);
        assert!(annotated_closure(&g, &|_, w: &Option<u8>| *w).is_err());
        {
            let mut pool: DnfPool<u8> = DnfPool::new();
            assert!(interned_closure(&g, &|_, w: &Option<u8>| *w, &mut pool, 4).is_err());
        }
        let ann = annotated_closure_condensed(&g, &|_, w: &Option<u8>| *w);
        let mut baseline: Option<Vec<IRow>> = None;
        for threads in THREADS {
            let mut pool: DnfPool<u8> = DnfPool::new();
            let (rows, stats) =
                interned_closure_condensed(&g, &|_, w: &Option<u8>| *w, &mut pool, threads);
            assert_rows_match(&g, &rows, &pool, &ann, &format!("cyclic/{seed}/t{threads}"));
            assert!(stats.rows > 0, "cyclic/{seed}/t{threads}");
            match &baseline {
                None => baseline = Some(rows),
                Some(b) => assert_eq!(&rows, b, "cyclic/{seed}/t{threads}: rows diverge"),
            }
        }
    }
}

/// Regression for the shared-condensation bugfix: a graph mixing a cyclic
/// component with a guarded DAG tail gets the same closure from both
/// condensed builders — reachability into and out of the cycle included.
#[test]
fn mixed_cycle_and_dag_tail_close_identically() {
    let mut g: G = DiGraph::new();
    let a = g.add_node(());
    let b = g.add_node(());
    let c = g.add_node(());
    let d = g.add_node(());
    let e = g.add_node(());
    g.add_edge(a, b, None);
    g.add_edge(b, a, None); // a ⇄ b: the cyclic component
    g.add_edge(b, c, Some(1)); // guarded bridge into the DAG tail
    g.add_edge(c, d, None);
    g.add_edge(c, e, Some(2));
    g.add_edge(d, e, None);

    let ann = annotated_closure_condensed(&g, &|_, w: &Option<u8>| *w);
    let mut pool: DnfPool<u8> = DnfPool::new();
    let (rows, _) = interned_closure_condensed(&g, &|_, w: &Option<u8>| *w, &mut pool, 2);
    assert_rows_match(&g, &rows, &pool, &ann, "mixed");

    // Members of the cycle reach themselves unconditionally...
    for n in [a, b] {
        let (row, _) = (ann.row(n), n);
        let self_dnf = row.iter().find(|(t, _)| *t == n).map(|(_, d)| d.clone());
        assert_eq!(self_dnf, Some(Dnf::always()), "self-reach of {n:?}");
    }
    // ...and reach the tail only under the bridge guard.
    let a_to_e = ann
        .row(a)
        .iter()
        .find(|(t, _)| *t == e)
        .map(|(_, d)| d.clone())
        .expect("a reaches e");
    let mut want = Dnf::empty();
    want.insert(vec![1u8]);
    assert_eq!(a_to_e, want, "a → e must require the bridge guard");
}
