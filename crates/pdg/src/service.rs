//! Service-dependency derivation from process partner declarations.
//!
//! WSCL conversation documents are the authoritative source for service
//! dependencies (§3.2; see the `dscweaver-wscl` crate). But a large part of
//! the standard pattern is already implied by the process's own partner
//! declarations and interaction activities, namely:
//!
//! * `inv → s_p` — every invoke feeds the port it calls (§3.3 naming:
//!   single-port services use the bare service name, multi-port services
//!   `s_1, s_2, ...`);
//! * `s_p → s_d` — an asynchronous service that the process receives
//!   callbacks from processes its inputs and then calls back through the
//!   dummy port `s_d`;
//! * `s_d → rec` — each receive from the service listens on the dummy
//!   port.
//!
//! Port-*ordering* constraints within a service (the Purchase requirement,
//! `Purchase_1 →_s Purchase_2`) are genuinely service-side knowledge and
//! only come from a WSCL document.

use dscweaver_core::Dependency;
use dscweaver_model::{ActivityKind, Process};

/// §3.3 port-node naming.
pub fn port_node(service: &str, port: u32, total_ports: u32) -> String {
    if total_ports <= 1 {
        service.to_string()
    } else {
        format!("{service}_{port}")
    }
}

/// The dummy callback port name.
pub fn dummy_node(service: &str) -> String {
    format!("{service}_d")
}

/// Derives the declaration-implied service dependencies and the set of
/// external service nodes they mention.
pub fn service_dependencies_from_decls(process: &Process) -> (Vec<Dependency>, Vec<String>) {
    let mut deps = Vec::new();
    let mut nodes = Vec::new();
    for svc in &process.services {
        let receives: Vec<&str> = process
            .activities()
            .iter()
            .filter_map(|a| match &a.kind {
                ActivityKind::Receive { from } if *from == svc.name => Some(a.name.as_str()),
                _ => None,
            })
            .collect();
        let invokes: Vec<(&str, u32)> = process
            .activities()
            .iter()
            .filter_map(|a| match &a.kind {
                ActivityKind::Invoke { service, port } if *service == svc.name => {
                    Some((a.name.as_str(), *port))
                }
                _ => None,
            })
            .collect();

        let mut used_ports: Vec<u32> = invokes.iter().map(|&(_, p)| p).collect();
        used_ports.sort();
        used_ports.dedup();
        for &p in &used_ports {
            nodes.push(port_node(&svc.name, p, svc.ports));
        }

        for &(inv, port) in &invokes {
            deps.push(Dependency::service(inv, &port_node(&svc.name, port, svc.ports)));
        }

        // Callback plumbing only when the process actually receives from
        // the service (the paper's Production service gets none).
        if svc.asynchronous && !receives.is_empty() {
            let d = dummy_node(&svc.name);
            nodes.push(d.clone());
            for &p in &used_ports {
                deps.push(Dependency::service(&port_node(&svc.name, p, svc.ports), &d));
            }
            for rec in receives {
                deps.push(Dependency::service(&d, rec));
            }
        }
    }
    (deps, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_model::parse_process;

    #[test]
    fn port_naming_matches_section33() {
        assert_eq!(port_node("Credit", 1, 1), "Credit");
        assert_eq!(port_node("Purchase", 1, 2), "Purchase_1");
        assert_eq!(port_node("Purchase", 2, 2), "Purchase_2");
        assert_eq!(dummy_node("Ship"), "Ship_d");
    }

    #[test]
    fn single_port_async_service_with_callback() {
        let p = parse_process(
            "process P { var po, au; service Credit { ports 1 async }
              sequence { invoke invCredit_po on Credit port 1 reads po;
                         receive recCredit_au from Credit writes au; } }",
        )
        .unwrap();
        let (deps, nodes) = service_dependencies_from_decls(&p);
        let strs: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            strs,
            vec![
                "invCredit_po ->s Credit",
                "Credit ->s Credit_d",
                "Credit_d ->s recCredit_au"
            ]
        );
        assert_eq!(nodes, vec!["Credit", "Credit_d"]);
    }

    #[test]
    fn multi_port_no_callback_has_no_dummy() {
        let p = parse_process(
            "process P { var po, ss; service Production { ports 2 async }
              sequence { invoke invProduction_po on Production port 1 reads po;
                         invoke invProduction_ss on Production port 2 reads ss; } }",
        )
        .unwrap();
        let (deps, nodes) = service_dependencies_from_decls(&p);
        let strs: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            strs,
            vec![
                "invProduction_po ->s Production_1",
                "invProduction_ss ->s Production_2"
            ]
        );
        assert_eq!(nodes, vec!["Production_1", "Production_2"]);
    }

    #[test]
    fn multi_port_with_callback_fans_into_dummy() {
        let p = parse_process(
            "process P { var po, si, oi; service Purchase { ports 2 async }
              sequence { invoke invPurchase_po on Purchase port 1 reads po;
                         invoke invPurchase_si on Purchase port 2 reads si;
                         receive recPurchase_oi from Purchase writes oi; } }",
        )
        .unwrap();
        let (deps, _) = service_dependencies_from_decls(&p);
        let strs: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        assert!(strs.contains(&"Purchase_1 ->s Purchase_d".to_string()));
        assert!(strs.contains(&"Purchase_2 ->s Purchase_d".to_string()));
        assert!(strs.contains(&"Purchase_d ->s recPurchase_oi".to_string()));
        assert_eq!(deps.len(), 5);
    }

    #[test]
    fn synchronous_service_gets_no_dummy() {
        let p = parse_process(
            "process P { var po; service Tax { ports 1 }
              sequence { invoke invTax on Tax port 1 reads po; } }",
        )
        .unwrap();
        let (deps, nodes) = service_dependencies_from_decls(&p);
        assert_eq!(deps.len(), 1);
        assert_eq!(nodes, vec!["Tax"]);
    }
}
