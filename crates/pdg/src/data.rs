//! Data-dependency extraction: definition-use chains via reaching
//! definitions over the process CFG (§3.1: "the definition-use type of data
//! dependencies is dominant in activity scheduling" — parameters are
//! call-by-value and remote execution has no side effect on process state,
//! so classic reaching definitions suffice).

use dscweaver_core::Dependency;
use dscweaver_graph::BitSet;
use dscweaver_model::{Cfg, CfgNode, Process};
use std::collections::HashMap;

/// One definition site: `(activity index, variable)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Def {
    act: String,
    var: String,
}

/// Extracts all definition-use data dependencies of `process`.
///
/// A dependency `d →_d u` is emitted when some definition of variable `v`
/// at activity `d` reaches a read of `v` at activity `u` along CFG paths
/// (including cross-branch `link` edges), without an intervening
/// redefinition killing it on *all* paths.
pub fn data_dependencies(process: &Process) -> Vec<Dependency> {
    let cfg = Cfg::build(process);
    let acts = process.activities();
    let act_of_name: HashMap<&str, &dscweaver_model::Activity> =
        acts.iter().map(|a| (a.name.as_str(), *a)).collect();

    // Enumerate definitions.
    let mut defs: Vec<Def> = Vec::new();
    let mut defs_of_var: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut defs_of_act: HashMap<&str, Vec<usize>> = HashMap::new();
    for a in &acts {
        for v in &a.writes {
            let idx = defs.len();
            defs.push(Def {
                act: a.name.clone(),
                var: v.clone(),
            });
            defs_of_var.entry(v.as_str()).or_default().push(idx);
            defs_of_act.entry(a.name.as_str()).or_default().push(idx);
        }
    }
    let ndefs = defs.len();

    // GEN/KILL per CFG node (only activity nodes generate/kill).
    let bound = cfg.graph.node_bound();
    let mut gen: Vec<BitSet> = (0..bound).map(|_| BitSet::new(ndefs)).collect();
    let mut kill: Vec<BitSet> = (0..bound).map(|_| BitSet::new(ndefs)).collect();
    for n in cfg.graph.node_ids() {
        if let CfgNode::Act(name) = cfg.graph.weight(n) {
            let Some(act) = act_of_name.get(name.as_str()) else {
                continue;
            };
            for v in &act.writes {
                for &d in defs_of_var.get(v.as_str()).into_iter().flatten() {
                    if defs[d].act == *name {
                        gen[n.index()].insert(d);
                    } else {
                        kill[n.index()].insert(d);
                    }
                }
            }
        }
    }

    // Classic forward may-analysis fixpoint:
    //   IN(n)  = ⋃ OUT(pred)
    //   OUT(n) = GEN(n) ∪ (IN(n) − KILL(n))
    let mut out: Vec<BitSet> = (0..bound).map(|_| BitSet::new(ndefs)).collect();
    let mut inn: Vec<BitSet> = (0..bound).map(|_| BitSet::new(ndefs)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for n in cfg.graph.node_ids() {
            let mut i = BitSet::new(ndefs);
            for p in cfg.graph.predecessors(n) {
                i.union_with(&out[p.index()]);
            }
            let mut o = i.clone();
            o.difference_with(&kill[n.index()]);
            o.union_with(&gen[n.index()]);
            if o != out[n.index()] || i != inn[n.index()] {
                out[n.index()] = o;
                inn[n.index()] = i;
                changed = true;
            }
        }
    }

    // Def-use pairs: at each reading activity, every reaching def of a read
    // variable contributes a dependency.
    let mut result = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for n in cfg.graph.node_ids() {
        if let CfgNode::Act(name) = cfg.graph.weight(n) {
            let Some(act) = act_of_name.get(name.as_str()) else {
                continue;
            };
            for v in &act.reads {
                for &d in defs_of_var.get(v.as_str()).into_iter().flatten() {
                    if inn[n.index()].contains(d) && defs[d].act != *name {
                        let key = (defs[d].act.clone(), name.clone());
                        if seen.insert(key) {
                            result.push(Dependency::data(&defs[d].act, name));
                        }
                    }
                }
            }
        }
    }
    // Deterministic order: by (from, to).
    result.sort_by(|a, b| (&a.from.name, &a.to.name).cmp(&(&b.from.name, &b.to.name)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_model::parse_process;

    fn deps_of(src: &str) -> Vec<(String, String)> {
        let p = parse_process(src).unwrap();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        data_dependencies(&p)
            .into_iter()
            .map(|d| (d.from.name, d.to.name))
            .collect()
    }

    #[test]
    fn straight_line_def_use() {
        let d = deps_of(
            "process P { var x, y; sequence { assign a writes x; assign b reads x writes y; assign c reads y; } }",
        );
        assert_eq!(
            d,
            vec![
                ("a".to_string(), "b".to_string()),
                ("b".to_string(), "c".to_string())
            ]
        );
    }

    #[test]
    fn redefinition_kills() {
        let d = deps_of(
            "process P { var x; sequence { assign a writes x; assign b writes x; assign c reads x; } }",
        );
        assert_eq!(d, vec![("b".to_string(), "c".to_string())]);
    }

    #[test]
    fn both_branches_reach_join() {
        let d = deps_of(
            "process P { var c, x; sequence { assign g writes c; switch s reads c { case T { assign a writes x; } case F { assign b writes x; } } assign r reads x; } }",
        );
        assert!(d.contains(&("a".to_string(), "r".to_string())));
        assert!(d.contains(&("b".to_string(), "r".to_string())));
        assert!(d.contains(&("g".to_string(), "s".to_string())));
    }

    #[test]
    fn parallel_branches_need_link_for_cross_flow() {
        // Without a link, a def in one parallel branch does not reach a use
        // in a sibling branch (no CFG path).
        let without = deps_of(
            "process P { var x; flow { assign a writes x; assign b reads x; } }",
        );
        assert!(without.is_empty());
        let with = deps_of(
            "process P { var x; flow { assign a writes x; assign b reads x; link l from a to b; } }",
        );
        assert_eq!(with, vec![("a".to_string(), "b".to_string())]);
    }

    #[test]
    fn loop_carried_dependency() {
        let d = deps_of(
            "process P { var n; sequence { assign init writes n; while c reads n { assign dec reads n writes n; } } }",
        );
        assert!(d.contains(&("init".to_string(), "c".to_string())));
        assert!(d.contains(&("dec".to_string(), "c".to_string())), "{d:?}");
        assert!(d.contains(&("init".to_string(), "dec".to_string())));
        assert!(
            !d.contains(&("dec".to_string(), "dec".to_string())),
            "self-dependencies are not emitted"
        );
    }

    // The Purchasing-process extraction (Table 1 / Figure 5 equality) is
    // covered by the cross-crate integration tests at the workspace root —
    // the workloads crate depends on this one, so the canonical process
    // cannot be imported here.
}
