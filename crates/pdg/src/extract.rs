//! End-to-end dependency extraction: the paper's §3.1 promise that "data
//! and control dependencies can be automatically extracted from document
//! products" made concrete for our process model.

use crate::control::{control_dependencies, guard_domains};
use crate::data::data_dependencies;
use crate::service::service_dependencies_from_decls;
use dscweaver_core::DependencySet;
use dscweaver_model::Process;

/// What to extract.
#[derive(Clone, Copy, Debug)]
pub struct ExtractOptions {
    /// Include definition-use data dependencies.
    pub data: bool,
    /// Include region-based control dependencies.
    pub control: bool,
    /// Include declaration-implied service dependencies (see
    /// [`crate::service`]). Port-ordering constraints still require a WSCL
    /// document on top.
    pub services_from_decls: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            data: true,
            control: true,
            services_from_decls: true,
        }
    }
}

/// Extracts a [`DependencySet`] from a process definition. Cooperation
/// dependencies are analyst-supplied (§3.2) — append them to the returned
/// set.
pub fn extract(process: &Process, opts: ExtractOptions) -> DependencySet {
    let mut ds = DependencySet::new(process.name.clone());
    for a in process.activities() {
        ds.add_activity(a.name.clone());
    }
    for (guard, dom) in guard_domains(process) {
        ds.add_domain(guard, dom);
    }
    if opts.data {
        for d in data_dependencies(process) {
            ds.push(d);
        }
    }
    if opts.control {
        for d in control_dependencies(process) {
            ds.push(d);
        }
    }
    if opts.services_from_decls {
        let (deps, nodes) = service_dependencies_from_decls(process);
        for n in nodes {
            ds.add_service(n);
        }
        for d in deps {
            ds.push(d);
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_model::parse_process;

    #[test]
    fn extraction_combines_dimensions() {
        let p = parse_process(
            "process P { var po, au; service Credit { ports 1 async }
              sequence {
                receive recClient_po from Client writes po;
                invoke invCredit_po on Credit port 1 reads po;
                receive recCredit_au from Credit writes au;
                switch if_au reads au {
                  case T { assign ok writes po; }
                  case F { assign bad writes po; }
                }
              } }",
        )
        .unwrap();
        let ds = extract(&p, ExtractOptions::default());
        let counts = ds.counts();
        assert_eq!(counts["data"], 2); // recClient_po→invCredit_po, recCredit_au→if_au
        assert_eq!(counts["control"], 2); // if_au→T ok, if_au→F bad
        assert_eq!(counts["service"], 3); // inv→Credit, Credit→Credit_d, Credit_d→rec
        assert_eq!(ds.domains["if_au"], vec!["F", "T"]);
        assert_eq!(ds.activities.len(), 6);
        assert_eq!(ds.services.len(), 2);
    }

    #[test]
    fn options_disable_dimensions() {
        let p = parse_process(
            "process P { var x; sequence { assign a writes x; assign b reads x; } }",
        )
        .unwrap();
        let ds = extract(
            &p,
            ExtractOptions {
                data: false,
                control: false,
                services_from_decls: false,
            },
        );
        assert!(ds.deps.is_empty());
        assert_eq!(ds.activities.len(), 2);
    }
}
