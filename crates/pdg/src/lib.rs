//! # dscweaver-pdg
//!
//! Program-dependence-graph extraction for business processes: the §3.1
//! path from an imperative (sequencing-construct) implementation to
//! explicit dependencies. Data dependencies come from reaching-definitions
//! def-use chains over the process CFG; control dependencies from
//! nearest-enclosing-predicate regions (with the classic
//! Ferrante–Ottenstein–Warren post-dominator derivation as a baseline);
//! declaration-implied service dependencies from the process's partner
//! declarations.

#![warn(missing_docs)]

pub mod control;
pub mod data;
pub mod extract;
pub mod service;

pub use control::{control_dependencies, control_dependencies_postdom, guard_domains};
pub use data::data_dependencies;
pub use extract::{extract, ExtractOptions};
pub use service::{dummy_node, port_node, service_dependencies_from_decls};
