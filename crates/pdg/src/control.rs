//! Control-dependency extraction.
//!
//! Two derivations are provided:
//!
//! * [`control_dependencies`] — region-based, on the construct AST: every
//!   activity is control dependent on its *nearest enclosing* predicate
//!   (switch case / while body), with the case label as the branch value.
//!   This is exact for business processes, **including parallel `flow`
//!   branches inside a case** (both branches of a flow always execute, so
//!   a fork is not a predicate — §3.1 / Figure 4).
//! * [`control_dependencies_postdom`] — the classic
//!   Ferrante–Ottenstein–Warren post-dominator walk over the CFG. Exact
//!   for fork-free (purely sequential) processes and provided as the
//!   compiler-theory baseline; on processes with parallel flows inside
//!   branches it *under-reports* (an activity in a parallel branch does not
//!   post-dominate the fork, so FOW misses it). The unit tests pin down
//!   both the agreement on sequential processes and the divergence.
//!
//! Self-dependencies (a loop condition on itself) are dropped: as
//! scheduling constraints they would form a one-node cycle; iteration is
//! handled dynamically by the scheduler, not by the static scheme.

use dscweaver_core::Dependency;
use dscweaver_graph::dominators;
use dscweaver_model::{Cfg, CfgNode, Construct, Process};
use std::collections::BTreeSet;

/// Region-based control dependencies: `(nearest enclosing predicate,
/// case label) → activity`.
pub fn control_dependencies(process: &Process) -> Vec<Dependency> {
    let mut out = Vec::new();
    walk(&process.root, None, &mut out);
    out.sort_by(|a, b| (&a.from.name, &a.to.name).cmp(&(&b.from.name, &b.to.name)));
    out
}

/// Recursively attributes activities to the nearest enclosing
/// `(guard, label)` region.
fn walk(c: &Construct, region: Option<(&str, &str)>, out: &mut Vec<Dependency>) {
    let mut emit = |name: &str| {
        if let Some((guard, label)) = region {
            if guard != name {
                out.push(Dependency::control(guard, name, label));
            }
        }
    };
    match c {
        Construct::Act(a) => emit(&a.name),
        Construct::Sequence(items) => items.iter().for_each(|i| walk(i, region, out)),
        Construct::Flow { branches, .. } => {
            branches.iter().for_each(|b| walk(b, region, out))
        }
        Construct::Switch { branch, cases } => {
            emit(&branch.name);
            for case in cases {
                walk(&case.body, Some((&branch.name, &case.label)), out);
            }
        }
        Construct::While { cond, body } => {
            emit(&cond.name);
            walk(body, Some((&cond.name, "T")), out);
        }
    }
}

/// Classic FOW control dependence over the CFG (post-dominator walk).
/// Exact only for fork-free processes; see the module docs.
pub fn control_dependencies_postdom(process: &Process) -> Vec<Dependency> {
    let cfg = Cfg::build(process);
    let pdom = dominators(&cfg.graph, cfg.exit, true);

    let mut out: Vec<Dependency> = Vec::new();
    let mut seen = BTreeSet::new();
    for p in cfg.graph.node_ids() {
        let CfgNode::Act(pname) = cfg.graph.weight(p) else {
            continue;
        };
        for e in cfg.graph.out_edges(p) {
            let Some(label) = cfg.graph.edge_weight(e).clone() else {
                continue; // unlabeled edge: not a predicate branch
            };
            let (_, s) = cfg.graph.endpoints(e);
            // Walk the post-dominator tree from s up to ipdom(p), exclusive.
            let stop = pdom.idom(p);
            let mut n = Some(s);
            while let Some(cur) = n {
                if Some(cur) == stop {
                    break;
                }
                if let CfgNode::Act(tname) = cfg.graph.weight(cur) {
                    if tname != pname {
                        let key = (pname.clone(), tname.clone(), label.clone());
                        if seen.insert(key) {
                            out.push(Dependency::control(pname, tname, &label));
                        }
                    }
                }
                let next = pdom.idom(cur);
                if next == Some(cur) {
                    break; // root of the post-dominator tree
                }
                n = next;
            }
        }
    }
    out.sort_by(|a, b| (&a.from.name, &a.to.name).cmp(&(&b.from.name, &b.to.name)));
    out
}

/// The guard domains implied by the process syntax: each switch/while
/// condition activity maps to the sorted set of its case labels (`while`
/// conditions always have `{F, T}`).
pub fn guard_domains(process: &Process) -> Vec<(String, Vec<String>)> {
    let cfg = Cfg::build(process);
    let mut out = Vec::new();
    for n in cfg.graph.node_ids() {
        if let CfgNode::Act(name) = cfg.graph.weight(n) {
            let mut labels: Vec<String> = cfg
                .graph
                .out_edges(n)
                .filter_map(|e| cfg.graph.edge_weight(e).clone())
                .collect();
            if !labels.is_empty() {
                labels.sort();
                labels.dedup();
                out.push((name.clone(), labels));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_core::DependencyKind;
    use dscweaver_model::parse_process;

    fn triples(deps: Vec<Dependency>) -> Vec<(String, String, String)> {
        deps.into_iter()
            .map(|d| {
                let v = match d.kind {
                    DependencyKind::Control { value: Some(v) } => v,
                    _ => panic!("expected conditional control dep"),
                };
                (d.from.name, d.to.name, v)
            })
            .collect()
    }

    fn deps_of(src: &str) -> Vec<(String, String, String)> {
        triples(control_dependencies(&parse_process(src).unwrap()))
    }

    /// The paper's Figure 3/4 shape: a1 branches on flag; a2..a6 in the
    /// branches are control dependent; a7 after the join is not.
    #[test]
    fn figure4_shape() {
        let src = "process P { var flag, x, y, z; sequence {
               assign a0 writes flag;
               switch a1 reads flag {
                 case T { sequence { assign a2 writes y; assign a3 reads y writes z; } }
                 case F { sequence { assign a4 writes y; assign a5 reads y; assign a6 writes z; } }
               }
               assign a7 reads z;
             } }";
        let d = deps_of(src);
        let expect = |f: &str, t: &str, v: &str| {
            assert!(
                d.contains(&(f.to_string(), t.to_string(), v.to_string())),
                "missing {f} ->{v} {t} in {d:?}"
            );
        };
        expect("a1", "a2", "T");
        expect("a1", "a3", "T");
        expect("a1", "a4", "F");
        expect("a1", "a5", "F");
        expect("a1", "a6", "F");
        assert!(
            !d.iter().any(|(_, t, _)| t == "a7"),
            "a7 dominates the join; not control dependent (Figure 4)"
        );
        assert!(!d.iter().any(|(_, t, _)| t == "a0"));
        assert_eq!(d.len(), 5);

        // On this fork-free process the FOW baseline agrees exactly.
        let fow = triples(control_dependencies_postdom(&parse_process(src).unwrap()));
        assert_eq!(d, fow);
    }

    #[test]
    fn flow_inside_branch_region_vs_fow() {
        let src = "process P { var c, x; switch s reads c {
               case T { flow { assign a writes x; assign b writes x; } }
               case F { assign e writes x; }
             } }";
        let d = deps_of(src);
        assert!(d.contains(&("s".into(), "a".into(), "T".into())));
        assert!(d.contains(&("s".into(), "b".into(), "T".into())));
        assert!(d.contains(&("s".into(), "e".into(), "F".into())));
        assert_eq!(d.len(), 3);
        // FOW under-reports here: neither a nor b post-dominates the fork.
        let fow = triples(control_dependencies_postdom(&parse_process(src).unwrap()));
        assert!(!fow.contains(&("s".into(), "a".into(), "T".into())));
        assert!(fow.contains(&("s".into(), "e".into(), "F".into())));
    }

    #[test]
    fn nested_switch_nearest_predicate_only() {
        let d = deps_of(
            "process P { var c, e, x; switch s1 reads c {
               case T { switch s2 reads e {
                 case T { assign a writes x; }
                 case F { assign b writes x; }
               } }
             } }",
        );
        assert!(d.contains(&("s1".into(), "s2".into(), "T".into())));
        assert!(d.contains(&("s2".into(), "a".into(), "T".into())));
        assert!(d.contains(&("s2".into(), "b".into(), "F".into())));
        assert!(!d.contains(&("s1".into(), "a".into(), "T".into())));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn while_body_depends_on_condition_without_self_loop() {
        let d = deps_of(
            "process P { var n; while c reads n { assign body reads n writes n; } }",
        );
        assert_eq!(d, vec![("c".into(), "body".into(), "T".into())]);
        let fow = triples(control_dependencies_postdom(
            &parse_process(
                "process P { var n; while c reads n { assign body reads n writes n; } }",
            )
            .unwrap(),
        ));
        assert_eq!(fow, d, "loops agree between derivations");
    }

    #[test]
    fn top_level_activities_are_free() {
        let d = deps_of("process P { var x; sequence { assign a writes x; assign b reads x; } }");
        assert!(d.is_empty());
    }

    #[test]
    fn domains_from_syntax() {
        let p = parse_process(
            "process P { var c, n; sequence {
               switch s reads c { case A { assign x writes n; } case B { assign y writes n; } case C { assign z writes n; } }
               while w reads n { assign body reads n writes n; }
             } }",
        )
        .unwrap();
        let doms = guard_domains(&p);
        assert_eq!(
            doms,
            vec![
                ("s".to_string(), vec!["A".into(), "B".into(), "C".into()]),
                ("w".to_string(), vec!["F".into(), "T".into()]),
            ]
        );
    }
}
