//! Property tests for the wavefront DES scheduler: on seeded workloads the
//! agenda engine must produce byte-identical traces for any thread count,
//! reproduce the legacy rescan engine's trace exactly, and never spend
//! more constraint checks than the rescan it replaces.

use dscweaver_core::{merge, translate_services, ExecConditions};
use dscweaver_prng::Rng;
use dscweaver_scheduler::{simulate, simulate_rescan_baseline, Schedule, SimConfig};
use dscweaver_workloads::{
    dense_conditional, fork_join, layered, DenseConditionalParams, LayeredParams,
};

/// Prepares an executable (desugared, service-free) constraint set from a
/// dependency set, the same front half the vertical pipeline runs.
fn prepare(ds: &dscweaver_core::DependencySet) -> (dscweaver_dscl::ConstraintSet, ExecConditions) {
    let mut sc = merge(ds);
    sc.desugar_happen_together();
    let exec = ExecConditions::derive(&sc);
    let (asc, _) = translate_services(&sc);
    (asc, exec)
}

fn trace_key(s: &Schedule) -> String {
    format!("{:?} stuck={:?}", s.trace, s.stuck)
}

#[test]
fn wavefront_trace_is_thread_invariant_and_matches_rescan() {
    let mut rng = Rng::seed_from_u64(4242);
    let mut cases: Vec<(String, dscweaver_core::DependencySet)> = Vec::new();
    for seed in [1u64, 23, 77] {
        cases.push((
            format!("layered_{seed}"),
            layered(&LayeredParams {
                width: 5,
                depth: 8,
                density: 0.35,
                redundant: 30,
                guards: 2,
                seed,
            }),
        ));
        cases.push((
            format!("dense_{seed}"),
            dense_conditional(&DenseConditionalParams {
                guards: 4,
                chain_len: 3,
                redundant: 12,
                seed,
            }),
        ));
        cases.push((format!("forkjoin_{seed}"), fork_join(4, 5, 15, seed)));
    }
    for (name, ds) in &cases {
        let (cs, exec) = prepare(ds);
        // Randomized durations and a worker cap exercise the non-monotone
        // commit gates (exclusive partners, worker slots).
        let mut config = SimConfig::default();
        for a in &cs.activities {
            config.durations.set(a, 1 + rng.random_range(9) as u64);
        }
        config.workers = Some(3);
        let base = simulate_rescan_baseline(&cs, &exec, &config);
        assert!(base.completed(), "{name}: rescan stuck {:?}", base.stuck);
        let mut first: Option<Schedule> = None;
        for threads in [1usize, 2, 0] {
            let mut c = config.clone();
            c.threads = threads;
            let wf = simulate(&cs, &exec, &c);
            assert_eq!(
                trace_key(&wf),
                trace_key(&base),
                "{name}: wavefront trace diverged from rescan (threads {threads})"
            );
            assert!(
                wf.constraint_checks <= base.constraint_checks,
                "{name}: agenda spent more checks ({} > {})",
                wf.constraint_checks,
                base.constraint_checks
            );
            if let Some(f) = &first {
                assert_eq!(
                    wf.constraint_checks, f.constraint_checks,
                    "{name}: checks not thread-invariant"
                );
            } else {
                first = Some(wf);
            }
        }
        // The executed trace still satisfies the full constraint set.
        assert!(base.trace.verify(&cs).is_empty(), "{name}");
    }
}

#[test]
fn wavefront_handles_branch_oracles_identically() {
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 4,
        chain_len: 4,
        redundant: 10,
        seed: 6,
    });
    let (cs, exec) = prepare(&ds);
    // Sweep all 16 oracle combinations: dead paths skip, live paths run,
    // and both engines must agree everywhere.
    for bits in 0u32..16 {
        let mut config = SimConfig::default();
        for k in 0..4 {
            let v = if bits & (1 << k) != 0 { "T" } else { "F" };
            config.oracle.insert(format!("g_{k}"), v.to_string());
        }
        let base = simulate_rescan_baseline(&cs, &exec, &config);
        let wf = simulate(&cs, &exec, &config);
        assert_eq!(trace_key(&wf), trace_key(&base), "oracle bits {bits:04b}");
        assert!(base.completed(), "bits {bits:04b} stuck {:?}", base.stuck);
        assert!(base.trace.verify(&cs).is_empty());
    }
}

#[test]
fn wavefront_agrees_with_rescan_on_deadlock_reporting() {
    use dscweaver_dscl::{ConstraintSet, Origin, Relation, StateRef};
    let mut cs = ConstraintSet::new("cycle");
    for a in ["a", "b", "c"] {
        cs.add_activity(a);
    }
    cs.push(Relation::before(
        StateRef::finish("a"),
        StateRef::start("b"),
        Origin::Data,
    ));
    cs.push(Relation::before(
        StateRef::finish("b"),
        StateRef::start("a"),
        Origin::Data,
    ));
    let exec = ExecConditions::derive(&cs);
    let config = SimConfig::default();
    let base = simulate_rescan_baseline(&cs, &exec, &config);
    let wf = simulate(&cs, &exec, &config);
    assert!(!base.completed());
    assert_eq!(wf.stuck, base.stuck);
    assert_eq!(trace_key(&wf), trace_key(&base));
}
