//! Property tests for the incremental re-weave session: across random
//! edit bursts (inserts, deletes, guard flips) on every workload shape,
//! a `WeaveSession` fed revision after revision must be **bit-identical**
//! to a from-scratch `Weaver::run` of each revision — same kept edges,
//! same removed constraints, same errors — at every thread count in
//! {1, 2, 4, 8}, and the session's own fingerprint (rows + pool
//! numbering + kept set) must be identical across thread counts.

use dscweaver_core::{
    Dependency, DependencySet, ReweavePath, Weaver, WeaverOutput,
};
use dscweaver_prng::Rng;
use dscweaver_workloads::{
    dense_conditional, edit_burst, fork_join, layered, DenseConditionalParams, EditProfile,
    LayeredParams,
};

fn rendered(out: &WeaverOutput) -> (Vec<String>, Vec<String>) {
    let mut kept: Vec<String> = out
        .minimal
        .happen_befores()
        .map(|r| format!("{r} [{}]", r.origin()))
        .collect();
    kept.sort();
    let removed: Vec<String> = out.removed.iter().map(|r| r.to_string()).collect();
    (kept, removed)
}

/// Builds the revision sequence once (deterministic in `seed`), then runs
/// it through a session per thread count, pinning every revision against
/// a fresh weave and the fingerprints against each other.
fn check_shape(base: DependencySet, seed: u64, bursts: &[usize], profile: EditProfile) {
    let mut revisions = vec![base.clone()];
    let mut ds = base;
    let mut rng = Rng::seed_from_u64(seed);
    for &size in bursts {
        edit_burst(&mut ds, &mut rng, size, profile);
        revisions.push(ds.clone());
    }

    let mut fingerprints: Option<Vec<Option<u64>>> = None;
    let mut delta_seen = false;
    for threads in [1usize, 2, 4, 8] {
        let weaver = Weaver {
            threads,
            ..Weaver::default()
        };
        let mut session = weaver.session();
        let mut fps: Vec<Option<u64>> = Vec::new();
        for (i, rev) in revisions.iter().enumerate() {
            let fresh = weaver.run(rev);
            match session.weave(rev) {
                Ok(rep) => {
                    let fresh = fresh.unwrap_or_else(|e| {
                        panic!("rev {i} (threads={threads}): session ok, fresh err {e}")
                    });
                    let out = session.output().expect("output after ok weave");
                    assert_eq!(
                        rendered(out),
                        rendered(&fresh),
                        "rev {i} threads={threads} path={:?} diff={:?}",
                        rep.path,
                        rep.diff
                    );
                    delta_seen |= rep.path == ReweavePath::Delta;
                    fps.push(Some(rep.fingerprint));
                }
                Err(e) => {
                    let fe = fresh.expect_err("session err but fresh ok");
                    assert_eq!(
                        e.to_string(),
                        fe.to_string(),
                        "rev {i} threads={threads}: errors must match"
                    );
                    fps.push(None);
                }
            }
        }
        match &fingerprints {
            None => fingerprints = Some(fps),
            Some(prev) => assert_eq!(
                prev, &fps,
                "threads={threads}: fingerprints must be bit-identical across thread counts"
            ),
        }
    }
    assert!(delta_seen, "no revision exercised the delta path");
}

#[test]
fn layered_level_stable_bursts() {
    for seed in [5u64, 23] {
        let base = layered(&LayeredParams {
            width: 4,
            depth: 8,
            density: 0.3,
            redundant: 30,
            guards: 2,
            seed,
        });
        check_shape(base, seed * 7 + 1, &[1, 2, 4, 3], EditProfile::LevelStable);
    }
}

#[test]
fn layered_mixed_bursts() {
    for seed in [9u64, 41] {
        let base = layered(&LayeredParams {
            width: 4,
            depth: 7,
            density: 0.35,
            redundant: 25,
            guards: 3,
            seed,
        });
        check_shape(base, seed * 13 + 2, &[2, 3, 1, 4], EditProfile::Mixed);
    }
}

#[test]
fn fork_join_bursts() {
    let base = fork_join(4, 6, 20, 31);
    check_shape(base.clone(), 101, &[1, 3, 2], EditProfile::LevelStable);
    check_shape(base, 103, &[2, 2, 3], EditProfile::Mixed);
}

#[test]
fn dense_conditional_bursts() {
    let base = dense_conditional(&DenseConditionalParams::default());
    check_shape(base.clone(), 211, &[1, 2, 2], EditProfile::LevelStable);
    check_shape(base, 223, &[3, 1, 2], EditProfile::Mixed);
}

/// A cycle-creating edit (merging the chain into one SCC) must produce
/// the exact error a fresh weave produces, leave the session state
/// intact, and the session must recover onto the delta path once the
/// offending edit is reverted.
#[test]
fn scc_merge_errors_then_recovers() {
    let mut ds = DependencySet::new("scc");
    for a in ["a", "b", "c", "d"] {
        ds.add_activity(a);
    }
    ds.push(Dependency::data("a", "b"));
    ds.push(Dependency::data("b", "c"));
    ds.push(Dependency::data("c", "d"));
    ds.push(Dependency::cooperation("a", "c"));

    let mut session = Weaver::new().session();
    let fp0 = session.weave(&ds).unwrap().fingerprint;

    // Merge {b, c, d} into one SCC: must fail exactly like a fresh run.
    let mut bad = ds.clone();
    bad.push(Dependency::cooperation("d", "b"));
    let err = session.weave(&bad).unwrap_err();
    let fresh_err = Weaver::new().run(&bad).unwrap_err();
    assert_eq!(err.to_string(), fresh_err.to_string());
    assert!(session.output().is_some(), "state must survive the error");

    // Revert (splitting the SCC back apart): pure replay.
    let rep = session.weave(&ds).unwrap();
    assert_eq!(rep.path, ReweavePath::Delta);
    assert_eq!(rep.fingerprint, fp0);
    assert_eq!(rep.rows_recomputed, 0);

    // And a level-stable edit still rides the delta path.
    let mut v2 = ds.clone();
    v2.push(Dependency::cooperation("b", "d"));
    let rep = session.weave(&v2).unwrap();
    assert_eq!(rep.path, ReweavePath::Delta);
    let fresh = Weaver::new().run(&v2).unwrap();
    assert_eq!(
        rendered(session.output().unwrap()),
        rendered(&fresh)
    );
}

/// An identity re-weave must be a pure replay: zero rows recomputed,
/// every candidate verdict reused.
#[test]
fn identity_reweave_reuses_everything() {
    // Guards force guarded coverage checks, so some candidates reach the
    // row-level (replayable) decision classes.
    let base = layered(&LayeredParams {
        guards: 3,
        redundant: 20,
        ..LayeredParams::default()
    });
    let mut session = Weaver::new().session();
    session.weave(&base).unwrap();
    let rep = session.weave(&base).unwrap();
    assert_eq!(rep.path, ReweavePath::Delta);
    assert!(rep.diff.is_empty());
    assert_eq!(rep.rows_recomputed, 0);
    // Cheap (prefilter-decided) and slow-path verdicts are re-executed by
    // design; every row-level verdict must be replayed.
    assert!(rep.candidates_reused > 0);
    assert_eq!(
        rep.candidates_reused + rep.candidates_rescreened,
        rep.candidates_total
    );
    assert!(rep.candidates_rescreened < rep.candidates_total);
}
