//! Property tests pinning the streaming monitor to the post-hoc oracle:
//! the verdict stream over a generated multi-instance log must be
//! bit-identical across thread counts and batch sizes, and must equal
//! `oracle_verdicts` (per-instance `Trace::verify` + `verify_exclusives`
//! + `check_all_conformance`). Also exercises slab recycling across
//! disjoint instance cohorts: retired rows are reused with no verdict
//! leakage into clean instances.

use dscweaver_scheduler::{
    oracle_verdicts, MonitorConfig, MonitorState, Verdict, VerdictKind,
};
use dscweaver_workloads::eventlog::{
    event_log, monitor_fixture, EventLogParams, MonitorFixture, MonitorScenarioParams,
};

fn run_monitor(
    f: &MonitorFixture,
    events: &[dscweaver_scheduler::MonitorEvent],
    threads: usize,
    shards: usize,
    batch: usize,
) -> (Vec<Verdict>, dscweaver_scheduler::MonitorStats) {
    let mut state = MonitorState::new(
        &f.program,
        &MonitorConfig {
            threads,
            shards,
            capacity: 0,
        },
    );
    let mut verdicts = Vec::new();
    for chunk in events.chunks(batch.max(1)) {
        verdicts.extend(state.ingest(chunk));
    }
    (verdicts, state.stats())
}

#[test]
fn verdicts_match_oracle_across_threads_and_batches() {
    for seed in [3u64, 11] {
        let f = monitor_fixture(&MonitorScenarioParams {
            seed,
            ..MonitorScenarioParams::default()
        });
        let log = event_log(
            &f.program,
            &f.base,
            &EventLogParams {
                instances: 300,
                seed: seed * 1000 + 1,
                ordering_rate: 0.06,
                exclusive_rate: 0.05,
                conversation_rate: 0.05,
                ..EventLogParams::default()
            },
        );
        assert!(log.injected_total() > 0, "seed {seed}: no injections");
        let oracle = oracle_verdicts(&f.program, &f.cs, &f.conversations, &log.events);
        assert!(!oracle.is_empty(), "seed {seed}: oracle found nothing");

        let (reference, _) = run_monitor(&f, &log.events, 1, 1, log.events.len());
        let mut sorted = reference.clone();
        sorted.sort();
        if sorted != oracle {
            let only_mon: Vec<_> = sorted.iter().filter(|v| !oracle.contains(v)).collect();
            let only_ora: Vec<_> = oracle.iter().filter(|v| !sorted.contains(v)).collect();
            panic!(
                "seed {seed}: monitor {} vs oracle {} verdicts; monitor-only {only_mon:#?} oracle-only {only_ora:#?}",
                sorted.len(),
                oracle.len()
            );
        }

        for threads in [1usize, 2, 4, 8] {
            for batch in [64usize, 997, 16 * 1024, log.events.len()] {
                let (got, stats) = run_monitor(&f, &log.events, threads, 0, batch);
                assert_eq!(
                    got, reference,
                    "seed {seed}: verdict stream differs at threads={threads} batch={batch}"
                );
                assert_eq!(stats.live, 0, "whole fleet must retire");
                assert_eq!(stats.retired, 300);
                assert_eq!(stats.events, log.events.len() as u64);
            }
        }

        // Recall: every injected instance surfaces with the targeted kind.
        let has = |id: u32, kind: VerdictKind| {
            reference
                .iter()
                .any(|v| v.instance == id && v.kind == kind)
        };
        for &id in &log.injected_ordering {
            assert!(has(id, VerdictKind::Ordering), "seed {seed}: missed ordering on {id}");
        }
        for &id in &log.injected_exclusive {
            assert!(has(id, VerdictKind::Exclusive), "seed {seed}: missed exclusive on {id}");
        }
        for &id in &log.injected_conversation {
            assert!(
                has(id, VerdictKind::Conversation),
                "seed {seed}: missed conversation on {id}"
            );
        }
        // Precision on clean instances: no verdict names an instance that
        // received no injection.
        let mut dirty: Vec<u32> = log
            .injected_ordering
            .iter()
            .chain(&log.injected_exclusive)
            .chain(&log.injected_conversation)
            .copied()
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        for v in &reference {
            assert!(
                dirty.binary_search(&v.instance).is_ok(),
                "seed {seed}: verdict on clean instance {}: {v:?}",
                v.instance
            );
        }
    }
}

#[test]
fn slab_rows_are_recycled_across_cohorts_without_leakage() {
    let f = monitor_fixture(&MonitorScenarioParams::default());
    let cohort = 40u32;
    let mut state = MonitorState::new(
        &f.program,
        &MonitorConfig {
            threads: 1,
            shards: 1,
            capacity: 0,
        },
    );
    // Cohort 0 is dirty; cohorts 1 and 2 reuse its retired rows and must
    // stay silent — stale counters, bitsets or watermarks would show up
    // as verdicts here.
    for wave in 0u32..3 {
        let log = event_log(
            &f.program,
            &f.base,
            &EventLogParams {
                instances: cohort,
                first_instance: wave * cohort,
                seed: 5 + wave as u64,
                ordering_rate: if wave == 0 { 0.5 } else { 0.0 },
                exclusive_rate: if wave == 0 { 0.5 } else { 0.0 },
                conversation_rate: if wave == 0 { 0.5 } else { 0.0 },
                ..EventLogParams::default()
            },
        );
        let mut verdicts = Vec::new();
        for chunk in log.events.chunks(128) {
            verdicts.extend(state.ingest(chunk));
        }
        if wave == 0 {
            assert!(!verdicts.is_empty(), "dirty cohort must trip the monitor");
        } else {
            assert!(
                verdicts.is_empty(),
                "recycled rows leaked state into wave {wave}: {verdicts:?}"
            );
        }
        let stats = state.stats();
        assert_eq!(stats.live, 0);
        assert_eq!(stats.retired, u64::from((wave + 1) * cohort));
        // Rows allocated for wave 0 cover every later wave.
        assert!(
            stats.slab_rows <= cohort as usize,
            "slab grew past one cohort: {} rows",
            stats.slab_rows
        );
    }
    assert_eq!(state.stats().peak_live, cohort as usize);
}
