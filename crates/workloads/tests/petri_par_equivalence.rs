//! Property tests pinning the parallel Petri validation paths
//! bit-identical to their sequential counterparts, on seeded workloads:
//!
//! * `validate` with `threads ∈ {1, 2, auto}` must produce the same report
//!   as the sequential legacy-rescan reference, with failures in
//!   assignment-lexicographic order;
//! * `explore_with` must reproduce `explore` exactly (seen-insertion
//!   order, truncation, terminal markings, fired set, peak tokens);
//! * `run_to_quiescence_wavefront` must replay `run_to_quiescence`'s
//!   firing sequence exactly.

use dscweaver_core::Weaver;
use dscweaver_dscl::{Condition, ConstraintSet, Relation, StateRef};
use dscweaver_petri::{
    assignment_chooser, explore, explore_with, lower, run_to_quiescence,
    run_to_quiescence_wavefront, validate, AssignmentFailure, FactorPolicy, ValidateOptions,
    ValidationReport,
};
use dscweaver_prng::Rng;
use dscweaver_workloads::{dense_conditional, fork_join, DenseConditionalParams};
use std::collections::HashMap;

/// Canonical, order-stable view of a failure (the raw assignment is a
/// HashMap whose Debug order is unstable).
fn canon_failure(f: &AssignmentFailure) -> (Vec<(String, String)>, Vec<String>, String, bool) {
    let mut a: Vec<(String, String)> = f
        .assignment
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    a.sort();
    (a, f.stuck.clone(), f.marking.clone(), f.diverged)
}

#[allow(clippy::type_complexity)]
fn canon_report(
    r: &ValidationReport,
) -> (
    Option<Vec<String>>,
    usize,
    bool,
    Vec<(Vec<(String, String)>, Vec<String>, String, bool)>,
) {
    (
        r.conflict_cycle.clone(),
        r.assignments_checked,
        r.assignments_truncated,
        r.failures.iter().map(canon_failure).collect(),
    )
}

#[test]
fn validate_report_is_thread_invariant_on_clean_workloads() {
    for seed in [3u64, 17, 91] {
        let ds = dense_conditional(&DenseConditionalParams {
            guards: 5,
            chain_len: 3,
            redundant: 16,
            seed,
        });
        let out = Weaver::new().run(&ds).unwrap();
        let reference = validate(
            &out.minimal,
            &out.exec,
            &ValidateOptions {
                threads: 1,
                rescan_baseline: true,
                ..Default::default()
            },
        );
        assert!(reference.ok(), "seed {seed}: {:?}", reference.failures);
        assert_eq!(reference.assignments_checked, 32);
        for threads in [1usize, 2, 0] {
            let par = validate(
                &out.minimal,
                &out.exec,
                &ValidateOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                canon_report(&par),
                canon_report(&reference),
                "seed {seed} threads {threads}"
            );
        }
    }
}

/// Three "ghost" guards (domains declared, control places never fed) make
/// every branch assignment fail — 8 failures whose merge order across
/// windows must be exactly assignment-lexicographic for any thread count.
#[test]
fn failure_merge_order_is_lexicographic_and_thread_invariant() {
    let mut cs = ConstraintSet::new("ghosts");
    for k in 0..3 {
        cs.add_activity(format!("b{k}"));
        cs.add_domain(format!("g{k}"), vec!["T".into(), "F".into()]);
        cs.relations.push(Relation::before_if(
            StateRef::finish(&format!("g{k}")),
            StateRef::start(&format!("b{k}")),
            Condition::new(format!("g{k}"), "T"),
            dscweaver_dscl::Origin::Control,
        ));
    }
    let exec = dscweaver_core::ExecConditions::derive(&cs);
    let reference = validate(
        &cs,
        &exec,
        &ValidateOptions {
            threads: 1,
            rescan_baseline: true,
            // Pin the full 2^3 enumeration: the three ghost guards are
            // provably independent, so auto-factoring would shrink it.
            factor: FactorPolicy::Off,
            ..Default::default()
        },
    );
    assert!(!reference.ok());
    assert_eq!(reference.assignments_checked, 8);
    assert_eq!(reference.failures.len(), 8, "every assignment deadlocks");
    for threads in [1usize, 2, 0] {
        for rescan in [false, true] {
            let got = validate(
                &cs,
                &exec,
                &ValidateOptions {
                    threads,
                    rescan_baseline: rescan,
                    factor: FactorPolicy::Off,
                    ..Default::default()
                },
            );
            assert_eq!(
                canon_report(&got),
                canon_report(&reference),
                "threads {threads} rescan {rescan}"
            );
        }
    }
}

#[test]
fn explore_with_matches_sequential_explore() {
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 3,
        chain_len: 2,
        redundant: 6,
        seed: 5,
    });
    let out = Weaver::new().run(&ds).unwrap();
    let fj = fork_join(3, 3, 4, 9);
    let fj_out = Weaver::new().run(&fj).unwrap();
    for (cs, exec) in [(&out.minimal, &out.exec), (&fj_out.minimal, &fj_out.exec)] {
        let net = lower(cs, exec).net;
        // One truncated budget and one generous budget: the layered merge
        // must reproduce both the cut and the full frontier identically.
        for max_states in [40usize, 20_000] {
            let seq = explore(&net, max_states);
            for threads in [1usize, 2, 0] {
                let par = explore_with(&net, max_states, threads);
                assert_eq!(par.states, seq.states, "states (budget {max_states})");
                assert_eq!(par.truncated, seq.truncated);
                assert_eq!(par.terminal, seq.terminal, "terminal markings in order");
                assert_eq!(par.max_place_tokens, seq.max_place_tokens);
                let mut pf: Vec<_> = par.fired.iter().copied().collect();
                let mut sf: Vec<_> = seq.fired.iter().copied().collect();
                pf.sort();
                sf.sort();
                assert_eq!(pf, sf);
            }
        }
    }
}

#[test]
fn wavefront_quiescence_replays_rescan_firing_sequence() {
    let mut rng = Rng::seed_from_u64(77);
    for seed in [2u64, 13, 40] {
        let ds = dense_conditional(&DenseConditionalParams {
            guards: 4,
            chain_len: 4,
            redundant: 10,
            seed,
        });
        let out = Weaver::new().run(&ds).unwrap();
        let net = lower(&out.minimal, &out.exec).net;
        // A handful of random branch assignments per net.
        for _ in 0..5 {
            let assignment: HashMap<String, String> = (0..4)
                .map(|k| {
                    let v = if rng.random_bool(0.5) { "T" } else { "F" };
                    (format!("finish(g_{k})"), v.to_string())
                })
                .collect();
            let a = run_to_quiescence(&net, assignment_chooser(&assignment), 1_000_000);
            let b = run_to_quiescence_wavefront(&net, assignment_chooser(&assignment), 1_000_000);
            assert_eq!(a.diverged, b.diverged);
            assert_eq!(a.trace, b.trace, "firing sequence diverged (seed {seed})");
            assert_eq!(a.final_marking, b.final_marking);
        }
    }
}
