//! Recording must be a pure observer: every engine in the vertical
//! (optimizer, Petri validation, DES scheduler) has to produce
//! bit-identical results with the recorder on and off, across thread
//! counts. This is the contract that lets the instrumentation stay
//! compiled into the engines permanently.

use dscweaver_core::Weaver;
use dscweaver_obs as obs;
use dscweaver_petri::{validate, AssignmentFailure, ValidateOptions, ValidationReport};
use dscweaver_scheduler::{simulate, Schedule, SimConfig};
use dscweaver_workloads::{
    dense_conditional, disjoint_conditional, DenseConditionalParams, DisjointConditionalParams,
};

fn canon_failure(f: &AssignmentFailure) -> (Vec<(String, String)>, Vec<String>, String, bool) {
    let mut a: Vec<(String, String)> = f
        .assignment
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    a.sort();
    (a, f.stuck.clone(), f.marking.clone(), f.diverged)
}

fn canon_report(r: &ValidationReport) -> String {
    format!(
        "{:?} {} {} {} {} {} {:?}",
        r.conflict_cycle,
        r.assignments_checked,
        r.assignments_truncated,
        r.guard_groups,
        r.assignment_space,
        r.factored,
        r.failures.iter().map(canon_failure).collect::<Vec<_>>()
    )
}

fn canon_schedule(s: &Schedule) -> String {
    format!("{:?} stuck={:?} checks={}", s.trace, s.stuck, s.constraint_checks)
}

#[test]
fn optimizer_results_are_identical_with_recording_on_and_off() {
    let _serial = obs::test_lock();
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 4,
        chain_len: 3,
        redundant: 12,
        seed: 7,
    });
    for threads in [1usize, 2, 0] {
        let weaver = Weaver {
            threads,
            ..Weaver::new()
        };
        let off = weaver.run(&ds).unwrap();
        let (on, trace) = obs::record_with(|| weaver.run(&ds).unwrap());
        assert!(!trace.is_empty(), "threads {threads}: nothing was recorded");
        assert_eq!(
            format!("{:?}", off.minimal),
            format!("{:?}", on.minimal),
            "threads {threads}"
        );
        assert_eq!(format!("{:?}", off.removed), format!("{:?}", on.removed));
        assert_eq!(format!("{:?}", off.sc), format!("{:?}", on.sc));
    }
}

#[test]
fn validation_reports_are_identical_with_recording_on_and_off() {
    let _serial = obs::test_lock();
    let ds = disjoint_conditional(&DisjointConditionalParams {
        groups: 2,
        guards_per_group: 3,
        chain_len: 2,
        redundant: 6,
        seed: 5,
    });
    let out = Weaver::new().run(&ds).unwrap();
    for threads in [1usize, 2, 0] {
        let opts = ValidateOptions {
            threads,
            ..Default::default()
        };
        let off = validate(&out.minimal, &out.exec, &opts);
        let (on, trace) = obs::record_with(|| validate(&out.minimal, &out.exec, &opts));
        assert!(!trace.is_empty(), "threads {threads}: nothing was recorded");
        assert_eq!(canon_report(&off), canon_report(&on), "threads {threads}");
    }
}

#[test]
fn schedules_are_identical_with_recording_on_and_off() {
    let _serial = obs::test_lock();
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 4,
        chain_len: 4,
        redundant: 10,
        seed: 6,
    });
    let out = Weaver::new().run(&ds).unwrap();
    for threads in [1usize, 2] {
        let cfg = SimConfig {
            threads,
            ..Default::default()
        };
        let off = simulate(&out.minimal, &out.exec, &cfg);
        let (on, trace) = obs::record_with(|| simulate(&out.minimal, &out.exec, &cfg));
        assert!(!trace.is_empty(), "threads {threads}: nothing was recorded");
        assert_eq!(canon_schedule(&off), canon_schedule(&on), "threads {threads}");
    }
}
