//! Property tests for the prepared engines: a `PreparedNet`/`NetSession`
//! and a `PreparedSchedule` reused across many consecutive runs (varying
//! branch assignments, oracles, assignment windows and thread counts) must
//! produce results byte-identical to the fresh-build paths, and factored
//! validation must agree with the full enumeration's verdict while
//! checking strictly fewer assignments on guard-independent workloads.

use dscweaver_core::{merge, translate_services, ExecConditions, Weaver};
use dscweaver_petri::{
    assignment_chooser, guard_groups, lower, run_to_quiescence_wavefront, validate,
    AssignmentFailure, FactorPolicy, PreparedNet, ValidateOptions, ValidationReport,
};
use dscweaver_scheduler::{simulate, PreparedSchedule, Schedule, SimConfig};
use dscweaver_workloads::{
    dense_conditional, disjoint_conditional, DenseConditionalParams, DisjointConditionalParams,
};
use std::collections::HashMap;

fn canon_failure(f: &AssignmentFailure) -> (Vec<(String, String)>, Vec<String>, String, bool) {
    let mut a: Vec<(String, String)> = f
        .assignment
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    a.sort();
    (a, f.stuck.clone(), f.marking.clone(), f.diverged)
}

#[allow(clippy::type_complexity)]
fn canon_report(
    r: &ValidationReport,
) -> (
    Option<Vec<String>>,
    usize,
    bool,
    usize,
    usize,
    Vec<(Vec<(String, String)>, Vec<String>, String, bool)>,
) {
    (
        r.conflict_cycle.clone(),
        r.assignments_checked,
        r.assignments_truncated,
        r.guard_groups,
        r.assignment_space,
        r.failures.iter().map(canon_failure).collect(),
    )
}

fn trace_key(s: &Schedule) -> String {
    format!("{:?} stuck={:?} checks={}", s.trace, s.stuck, s.constraint_checks)
}

/// One `NetSession` replayed across every assignment of a 4-guard workload
/// (16 consecutive runs on the same scratch state) must match a fresh
/// wavefront simulation per assignment exactly.
#[test]
fn net_session_reuse_matches_fresh_wavefront_across_runs() {
    for seed in [3u64, 17, 91] {
        let ds = dense_conditional(&DenseConditionalParams {
            guards: 4,
            chain_len: 3,
            redundant: 12,
            seed,
        });
        let out = Weaver::new().run(&ds).unwrap();
        let lowered = lower(&out.minimal, &out.exec);
        let prep = PreparedNet::new(&lowered.net);
        let mut session = prep.session();
        for bits in 0u32..16 {
            let assignment: HashMap<String, String> = (0..4)
                .map(|k| {
                    let v = if bits & (1 << k) != 0 { "T" } else { "F" };
                    (format!("finish(g_{k})"), v.to_string())
                })
                .collect();
            let fresh = run_to_quiescence_wavefront(
                &lowered.net,
                assignment_chooser(&assignment),
                1_000_000,
            );
            let reused = session.run(assignment_chooser(&assignment), 1_000_000);
            assert_eq!(fresh.trace, reused.trace, "seed {seed} bits {bits:04b}");
            assert_eq!(fresh.final_marking, reused.final_marking);
            assert_eq!(fresh.diverged, reused.diverged);
        }
    }
}

/// `validate` (which now runs one session per worker window) must stay
/// bit-identical to the sequential rescan reference for every thread count
/// and for truncating assignment windows.
#[test]
fn validate_sessions_are_thread_and_window_invariant() {
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 5,
        chain_len: 3,
        redundant: 16,
        seed: 17,
    });
    let out = Weaver::new().run(&ds).unwrap();
    for max_assignments in [4096usize, 20, 7] {
        let reference = validate(
            &out.minimal,
            &out.exec,
            &ValidateOptions {
                threads: 1,
                rescan_baseline: true,
                max_assignments,
                ..Default::default()
            },
        );
        assert_eq!(reference.assignments_checked, max_assignments.min(32));
        for threads in [1usize, 2, 0] {
            let got = validate(
                &out.minimal,
                &out.exec,
                &ValidateOptions {
                    threads,
                    max_assignments,
                    ..Default::default()
                },
            );
            assert_eq!(
                canon_report(&got),
                canon_report(&reference),
                "threads {threads} window {max_assignments}"
            );
        }
    }
}

/// Factored validation on a guard-independent workload: same verdict as
/// the full enumeration, strictly fewer assignments, and thread-invariant.
#[test]
fn factored_validation_agrees_with_full_enumeration() {
    let ds = disjoint_conditional(&DisjointConditionalParams {
        groups: 2,
        guards_per_group: 3,
        chain_len: 2,
        redundant: 6,
        seed: 5,
    });
    let out = Weaver::new().run(&ds).unwrap();
    let lowered = lower(&out.minimal, &out.exec);
    let groups = guard_groups(&lowered, &out.minimal);
    assert_eq!(groups.len(), 2, "two provably disjoint islands: {groups:?}");
    assert!(groups.iter().all(|g| g.len() == 3));

    let full = validate(
        &out.minimal,
        &out.exec,
        &ValidateOptions {
            factor: FactorPolicy::Off,
            ..Default::default()
        },
    );
    assert!(full.ok(), "failures: {:?}", full.failures);
    assert_eq!(full.assignments_checked, 64); // 2^6
    assert_eq!(full.guard_groups, 1);
    assert!(!full.factored);

    let mut first = None;
    for threads in [1usize, 2, 0] {
        let factored = validate(
            &out.minimal,
            &out.exec,
            &ValidateOptions {
                factor: FactorPolicy::On,
                threads,
                ..Default::default()
            },
        );
        assert_eq!(factored.ok(), full.ok());
        assert_eq!(factored.guard_groups, 2);
        assert_eq!(factored.assignments_checked, 16); // 2 · 2^3
        assert_eq!(factored.assignment_space, 64);
        assert!(factored.assignments_checked < full.assignments_checked);
        let canon = canon_report(&factored);
        if let Some(f) = &first {
            assert_eq!(&canon, f, "factored report not thread-invariant");
        } else {
            first = Some(canon);
        }
    }
}

/// One `PreparedSchedule` replayed across oracles, worker limits and
/// thread counts (3 × 3 × 2 consecutive runs) must match a fresh
/// `simulate` per configuration exactly, checks included.
#[test]
fn prepared_schedule_reuse_matches_fresh_simulate() {
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 4,
        chain_len: 4,
        redundant: 10,
        seed: 6,
    });
    let mut sc = merge(&ds);
    sc.desugar_happen_together();
    let exec = ExecConditions::derive(&sc);
    let (cs, _) = translate_services(&sc);
    let session = PreparedSchedule::new(&cs, &exec);
    for bits in [0u32, 5, 15] {
        for workers in [None, Some(2), Some(4)] {
            for threads in [1usize, 2] {
                let mut config = SimConfig::default();
                for k in 0..4 {
                    let v = if bits & (1 << k) != 0 { "T" } else { "F" };
                    config.oracle.insert(format!("g_{k}"), v.to_string());
                }
                config.workers = workers;
                config.threads = threads;
                let fresh = simulate(&cs, &exec, &config);
                let replay = session.run(&config);
                assert_eq!(
                    trace_key(&replay),
                    trace_key(&fresh),
                    "bits {bits:04b} workers {workers:?} threads {threads}"
                );
                assert!(fresh.completed(), "stuck: {:?}", fresh.stuck);
            }
        }
    }
}
