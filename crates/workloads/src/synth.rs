//! Synthetic workload generators for the scaling and ablation experiments
//! (Ext-A/B/C/D in DESIGN.md). The paper evaluates only on the 14-activity
//! Purchasing process; these generators provide the parameter sweeps a
//! real evaluation needs.
//!
//! All generators are deterministic in their seed.

use dscweaver_core::{Dependency, DependencySet};
use dscweaver_prng::Rng;

/// Parameters for the layered-process generator.
#[derive(Clone, Debug)]
pub struct LayeredParams {
    /// Activities per layer.
    pub width: usize,
    /// Number of layers.
    pub depth: usize,
    /// Probability of a data edge between adjacent-layer activities.
    pub density: f64,
    /// Number of *redundant* (transitively implied) extra constraints to
    /// inject — the knob for measuring optimizer reduction.
    pub redundant: usize,
    /// Number of conditional guards to sprinkle in (each guard splits the
    /// activities below it into a T-region).
    pub guards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            width: 4,
            depth: 5,
            density: 0.4,
            redundant: 10,
            guards: 1,
            seed: 42,
        }
    }
}

/// Generates a layered DAG process: `width × depth` activities, data
/// dependencies between adjacent layers (each non-first-layer activity
/// gets at least one predecessor, so the graph is connected), optional
/// control guards, plus `redundant` injected transitively-implied
/// cooperation constraints.
///
/// Returns the dependency set; the injected-redundant count is recoverable
/// from `counts()["cooperative"]`.
pub fn layered(params: &LayeredParams) -> DependencySet {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut ds = DependencySet::new(format!(
        "layered_w{}_d{}_s{}",
        params.width, params.depth, params.seed
    ));
    let name = |layer: usize, i: usize| format!("a_{layer}_{i}");
    for layer in 0..params.depth {
        for i in 0..params.width {
            ds.add_activity(name(layer, i));
        }
    }

    // Adjacent-layer data dependencies.
    for layer in 1..params.depth {
        for i in 0..params.width {
            let mut any = false;
            for j in 0..params.width {
                if rng.random_bool(params.density) {
                    ds.push(Dependency::data(&name(layer - 1, j), &name(layer, i)));
                    any = true;
                }
            }
            if !any {
                let j = rng.random_range(params.width);
                ds.push(Dependency::data(&name(layer - 1, j), &name(layer, i)));
            }
        }
    }

    // Guards: activity g_k sits on layer k (inserted as an extra activity);
    // everything on deeper layers in its "column region" becomes control
    // dependent on g_k = T.
    for k in 0..params.guards.min(params.depth.saturating_sub(1)) {
        let g = format!("guard_{k}");
        ds.add_activity(g.clone());
        ds.add_domain(g.clone(), vec!["T".into(), "F".into()]);
        // The guard reads from one activity on its layer and guards one
        // column below it.
        ds.push(Dependency::data(&name(k, 0), &g));
        for layer in (k + 1)..params.depth {
            ds.push(Dependency::control(&g, &name(layer, 0), "T"));
        }
    }

    // Redundant constraints: pick a random transitive pair (u above v with
    // a path) and add a cooperation edge. With layered data edges, any
    // (layer_a, i) → (layer_b, j) with layer_b > layer_a is *likely*
    // transitive; to guarantee redundancy we add chains along existing
    // edges: pick an existing dependency pair (x → y) and an existing
    // (y → z), then add x → z.
    let pairs: Vec<(String, String)> = ds
        .deps
        .iter()
        .filter(|d| d.kind.dimension() == "data")
        .map(|d| (d.from.name.clone(), d.to.name.clone()))
        .collect();
    let mut added = 0;
    let mut attempts = 0;
    while added < params.redundant && attempts < params.redundant * 50 {
        attempts += 1;
        let Some((x, y)) = rng.choose(&pairs).cloned() else {
            break;
        };
        let nexts: Vec<&(String, String)> =
            pairs.iter().filter(|(f, _)| *f == y).collect();
        let Some((_, z)) = rng.choose(&nexts) else {
            continue;
        };
        ds.push(Dependency::cooperation(&x, z));
        added += 1;
    }
    ds
}

/// A fork-join process: one source fans out to `width` parallel chains of
/// `chain_len` activities which join into one sink; `redundant` extra
/// source→sink / shortcut constraints are injected.
pub fn fork_join(width: usize, chain_len: usize, redundant: usize, seed: u64) -> DependencySet {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ds = DependencySet::new(format!("forkjoin_w{width}_l{chain_len}_s{seed}"));
    ds.add_activity("source");
    ds.add_activity("sink");
    for w in 0..width {
        let mut prev = "source".to_string();
        for l in 0..chain_len {
            let n = format!("c_{w}_{l}");
            ds.add_activity(n.clone());
            ds.push(Dependency::data(&prev, &n));
            prev = n;
        }
        ds.push(Dependency::data(&prev, "sink"));
    }
    for _ in 0..redundant {
        let w = rng.random_range(width);
        let a = rng.random_range(chain_len);
        let b = rng.random_range(chain_len);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo == hi {
            ds.push(Dependency::cooperation(&format!("c_{w}_{lo}"), "sink"));
        } else {
            ds.push(Dependency::cooperation(
                &format!("c_{w}_{lo}"),
                &format!("c_{w}_{hi}"),
            ));
        }
    }
    ds
}

/// Parameters for the dense-conditional-core generator.
#[derive(Clone, Debug)]
pub struct DenseConditionalParams {
    /// Independent binary guards; the validator's branch-assignment
    /// fan-out enumerates `2^guards` live assignments (clamped to ≥ 1).
    pub guards: usize,
    /// Depth of each guarded slow-path chain.
    pub chain_len: usize,
    /// Injected transitively-implied shortcut constraints (within-chain
    /// and chain→join), the minimizer-reduction knob.
    pub redundant: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DenseConditionalParams {
    fn default() -> Self {
        DenseConditionalParams {
            guards: 9,
            chain_len: 6,
            redundant: 64,
            seed: 11,
        }
    }
}

/// Generates a dense-conditional-core process: an entry activity fans out
/// to `guards` independent binary guards, each guarding a deep slow-path
/// chain (every chain element control-depends on its guard's `T` branch),
/// all chains joining into one sink. With the default 9 guards the
/// validator's per-assignment fan-out has `2^9 = 512` live branch
/// assignments — the workload behind `BENCH_petri.json`.
pub fn dense_conditional(params: &DenseConditionalParams) -> DependencySet {
    let guards = params.guards.max(1);
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut ds = DependencySet::new(format!(
        "dense_g{}_l{}_s{}",
        guards, params.chain_len, params.seed
    ));
    ds.add_activity("entry");
    ds.add_activity("join");
    let chain = |k: usize, l: usize| format!("s_{k}_{l}");
    for k in 0..guards {
        let g = format!("g_{k}");
        ds.add_activity(g.clone());
        ds.add_domain(g.clone(), vec!["T".into(), "F".into()]);
        ds.push(Dependency::data("entry", &g));
        let mut prev = g.clone();
        for l in 0..params.chain_len {
            let n = chain(k, l);
            ds.add_activity(n.clone());
            ds.push(Dependency::data(&prev, &n));
            ds.push(Dependency::control(&g, &n, "T"));
            prev = n;
        }
        // Skipped chains waive the join's data prereq (dead-path
        // elimination), so the join always runs.
        ds.push(Dependency::data(&prev, "join"));
    }
    // Redundant shortcuts: within a chain (implied by the data chain) or
    // from a chain element to the join (implied via the chain tail).
    for _ in 0..params.redundant {
        if params.chain_len == 0 {
            break;
        }
        let k = rng.random_range(guards);
        let a = rng.random_range(params.chain_len);
        let b = rng.random_range(params.chain_len);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo == hi {
            ds.push(Dependency::cooperation(&chain(k, lo), "join"));
        } else {
            ds.push(Dependency::cooperation(&chain(k, lo), &chain(k, hi)));
        }
    }
    ds
}

/// Parameters for the disjoint-islands generator.
#[derive(Clone, Debug)]
pub struct DisjointConditionalParams {
    /// Number of mutually independent islands (guard groups).
    pub groups: usize,
    /// Binary guards per island; guards inside one island share a join,
    /// so they form one footprint group.
    pub guards_per_group: usize,
    /// Depth of each guarded slow-path chain.
    pub chain_len: usize,
    /// Injected transitively-implied shortcut constraints, kept inside one
    /// island so the groups stay provably disjoint.
    pub redundant: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DisjointConditionalParams {
    fn default() -> Self {
        DisjointConditionalParams {
            groups: 2,
            guards_per_group: 2,
            chain_len: 3,
            redundant: 8,
            seed: 11,
        }
    }
}

/// Generates `groups` mutually independent conditional islands: each
/// island has `guards_per_group` binary guards whose guarded chains all
/// join at a per-island sink, and nothing downstream connects the islands
/// (they only share the upstream `entry`, which no guard's footprint
/// reaches). The lowered net's guard-independence analysis
/// (`dscweaver_petri::guard_groups`) therefore yields exactly `groups`
/// groups of `guards_per_group` guards each, and factored validation
/// checks `groups · 2^guards_per_group` assignments instead of the full
/// `2^(groups · guards_per_group)` product.
pub fn disjoint_conditional(params: &DisjointConditionalParams) -> DependencySet {
    let groups = params.groups.max(1);
    let gpg = params.guards_per_group.max(1);
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut ds = DependencySet::new(format!(
        "disjoint_{}x{}_l{}_s{}",
        groups, gpg, params.chain_len, params.seed
    ));
    ds.add_activity("entry");
    let chain = |i: usize, k: usize, l: usize| format!("d_{i}_{k}_{l}");
    for i in 0..groups {
        let join = format!("join_{i}");
        ds.add_activity(join.clone());
        for k in 0..gpg {
            let g = format!("g_{i}_{k}");
            ds.add_activity(g.clone());
            ds.add_domain(g.clone(), vec!["T".into(), "F".into()]);
            ds.push(Dependency::data("entry", &g));
            let mut prev = g.clone();
            for l in 0..params.chain_len {
                let n = chain(i, k, l);
                ds.add_activity(n.clone());
                ds.push(Dependency::data(&prev, &n));
                ds.push(Dependency::control(&g, &n, "T"));
                prev = n;
            }
            // Skipped chains waive the join's data prereq (dead-path
            // elimination), so every island's join always runs.
            ds.push(Dependency::data(&prev, &join));
        }
    }
    for _ in 0..params.redundant {
        if params.chain_len == 0 {
            break;
        }
        let i = rng.random_range(groups);
        let k = rng.random_range(gpg);
        let a = rng.random_range(params.chain_len);
        let b = rng.random_range(params.chain_len);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo == hi {
            ds.push(Dependency::cooperation(&chain(i, k, lo), &format!("join_{i}")));
        } else {
            ds.push(Dependency::cooperation(&chain(i, k, lo), &chain(i, k, hi)));
        }
    }
    ds
}

/// A service-mesh workload: `n_services` asynchronous services, each with
/// an invoke/receive pair in the process chained by data dependencies, and
/// the full WSCL-style plumbing (`inv → S`, `S → S_d`, `S_d → rec`).
/// Exercises service-dependency translation at scale.
pub fn service_mesh(n_services: usize, seed: u64) -> DependencySet {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ds = DependencySet::new(format!("mesh_{n_services}_s{seed}"));
    ds.add_activity("start");
    let mut receives = vec!["start".to_string()];
    for s in 0..n_services {
        let svc = format!("Svc{s}");
        let inv = format!("inv_{s}");
        let rec = format!("rec_{s}");
        ds.add_activity(inv.clone());
        ds.add_activity(rec.clone());
        ds.add_service(svc.clone());
        ds.add_service(format!("{svc}_d"));
        // The invoke consumes data from a random earlier receive.
        let src = receives[rng.random_range(receives.len())].clone();
        ds.push(Dependency::data(&src, &inv));
        ds.push(Dependency::service(&inv, &svc));
        ds.push(Dependency::service(&svc, &format!("{svc}_d")));
        ds.push(Dependency::service(&format!("{svc}_d"), &rec));
        receives.push(rec);
    }
    ds.add_activity("end");
    for r in receives.iter().skip(1) {
        ds.push(Dependency::cooperation(r, "end"));
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_core::{EquivalenceMode, ExecConditions, Weaver};
    use dscweaver_petri::FactorPolicy;

    #[test]
    fn layered_is_deterministic_and_connected() {
        let a = layered(&LayeredParams::default());
        let b = layered(&LayeredParams::default());
        assert_eq!(a, b);
        // Every non-first-layer activity has an incoming data dep.
        for layer in 1..5 {
            for i in 0..4 {
                let n = format!("a_{layer}_{i}");
                assert!(
                    a.deps.iter().any(|d| d.to.name == n),
                    "{n} has no predecessor"
                );
            }
        }
    }

    #[test]
    fn layered_pipeline_removes_injected_redundancy() {
        let params = LayeredParams {
            redundant: 15,
            ..Default::default()
        };
        let ds = layered(&params);
        let out = Weaver::new().run(&ds).unwrap();
        // All injected x→z shortcuts are transitive (x→y→z exists), so at
        // least `redundant` constraints must go.
        assert!(
            out.total_removed() >= 15,
            "removed {} < 15",
            out.total_removed()
        );
    }

    #[test]
    fn fork_join_reduction() {
        let ds = fork_join(4, 5, 10, 7);
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.total_removed() >= 10);
        // The skeleton (4 chains × 6 edges) must survive.
        assert_eq!(out.minimal.constraint_count(), 4 * 6);
    }

    #[test]
    fn service_mesh_translates_cleanly() {
        let ds = service_mesh(10, 3);
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.asc.services.is_empty());
        // Each service contributes one bridge inv → rec.
        assert_eq!(out.translation.bridges.len(), 10);
        assert!(out.minimal.validate().is_empty());
    }

    #[test]
    fn dense_conditional_is_deterministic_with_512_assignments() {
        let a = dense_conditional(&DenseConditionalParams::default());
        let b = dense_conditional(&DenseConditionalParams::default());
        assert_eq!(a, b);
        let cs = dscweaver_core::merge(&a);
        let space: usize = cs.domains.values().map(|d| d.len().max(1)).product();
        assert!(space >= 512, "assignment space {space} < 512");
    }

    #[test]
    fn dense_conditional_small_validates_per_assignment() {
        // Tier-1-sized instance: 4 guards → 16 assignments, all of which
        // must terminate cleanly on the minimized scheme.
        let ds = dense_conditional(&DenseConditionalParams {
            guards: 4,
            chain_len: 3,
            redundant: 12,
            ..Default::default()
        });
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.total_removed() >= 12, "removed {}", out.total_removed());
        let report = dscweaver_petri::validate_default(&out.minimal, &out.exec);
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.assignments_checked, 16);
    }

    #[test]
    fn disjoint_conditional_factors_multiplicative_to_additive() {
        // Two islands of two guards each: the full space is 2^4 = 16, the
        // factored enumeration is 2 · 2^2 = 8 — with the same verdict.
        let ds = disjoint_conditional(&DisjointConditionalParams::default());
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.total_removed() >= 8, "removed {}", out.total_removed());
        let full = dscweaver_petri::validate(
            &out.minimal,
            &out.exec,
            &dscweaver_petri::ValidateOptions {
                factor: FactorPolicy::Off,
                ..Default::default()
            },
        );
        assert!(full.ok(), "failures: {:?}", full.failures);
        assert_eq!(full.assignments_checked, 16);
        assert_eq!(full.guard_groups, 1);
        assert!(!full.factored);
        assert_eq!(full.assignment_space, 16);
        let factored = dscweaver_petri::validate(
            &out.minimal,
            &out.exec,
            &dscweaver_petri::ValidateOptions {
                factor: FactorPolicy::On,
                ..Default::default()
            },
        );
        assert!(factored.ok(), "failures: {:?}", factored.failures);
        assert_eq!(factored.guard_groups, 2);
        assert_eq!(factored.assignments_checked, 8);
        assert_eq!(factored.assignment_space, 16);
    }

    #[test]
    fn guards_create_conditional_constraints() {
        let ds = layered(&LayeredParams {
            guards: 2,
            ..Default::default()
        });
        let exec = ExecConditions::derive(&dscweaver_core::merge(&ds));
        assert!(!exec.is_unconditional("a_1_0"));
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.minimal.validate().is_empty());
        // Strict mode keeps at least as many constraints.
        let strict = Weaver {
            mode: EquivalenceMode::Strict,
            ..Weaver::default()
        }
        .run(&ds)
        .unwrap();
        assert!(strict.minimal.constraint_count() >= out.minimal.constraint_count());
    }
}
