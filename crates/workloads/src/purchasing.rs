//! The paper's running example: the **Purchasing process** (§2, Figure 1),
//! borrowed from the BPEL 1.0 specification and extended with a conditional
//! branch.
//!
//! This module provides both forms the paper works with:
//!
//! * [`purchasing_process`] — the sequencing-construct implementation
//!   (Figure 2), used as the imperative baseline and as input to PDG
//!   extraction;
//! * [`purchasing_dependencies`] — the explicit four-dimension dependency
//!   set, transcribed from Table 1 (9 data + 10 control + 6 cooperation +
//!   15 service = 40 dependencies).

use dscweaver_core::{Dependency, DependencySet};
use dscweaver_model::{parse_process, Process};
use dscweaver_wscl::{derive_service_dependencies, Conversation, ServiceBinding};

/// The 14 internal activities in Figure-1 order.
pub const ACTIVITIES: [&str; 14] = [
    "recClient_po",
    "invCredit_po",
    "recCredit_au",
    "if_au",
    "invPurchase_po",
    "invPurchase_si",
    "recPurchase_oi",
    "invShip_po",
    "recShip_si",
    "recShip_ss",
    "invProduction_po",
    "invProduction_ss",
    "set_oi",
    "replyClient_oi",
];

/// The 9 external service nodes in §3.3 naming (per-port, `_d` = the dummy
/// callback port of an asynchronous service).
pub const SERVICE_NODES: [&str; 9] = [
    "Credit",
    "Credit_d",
    "Purchase_1",
    "Purchase_2",
    "Purchase_d",
    "Ship",
    "Ship_d",
    "Production_1",
    "Production_2",
];

/// The Figure-2 sequencing-construct implementation, in the model DSL.
pub const PURCHASING_DSL: &str = r#"
process Purchasing {
  var po, au, si, ss, oi;
  service Credit     { ports 1 async }
  service Purchase   { ports 2 async }
  service Ship       { ports 1 async }
  service Production { ports 2 async }

  sequence {
    receive recClient_po from Client writes po;
    invoke invCredit_po on Credit port 1 reads po;
    receive recCredit_au from Credit writes au;
    switch if_au reads au {
      case T {
        flow {
          sequence {
            invoke invPurchase_po on Purchase port 1 reads po;
            invoke invPurchase_si on Purchase port 2 reads si;
            receive recPurchase_oi from Purchase writes oi;
          }
          sequence {
            invoke invShip_po on Ship port 1 reads po;
            receive recShip_si from Ship writes si;
            receive recShip_ss from Ship writes ss;
          }
          sequence {
            invoke invProduction_po on Production port 1 reads po;
            invoke invProduction_ss on Production port 2 reads ss;
          }
          link l_si from recShip_si to invPurchase_si;
          link l_ss from recShip_ss to invProduction_ss;
        }
      }
      case F {
        assign set_oi writes oi;
      }
    }
    reply replyClient_oi to Client reads oi;
  }
}
"#;

/// Parses the Figure-2 implementation.
pub fn purchasing_process() -> Process {
    let p = parse_process(PURCHASING_DSL).expect("built-in process must parse");
    debug_assert!(p.validate().is_empty(), "{:?}", p.validate());
    p
}

/// Builds Table 1 exactly: the full four-dimension dependency set of the
/// Purchasing process.
pub fn purchasing_dependencies() -> DependencySet {
    let mut ds = DependencySet::new("Purchasing");
    for a in ACTIVITIES {
        ds.add_activity(a);
    }
    for s in SERVICE_NODES {
        ds.add_service(s);
    }
    ds.add_domain("if_au", vec!["T".into(), "F".into()]);

    // Data dependencies (9).
    for (f, t) in [
        ("recClient_po", "invCredit_po"),
        ("recCredit_au", "if_au"),
        ("recClient_po", "invPurchase_po"),
        ("recClient_po", "invShip_po"),
        ("recClient_po", "invProduction_po"),
        ("recShip_si", "invPurchase_si"),
        ("recShip_ss", "invProduction_ss"),
        ("set_oi", "replyClient_oi"),
        ("recPurchase_oi", "replyClient_oi"),
    ] {
        ds.push(Dependency::data(f, t));
    }

    // Control dependencies (10): 8 on the T branch, 1 on the F branch, and
    // the unconditional if_au → replyClient_oi entry of Table 1.
    for t in [
        "invPurchase_po",
        "invPurchase_si",
        "recPurchase_oi",
        "invShip_po",
        "recShip_si",
        "recShip_ss",
        "invProduction_po",
        "invProduction_ss",
    ] {
        ds.push(Dependency::control("if_au", t, "T"));
    }
    ds.push(Dependency::control("if_au", "set_oi", "F"));
    ds.push(Dependency::control_unconditional("if_au", "replyClient_oi"));

    // Cooperation dependencies (6): the invoice goes back to the client
    // only after ShipSubprocess and ProductionSubprocess finish.
    for f in [
        "recPurchase_oi",
        "invShip_po",
        "recShip_si",
        "recShip_ss",
        "invProduction_po",
        "invProduction_ss",
    ] {
        ds.push(Dependency::cooperation(f, "replyClient_oi"));
    }

    // Service dependencies (15).
    for (f, t) in [
        ("invCredit_po", "Credit"),
        ("Credit", "Credit_d"),
        ("Credit_d", "recCredit_au"),
        ("invPurchase_po", "Purchase_1"),
        ("invPurchase_si", "Purchase_2"),
        ("Purchase_d", "recPurchase_oi"),
        ("Purchase_1", "Purchase_d"),
        ("Purchase_2", "Purchase_d"),
        ("Purchase_1", "Purchase_2"),
        ("invShip_po", "Ship"),
        ("Ship", "Ship_d"),
        ("Ship_d", "recShip_si"),
        ("Ship_d", "recShip_ss"),
        ("invProduction_po", "Production_1"),
        ("invProduction_ss", "Production_2"),
    ] {
        ds.push(Dependency::service(f, t));
    }

    ds
}

/// The four WSCL conversations of the Purchasing process's partner
/// services, with their activity bindings. Together with PDG extraction
/// over [`purchasing_process`] and the analyst-supplied cooperation
/// dependencies, these regenerate Table 1 from first principles (see
/// [`purchasing_dependencies_extracted`]).
pub fn purchasing_conversations() -> Vec<(Conversation, ServiceBinding)> {
    vec![
        (
            Conversation::new("Credit")
                .receive("auth", "AuthRequest")
                .send("result", "AuthResult")
                .transition("auth", "result"),
            ServiceBinding::new()
                .invoke("auth", "invCredit_po")
                .receive("result", "recCredit_au"),
        ),
        (
            // The state-aware service of §2: "It requires a sequential
            // invocation at its two ports so that it does not receive a
            // shipping invoice without receiving the corresponding purchase
            // order information."
            Conversation::new("Purchase")
                .receive("port1", "PurchaseOrder")
                .receive("port2", "ShippingInvoice")
                .send("callback", "OrderInvoice")
                .transition("port1", "port2")
                .transition("port1", "callback")
                .transition("port2", "callback"),
            ServiceBinding::new()
                .invoke("port1", "invPurchase_po")
                .invoke("port2", "invPurchase_si")
                .receive("callback", "recPurchase_oi"),
        ),
        (
            Conversation::new("Ship")
                .receive("port", "PurchaseOrder")
                .send("si", "ShippingInvoice")
                .send("ss", "ShippingSchedule")
                .transition("port", "si")
                .transition("port", "ss"),
            ServiceBinding::new()
                .invoke("port", "invShip_po")
                .receive("si", "recShip_si")
                .receive("ss", "recShip_ss"),
        ),
        (
            Conversation::new("Production")
                .receive("port1", "PurchaseOrder")
                .receive("port2", "ShippingSchedule"),
            ServiceBinding::new()
                .invoke("port1", "invProduction_po")
                .invoke("port2", "invProduction_ss"),
        ),
    ]
}

/// The analyst-supplied cooperation dependencies (§3.3: "the invoice
/// should be sent back to the client after both ShipSubprocess and
/// ProductionSubprocess finish").
pub fn purchasing_cooperation() -> Vec<Dependency> {
    [
        "recPurchase_oi",
        "invShip_po",
        "recShip_si",
        "recShip_ss",
        "invProduction_po",
        "invProduction_ss",
    ]
    .iter()
    .map(|f| Dependency::cooperation(f, "replyClient_oi"))
    .collect()
}

/// Regenerates the Purchasing dependency set *from first principles*:
/// data + control via PDG extraction over the Figure-2 implementation,
/// service via the WSCL conversations, cooperation from the analyst list.
///
/// The result matches [`purchasing_dependencies`] (Table 1) except for one
/// entry: Table 1's unconditional `if_au → replyClient_oi`, which is not a
/// true control dependency (`replyClient_oi` post-dominates the branch —
/// the paper's own §3.1 makes this point about Figure 4's `a7`) and is
/// therefore not extracted.
pub fn purchasing_dependencies_extracted() -> DependencySet {
    let process = purchasing_process();
    let mut ds = dscweaver_pdg::extract(
        &process,
        dscweaver_pdg::ExtractOptions {
            data: true,
            control: true,
            services_from_decls: false,
        },
    );
    for (conv, binding) in purchasing_conversations() {
        let (deps, nodes) =
            derive_service_dependencies(&conv, &binding).expect("built-in WSCL must be valid");
        for n in nodes {
            ds.add_service(n);
        }
        for d in deps {
            ds.push(d);
        }
    }
    for d in purchasing_cooperation() {
        ds.push(d);
    }
    ds
}

/// The six bridging constraints Figure 8 draws in bold, as
/// `(from, to)` activity pairs.
pub const EXPECTED_BRIDGES: [(&str, &str); 6] = [
    ("invCredit_po", "recCredit_au"),
    ("invPurchase_po", "invPurchase_si"),
    ("invPurchase_po", "recPurchase_oi"),
    ("invPurchase_si", "recPurchase_oi"),
    ("invShip_po", "recShip_si"),
    ("invShip_po", "recShip_ss"),
];

/// The 17 constraints of the paper's Figure 9 (minimal set), as
/// `(from, to, condition-value)` activity triples.
pub const EXPECTED_MINIMAL: [(&str, &str, Option<&str>); 17] = [
    // data (6)
    ("recClient_po", "invCredit_po", None),
    ("recCredit_au", "if_au", None),
    ("recShip_si", "invPurchase_si", None),
    ("recShip_ss", "invProduction_ss", None),
    ("set_oi", "replyClient_oi", None),
    ("recPurchase_oi", "replyClient_oi", None),
    // control (4)
    ("if_au", "invPurchase_po", Some("T")),
    ("if_au", "invShip_po", Some("T")),
    ("if_au", "invProduction_po", Some("T")),
    ("if_au", "set_oi", Some("F")),
    // cooperation (2)
    ("invProduction_po", "replyClient_oi", None),
    ("invProduction_ss", "replyClient_oi", None),
    // translated service (5)
    ("invCredit_po", "recCredit_au", None),
    ("invPurchase_po", "invPurchase_si", None),
    ("invPurchase_si", "recPurchase_oi", None),
    ("invShip_po", "recShip_si", None),
    ("invShip_po", "recShip_ss", None),
];

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_core::Weaver;

    #[test]
    fn table1_counts_match_paper() {
        let ds = purchasing_dependencies();
        let counts = ds.counts();
        assert_eq!(counts["data"], 9);
        assert_eq!(counts["control"], 10);
        assert_eq!(counts["cooperative"], 6);
        assert_eq!(counts["service"], 15);
        assert_eq!(ds.deps.len(), 40);
        assert_eq!(ds.activities.len(), 14);
        assert_eq!(ds.services.len(), 9);
    }

    /// The full-circle check: extraction from the Figure-2 implementation
    /// plus WSCL plus the analyst's cooperation list regenerates Table 1
    /// (minus its one non-extractable unconditional control entry).
    #[test]
    fn extraction_regenerates_table1() {
        let extracted = purchasing_dependencies_extracted();
        let canonical = purchasing_dependencies();
        let to_set = |ds: &DependencySet| -> std::collections::BTreeSet<String> {
            ds.deps.iter().map(|d| d.to_string()).collect()
        };
        let ext = to_set(&extracted);
        let canon = to_set(&canonical);
        let missing: Vec<&String> = canon.difference(&ext).collect();
        assert_eq!(
            missing,
            vec!["if_au -> replyClient_oi"],
            "only Table 1's analyst-added unconditional entry is not extracted"
        );
        assert!(ext.is_subset(&canon), "no spurious extractions: {:?}",
            ext.difference(&canon).collect::<Vec<_>>());
        assert_eq!(extracted.services, canonical.services);
        assert_eq!(extracted.domains["if_au"], vec!["F", "T"]);
    }

    #[test]
    fn process_parses_and_validates() {
        let p = purchasing_process();
        assert_eq!(p.activities().len(), 14);
        assert!(p.validate().is_empty());
        assert_eq!(p.root.links().len(), 2);
    }

    #[test]
    fn pipeline_reproduces_figure8_bridges() {
        let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
        let mut bridges: Vec<(String, String)> = out
            .translation
            .bridges
            .iter()
            .map(|r| {
                let acts = r.activities();
                (acts[0].to_string(), acts[1].to_string())
            })
            .collect();
        bridges.sort();
        let mut expected: Vec<(String, String)> = EXPECTED_BRIDGES
            .iter()
            .map(|&(f, t)| (f.to_string(), t.to_string()))
            .collect();
        expected.sort();
        assert_eq!(bridges, expected);
        assert_eq!(
            out.translation.dead_ends,
            vec!["Production_1", "Production_2"],
            "Production ports have no internal offspring (§4.3)"
        );
        // ASC = 9 data + 10 control + 6 coop + 6 bridges = 31.
        assert_eq!(out.asc.constraint_count(), 31);
    }

    #[test]
    fn pipeline_reproduces_table2_and_figure9() {
        let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
        assert_eq!(out.sc.constraint_count(), 40, "Table 1 total");
        assert_eq!(
            out.minimal.constraint_count(),
            17,
            "Figure 9 minimal set:\n{}",
            out.minimal.to_dscl()
        );
        assert_eq!(out.total_removed(), 23, "Table 2's headline number");

        // Exact edge set of Figure 9.
        let mut got: Vec<(String, String, Option<String>)> = out
            .minimal
            .happen_befores()
            .map(|r| match r {
                dscweaver_dscl::Relation::HappenBefore { from, to, cond, .. } => (
                    from.activity.clone(),
                    to.activity.clone(),
                    cond.as_ref().map(|c| c.value.clone()),
                ),
                _ => unreachable!(),
            })
            .collect();
        got.sort();
        let mut expected: Vec<(String, String, Option<String>)> = EXPECTED_MINIMAL
            .iter()
            .map(|&(f, t, c)| (f.to_string(), t.to_string(), c.map(String::from)))
            .collect();
        expected.sort();
        assert_eq!(got, expected);
    }
}
