//! # dscweaver-workloads
//!
//! Canonical processes from the paper (Purchasing §2, Deployment §3.2)
//! plus synthetic workload generators for the scaling and ablation
//! benchmarks.

#![warn(missing_docs)]

pub mod deployment;
pub mod eventlog;
pub mod evolve;
pub mod purchasing;
pub mod scenarios;
pub mod synth;

pub use deployment::{deployment_dependencies, deployment_process};
pub use eventlog::{
    base_sequence, event_log, monitor_fixture, monitor_scenario, EventLogParams, GeneratedLog,
    MonitorFixture, MonitorScenarioParams,
};
pub use evolve::{edit_burst, EditProfile};
pub use scenarios::{loan_dependencies, loan_process, quotes_dependencies, quotes_process, settlement_constraints};
pub use purchasing::{
    purchasing_conversations, purchasing_cooperation, purchasing_dependencies,
    purchasing_dependencies_extracted, purchasing_process,
};
pub use synth::{
    dense_conditional, disjoint_conditional, fork_join, layered, service_mesh,
    DenseConditionalParams, DisjointConditionalParams, LayeredParams,
};
