//! The paper's Figure 6: a **Deployment process** that installs middleware
//! and application packages after receiving a deployment configuration.
//!
//! The point of the example (§3.2): there is *neither a data nor a control
//! dependency* between `invDeploy_midConfig` and `invDeploy_appConfig`,
//! yet the application package must be installed after the middleware has
//! set up the directory structure (a servlet goes under Tomcat's
//! `$Tomcat/webapp`). Only a **cooperation dependency** captures this
//! implicit interaction.
//!
//! The module also carries the paper's other cooperation example:
//! overlapping lifetimes — `S(collectSurvey) → F(closeOrder)` — the survey
//! must *start* before order-closing *finishes*.

use dscweaver_core::{Dependency, DependencySet};
use dscweaver_dscl::StateRef;
use dscweaver_model::{parse_process, Process};

/// The Deployment process in the model DSL. Both invocations extract their
/// part of the configuration, so both read `config` — no def-use data
/// dependency orders them.
pub const DEPLOYMENT_DSL: &str = r#"
process Deployment {
  var config, midStatus, appStatus, order, survey;
  service Deploy { ports 1 async }

  sequence {
    receive recClient_Config from Client writes config;
    flow {
      sequence {
        invoke invDeploy_midConfig on Deploy port 1 reads config;
        receive recDeploy_midStatus from Deploy writes midStatus;
      }
      sequence {
        invoke invDeploy_appConfig on Deploy port 1 reads config;
        receive recDeploy_appStatus from Deploy writes appStatus;
      }
    }
    flow {
      assign closeOrder reads midStatus, appStatus writes order;
      assign collectSurvey writes survey;
    }
    reply replyClient_done to Client reads order;
  }
}
"#;

/// Parses the Deployment process.
pub fn deployment_process() -> Process {
    let p = parse_process(DEPLOYMENT_DSL).expect("built-in process must parse");
    debug_assert!(p.validate().is_empty(), "{:?}", p.validate());
    p
}

/// The analyst-supplied cooperation dependencies of the Deployment
/// process:
///
/// * `invDeploy_midConfig →_o invDeploy_appConfig` — the Figure 6 implicit
///   interaction (directory structure must exist first);
/// * `S(collectSurvey) →_o F(closeOrder)` — the fine-granularity
///   overlapping-lifetime constraint of §3.2.
pub fn deployment_cooperation() -> Vec<Dependency> {
    vec![
        Dependency::cooperation("invDeploy_midConfig", "invDeploy_appConfig"),
        Dependency::cooperation_states(
            StateRef::start("collectSurvey"),
            StateRef::finish("closeOrder"),
        ),
    ]
}

/// The full Deployment dependency set: PDG-extracted data/control +
/// declaration-implied service dependencies + the cooperation list.
pub fn deployment_dependencies() -> DependencySet {
    let process = deployment_process();
    let mut ds = dscweaver_pdg::extract(&process, dscweaver_pdg::ExtractOptions::default());
    for d in deployment_cooperation() {
        ds.push(d);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_core::Weaver;

    #[test]
    fn no_data_or_control_between_the_two_invokes() {
        let ds = deployment_dependencies();
        let ordered = ds.deps.iter().any(|d| {
            d.from.name == "invDeploy_midConfig"
                && d.to.name == "invDeploy_appConfig"
                && d.kind.dimension() != "cooperative"
        });
        assert!(
            !ordered,
            "the paper's point: only cooperation orders the installs"
        );
        assert!(ds.deps.iter().any(|d| {
            d.from.name == "invDeploy_midConfig"
                && d.to.name == "invDeploy_appConfig"
                && d.kind.dimension() == "cooperative"
        }));
    }

    #[test]
    fn pipeline_keeps_the_cooperation_constraint() {
        let out = Weaver::new().run(&deployment_dependencies()).unwrap();
        assert!(
            out.minimal
                .happen_befores()
                .any(|r| r.to_string() == "F(invDeploy_midConfig) -> S(invDeploy_appConfig)"),
            "nothing else implies the install order:\n{}",
            out.minimal.to_dscl()
        );
        // The overlapping-lifetime constraint survives too.
        assert!(out
            .minimal
            .happen_befores()
            .any(|r| r.to_string() == "S(collectSurvey) -> F(closeOrder)"));
    }

    #[test]
    fn overlap_constraint_uses_states() {
        let coop = deployment_cooperation();
        assert_eq!(
            coop[1].to_string(),
            "S(collectSurvey) ->o F(closeOrder)"
        );
    }
}
