//! Additional realistic scenarios beyond the paper's two running
//! examples, exercising the features the Purchasing process does not:
//! multi-valued branch domains, `Exclusive` runtime constraints (§4.2's
//! transactional cooperation), fine-granularity `HappenTogether` sugar,
//! and deeper service meshes.

use dscweaver_core::{Dependency, DependencySet};
use dscweaver_dscl::{Origin, Relation, StateRef};
use dscweaver_model::{parse_process, Process};

/// A loan-origination process with a **three-valued** decision:
/// `approve` / `review` / `reject`. Exercises multi-valued guard domains —
/// branch-completeness reasoning must require all *three* paths before
/// removing an unconditional constraint.
pub const LOAN_DSL: &str = r#"
process LoanOrigination {
  var app, score, decision, terms, letter;
  service Bureau   { ports 1 async }
  service Pricing  { ports 1 async }
  service Archive  { ports 1 async }

  sequence {
    receive recApp from Client writes app;
    invoke invBureau on Bureau port 1 reads app;
    receive recScore from Bureau writes score;
    switch if_decision reads score {
      case APPROVE {
        sequence {
          invoke invPricing on Pricing port 1 reads app;
          receive recTerms from Pricing writes terms;
          assign draftOffer reads terms writes letter;
        }
      }
      case REVIEW {
        assign queueManual reads app writes letter;
      }
      case REJECT {
        assign draftRejection writes letter;
      }
    }
    flow {
      reply replyClient to Client reads letter;
      invoke invArchive on Archive port 1 reads letter;
    }
  }
}
"#;

/// Parses the loan process.
pub fn loan_process() -> Process {
    let p = parse_process(LOAN_DSL).expect("built-in process must parse");
    debug_assert!(p.validate().is_empty(), "{:?}", p.validate());
    p
}

/// The loan process's full dependency set (extracted + one cooperation
/// rule: archive only after the reply went out, for audit ordering).
pub fn loan_dependencies() -> DependencySet {
    let mut ds = dscweaver_pdg::extract(&loan_process(), dscweaver_pdg::ExtractOptions::default());
    ds.push(Dependency::cooperation("replyClient", "invArchive"));
    ds
}

/// A quote-aggregation process **written naively as a sequence** — the
/// §1 pathology in its purest form: the three quote requests exchange no
/// data and carry no business ordering, yet the imperative implementation
/// serializes them. The dependency approach discovers the parallelism by
/// itself; the Ext-D bench measures the resulting makespan gap (~3× at
/// high service latency).
pub const QUOTES_DSL: &str = r#"
process QuoteAggregation {
  var req, qa, qb, qc, best;
  service CarrierA { ports 1 async }
  service CarrierB { ports 1 async }
  service CarrierC { ports 1 async }

  sequence {
    receive recReq from Client writes req;
    invoke invA on CarrierA port 1 reads req;
    receive recA from CarrierA writes qa;
    invoke invB on CarrierB port 1 reads req;
    receive recB from CarrierB writes qb;
    invoke invC on CarrierC port 1 reads req;
    receive recC from CarrierC writes qc;
    assign pickBest reads qa, qb, qc writes best;
    reply replyQuote to Client reads best;
  }
}
"#;

/// Parses the quote-aggregation process.
pub fn quotes_process() -> Process {
    let p = parse_process(QUOTES_DSL).expect("built-in process must parse");
    debug_assert!(p.validate().is_empty(), "{:?}", p.validate());
    p
}

/// The quote process's dependency set (pure extraction — there are no
/// cooperation constraints; that is the point).
pub fn quotes_dependencies() -> DependencySet {
    dscweaver_pdg::extract(&quotes_process(), dscweaver_pdg::ExtractOptions::default())
}

/// A month-end settlement process where two postings touch the same
/// ledger: they carry an **Exclusive** constraint (§4.2: "two concurrent
/// activities access shared data in a backend database ... must be
/// scheduled in a mutual exclusive way"), plus a HappenTogether pair —
/// the statements to the two counterparties must go out together.
pub fn settlement_constraints() -> dscweaver_dscl::ConstraintSet {
    let mut cs = dscweaver_dscl::ConstraintSet::new("Settlement");
    for a in [
        "recTrigger",
        "postFees",
        "postInterest",
        "reconcile",
        "stmtA",
        "stmtB",
        "close",
    ] {
        cs.add_activity(a);
    }
    let before = |f: &str, t: &str| {
        Relation::before(StateRef::finish(f), StateRef::start(t), Origin::Data)
    };
    cs.push(before("recTrigger", "postFees"));
    cs.push(before("recTrigger", "postInterest"));
    cs.push(before("postFees", "reconcile"));
    cs.push(before("postInterest", "reconcile"));
    cs.push(before("reconcile", "stmtA"));
    cs.push(before("reconcile", "stmtB"));
    cs.push(before("stmtA", "close"));
    cs.push(before("stmtB", "close"));
    // Shared-ledger postings must not run concurrently.
    cs.push(Relation::Exclusive {
        a: StateRef::run("postFees"),
        b: StateRef::run("postInterest"),
        origin: Origin::Cooperation,
    });
    // Statements go out together.
    cs.push(Relation::HappenTogether {
        a: StateRef::start("stmtA"),
        b: StateRef::start("stmtB"),
        cond: None,
        origin: Origin::Cooperation,
    });
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_core::{EquivalenceMode, ExecConditions, Weaver};
    use dscweaver_scheduler::{simulate, SimConfig};

    #[test]
    fn loan_three_valued_domain_extracted() {
        let ds = loan_dependencies();
        assert_eq!(
            ds.domains["if_decision"],
            vec!["APPROVE", "REJECT", "REVIEW"]
        );
        // Three control regions.
        let controls = ds.of_dimension("control");
        assert!(controls.len() >= 5, "{controls:?}");
    }

    #[test]
    fn loan_pipeline_and_execution_all_branches() {
        let ds = loan_dependencies();
        let out = Weaver::new().run(&ds).unwrap();
        assert!(out.minimal.validate().is_empty());
        // Petri validation enumerates all three branch values.
        let report = dscweaver_petri::validate_default(&out.minimal, &out.exec);
        assert!(report.ok(), "{report:#?}");
        assert_eq!(report.assignments_checked, 3);
        for branch in ["APPROVE", "REVIEW", "REJECT"] {
            let mut sim = SimConfig::default();
            sim.oracle.insert("if_decision".into(), branch.into());
            let s = simulate(&out.minimal, &out.exec, &sim);
            assert!(s.completed(), "{branch}: {:?}", s.stuck);
            assert!(s.trace.verify(&out.asc).is_empty(), "{branch}");
            assert!(s.trace.executed("replyClient"));
            assert_eq!(s.trace.executed("invPricing"), branch == "APPROVE");
        }
    }

    #[test]
    fn three_valued_branch_completeness() {
        // An unconditional edge if_decision → replyClient would only be
        // removable because all THREE case paths reach the reply.
        let mut ds = loan_dependencies();
        ds.push(Dependency::control_unconditional("if_decision", "replyClient"));
        let out = Weaver::new().run(&ds).unwrap();
        let kept = out
            .minimal
            .happen_befores()
            .any(|r| r.to_string() == "F(if_decision) -> S(replyClient)");
        assert!(!kept, "covered by APPROVE+REVIEW+REJECT paths");
        // With a fourth value declared in the domain, it must be kept.
        let mut ds4 = loan_dependencies();
        ds4.domains
            .get_mut("if_decision")
            .unwrap()
            .push("ESCALATE".into());
        ds4.push(Dependency::control_unconditional("if_decision", "replyClient"));
        let out4 = Weaver::new().run(&ds4).unwrap();
        let kept4 = out4
            .minimal
            .happen_befores()
            .any(|r| r.to_string() == "F(if_decision) -> S(replyClient)");
        assert!(kept4, "a fourth branch value may occur");
    }

    #[test]
    fn quotes_parallelize_under_dependencies() {
        let ds = quotes_dependencies();
        // No ordering among the three invoke/receive pairs.
        let out = Weaver::new().run(&ds).unwrap();
        let mut sim = SimConfig::default();
        for r in ["recA", "recB", "recC"] {
            sim.durations.set(r, 50);
        }
        let opt = simulate(&out.minimal, &out.exec, &sim);
        assert!(opt.completed());
        let (_, base) = {
            let cs = dscweaver_scheduler::structural_constraints(&quotes_process()).unwrap();
            let exec = ExecConditions::derive(&cs);
            (cs.clone(), simulate(&cs, &exec, &sim))
        };
        assert!(
            opt.trace.makespan() * 2 < base.trace.makespan(),
            "optimized {} vs sequential {}",
            opt.trace.makespan(),
            base.trace.makespan()
        );
        assert_eq!(opt.trace.max_concurrency(), 3);
        assert_eq!(base.trace.max_concurrency(), 1);
        assert!(opt.trace.verify(&out.asc).is_empty());
    }

    #[test]
    fn settlement_exclusive_and_barrier() {
        let mut cs = settlement_constraints();
        cs.desugar_happen_together();
        assert!(cs.validate().is_empty(), "{:?}", cs.validate());
        let exec = ExecConditions::derive(&cs);
        let res = dscweaver_core::minimize(
            &cs,
            &exec,
            EquivalenceMode::ExecutionAware,
            &dscweaver_core::EdgeOrder::default(),
        )
        .unwrap();
        let mut sim = SimConfig::default();
        sim.durations.set("postFees", 5);
        sim.durations.set("postInterest", 5);
        let s = simulate(&res.minimal, &exec, &sim);
        assert!(s.completed(), "{:?}", s.stuck);
        // Exclusive serialization observed.
        assert!(s.trace.verify_exclusives(&cs).is_empty());
        let fees = s.trace.occurrence(&StateRef::start("postFees")).unwrap().0;
        let interest = s
            .trace
            .occurrence(&StateRef::start("postInterest"))
            .unwrap()
            .0;
        assert_ne!(fees, interest, "ledger postings serialized");
        // Barrier: the statements start together.
        let a = s.trace.occurrence(&StateRef::start("stmtA")).unwrap().0;
        let b = s.trace.occurrence(&StateRef::start("stmtB")).unwrap().0;
        assert_eq!(a, b, "HappenTogether barrier");
        // And the full original constraints hold.
        assert!(s.trace.verify(&cs).is_empty());
    }
}
