//! Deterministic multi-instance event-log generation for the streaming
//! conformance monitor.
//!
//! Three pieces:
//!
//! * [`monitor_scenario`] — a parameterized guard-free process family
//!   (layered grid with column chains and redundant forward edges, plus
//!   standalone Exclusive pairs and WSCL conversations over grid columns)
//!   whose every activity executes, so a single simulated trace yields a
//!   complete per-instance event template;
//! * [`base_sequence`] — projects one conformant [`Trace`] to the
//!   per-instance `(activity, phase)` template the generator replays;
//! * [`event_log`] — interleaves `instances` copies of the template into
//!   one stream (per-round shuffled instance order, so the whole fleet is
//!   live from the first round to the last) and *injects* violations at
//!   configurable per-instance rates: ordering swaps (a HappenBefore
//!   consumer moved before its producer), exclusive co-fires (the later
//!   partner's start moved inside the earlier partner's run interval) and
//!   conversation inversions (`y`'s occurrence moved before `x`'s).
//!
//! Everything is seeded through `dscweaver-prng`: same parameters, same
//! stream, bit for bit. Injections preserve per-activity life-cycle order
//! (a finish dragged past its own start pulls the start along), so
//! generated streams always satisfy the monitor's well-formedness
//! precondition; an injection may violate *more* than it targets (moving
//! an event disturbs every constraint it participates in), which is fine —
//! the oracle and the monitor agree on the superset, and the injection
//! records only guarantee recall of the targeted kind.

use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ConstraintSet, Origin, Relation, StateRef};
use dscweaver_graph::FxHashMap;
use dscweaver_prng::Rng;
use dscweaver_scheduler::{
    simulate, EventKind, InstanceId, MonitorEvent, MonitorPhase, MonitorProgram, SimConfig, Trace,
};
use dscweaver_wscl::{Conversation, ServiceBinding};

/// Shape of the monitor workload process.
#[derive(Clone, Copy, Debug)]
pub struct MonitorScenarioParams {
    /// Grid columns.
    pub width: usize,
    /// Grid layers (column chains run `src → n0_c → … → sink`).
    pub depth: usize,
    /// Extra random forward edges across the grid.
    pub redundant: usize,
    /// Standalone Exclusive activity pairs hanging off `src`.
    pub exclusive_pairs: usize,
    /// WSCL conversations, one per leading grid column (each needs
    /// `depth >= 3`: two invokes then a callback receive down a column).
    pub conversations: usize,
    /// Seed for the redundant-edge layout.
    pub seed: u64,
}

impl Default for MonitorScenarioParams {
    fn default() -> Self {
        MonitorScenarioParams {
            width: 3,
            depth: 4,
            redundant: 6,
            exclusive_pairs: 1,
            conversations: 1,
            seed: 1,
        }
    }
}

/// Builds the scenario's constraint set and bound conversations. The
/// process is guard-free and acyclic: every activity executes, and the
/// engine's Exclusive deferral serializes the exclusive pairs, so the
/// simulated base trace is conformant by construction.
pub fn monitor_scenario(
    p: &MonitorScenarioParams,
) -> (ConstraintSet, Vec<(Conversation, ServiceBinding)>) {
    let width = p.width.max(1);
    let depth = p.depth.max(1);
    let mut cs = ConstraintSet::new("monitor_scenario");
    let grid = |l: usize, w: usize| format!("n{l}_{w}");
    cs.add_activity("src");
    cs.add_activity("sink");
    for l in 0..depth {
        for w in 0..width {
            cs.add_activity(grid(l, w));
        }
    }
    let before = |cs: &mut ConstraintSet, from: String, to: String| {
        cs.push(Relation::before(
            StateRef::finish(from),
            StateRef::start(to),
            Origin::Data,
        ));
    };
    for w in 0..width {
        before(&mut cs, "src".into(), grid(0, w));
        for l in 1..depth {
            before(&mut cs, grid(l - 1, w), grid(l, w));
        }
        before(&mut cs, grid(depth - 1, w), "sink".into());
    }
    let mut rng = Rng::seed_from_u64(p.seed);
    if depth >= 2 {
        for _ in 0..p.redundant {
            let l1 = rng.random_range(depth - 1);
            let l2 = l1 + 1 + rng.random_range(depth - 1 - l1);
            let w1 = rng.random_range(width);
            let w2 = rng.random_range(width);
            before(&mut cs, grid(l1, w1), grid(l2, w2));
        }
    }
    for i in 0..p.exclusive_pairs {
        let (a, b) = (format!("ex{i}a"), format!("ex{i}b"));
        for e in [&a, &b] {
            cs.add_activity(e.clone());
            before(&mut cs, "src".into(), e.clone());
            before(&mut cs, e.clone(), "sink".into());
        }
        cs.push(Relation::Exclusive {
            a: StateRef::run(a),
            b: StateRef::run(b),
            origin: Origin::Cooperation,
        });
    }
    let mut conversations = Vec::new();
    if depth >= 3 {
        for c in 0..p.conversations.min(width) {
            conversations.push((
                Conversation::new(format!("Conv{c}"))
                    .receive("port1", "Request")
                    .receive("port2", "Confirm")
                    .send("callback", "Result")
                    .transition("port1", "port2")
                    .transition("port2", "callback"),
                ServiceBinding::new()
                    .invoke("port1", &grid(0, c))
                    .invoke("port2", &grid(1, c))
                    .receive("callback", &grid(2, c)),
            ));
        }
    }
    (cs, conversations)
}

/// A compiled, simulated monitor workload: everything the benchmarks,
/// tests and the `dscw monitor` replay need in one place.
pub struct MonitorFixture {
    /// The scenario's constraint set.
    pub cs: ConstraintSet,
    /// Bound conversations.
    pub conversations: Vec<(Conversation, ServiceBinding)>,
    /// The compiled monitor program.
    pub program: MonitorProgram,
    /// The conformant per-instance event template.
    pub base: Vec<(u16, MonitorPhase)>,
}

/// Builds [`monitor_scenario`], simulates it once and compiles the
/// monitor program plus the base event template.
pub fn monitor_fixture(p: &MonitorScenarioParams) -> MonitorFixture {
    let (cs, conversations) = monitor_scenario(p);
    let exec = ExecConditions::derive(&cs);
    let schedule = simulate(&cs, &exec, &SimConfig::default());
    assert!(schedule.completed(), "scenario must execute to completion");
    let program =
        MonitorProgram::compile(&cs, &conversations).expect("scenario fits monitor limits");
    let base = base_sequence(&program, &schedule.trace).expect("conformant skip-free trace");
    MonitorFixture {
        cs,
        conversations,
        program,
        base,
    }
}

/// Projects a trace's commit order onto the program's activity ids as a
/// per-instance event template. Skip events for activities *outside* the
/// program are dropped (dead paths projected away); a skipped program
/// activity, an unknown executed activity or an incomplete trace is an
/// error.
pub fn base_sequence(
    program: &MonitorProgram,
    trace: &Trace,
) -> Result<Vec<(u16, MonitorPhase)>, String> {
    let mut out = Vec::with_capacity(program.events_per_instance() as usize);
    for e in &trace.events {
        let phase = match e.kind {
            EventKind::Start => MonitorPhase::Start,
            EventKind::Finish => MonitorPhase::Finish,
            EventKind::Skip => {
                if program.act_id(&e.activity).is_some() {
                    return Err(format!(
                        "activity '{}' was skipped; monitor streams must be skip-free",
                        e.activity
                    ));
                }
                continue;
            }
        };
        let Some(act) = program.act_id(&e.activity) else {
            return Err(format!(
                "executed activity '{}' is not in the monitor program",
                e.activity
            ));
        };
        out.push((act, phase));
    }
    if out.len() != program.events_per_instance() as usize {
        return Err(format!(
            "incomplete base sequence: {} events, expected {}",
            out.len(),
            program.events_per_instance()
        ));
    }
    Ok(out)
}

/// Event-log generation knobs. Rates are per-instance probabilities of
/// receiving one injected violation of that kind (independent draws, so
/// one instance can carry several kinds).
#[derive(Clone, Copy, Debug)]
pub struct EventLogParams {
    /// Fleet size.
    pub instances: u32,
    /// First instance id (cohort offset — lets callers stream several
    /// disjoint fleets through one monitor to exercise slab recycling).
    pub first_instance: u32,
    /// PRNG seed (injection choices and interleaving order).
    pub seed: u64,
    /// Ordering-swap injection rate.
    pub ordering_rate: f64,
    /// Exclusive co-fire injection rate.
    pub exclusive_rate: f64,
    /// Conversation-inversion injection rate.
    pub conversation_rate: f64,
}

impl Default for EventLogParams {
    fn default() -> Self {
        EventLogParams {
            instances: 1000,
            first_instance: 0,
            seed: 42,
            ordering_rate: 0.0,
            exclusive_rate: 0.0,
            conversation_rate: 0.0,
        }
    }
}

/// A generated stream plus the injection ground truth.
pub struct GeneratedLog {
    /// The interleaved event stream.
    pub events: Vec<MonitorEvent>,
    /// Instances that received an ordering swap.
    pub injected_ordering: Vec<InstanceId>,
    /// Instances that received an exclusive co-fire.
    pub injected_exclusive: Vec<InstanceId>,
    /// Instances that received a conversation inversion.
    pub injected_conversation: Vec<InstanceId>,
}

impl GeneratedLog {
    /// Total injections across kinds.
    pub fn injected_total(&self) -> usize {
        self.injected_ordering.len()
            + self.injected_exclusive.len()
            + self.injected_conversation.len()
    }
}

/// Position of a point in an instance sequence.
fn pos_of(seq: &[(u16, MonitorPhase)], program: &MonitorProgram, point: u32) -> Option<usize> {
    seq.iter()
        .position(|&(a, ph)| program.point_of(a, ph) == point)
}

/// Moves the event at `from` to position `to` (`to < from`), dragging the
/// activity's start along when moving its finish would cross it — the
/// stream stays life-cycle well-formed per activity.
fn move_event_before(seq: &mut Vec<(u16, MonitorPhase)>, from: usize, to: usize) {
    debug_assert!(to < from);
    let (act, phase) = seq.remove(from);
    if phase == MonitorPhase::Finish {
        if let Some(ps) = seq
            .iter()
            .position(|&(a, ph)| a == act && ph == MonitorPhase::Start)
        {
            if ps >= to {
                seq.remove(ps);
                seq.insert(to, (act, MonitorPhase::Start));
                seq.insert(to + 1, (act, MonitorPhase::Finish));
                return;
            }
        }
    }
    seq.insert(to, (act, phase));
}

/// Generates one deterministic interleaved stream. All `instances`
/// instances are live for the whole stream (round-based emission: round
/// `r` carries every instance's `r`-th event, instance order reshuffled
/// per round), so peak concurrency equals the fleet size and every
/// instance retires in the final round.
pub fn event_log(
    program: &MonitorProgram,
    base: &[(u16, MonitorPhase)],
    params: &EventLogParams,
) -> GeneratedLog {
    let epi = base.len();
    assert_eq!(
        epi as u32,
        program.events_per_instance(),
        "base template must cover every activity's start and finish"
    );
    let mut rng = Rng::seed_from_u64(params.seed);
    let ordering_pairs = program.ordering_pairs();
    let exclusive_pairs = program.exclusive_pairs();
    let conversation_pairs = program.conversation_pairs();

    let mut special: FxHashMap<InstanceId, Vec<(u16, MonitorPhase)>> = FxHashMap::default();
    let mut injected_ordering = Vec::new();
    let mut injected_exclusive = Vec::new();
    let mut injected_conversation = Vec::new();

    for i in 0..params.instances {
        let id = params.first_instance + i;
        // Fixed draw sequence per instance keeps the stream deterministic
        // for any pair-table contents.
        let hit_ord = rng.random_bool(params.ordering_rate);
        let hit_exc = rng.random_bool(params.exclusive_rate);
        let hit_conv = rng.random_bool(params.conversation_rate);
        if !(hit_ord || hit_exc || hit_conv) {
            continue;
        }
        let mut seq = base.to_vec();
        if hit_ord && !ordering_pairs.is_empty() {
            let (producer, consumer) = ordering_pairs[rng.random_range(ordering_pairs.len())];
            let (pp, pc) = (
                pos_of(&seq, program, producer).expect("producer in template"),
                pos_of(&seq, program, consumer).expect("consumer in template"),
            );
            if pp < pc {
                move_event_before(&mut seq, pc, pp);
                injected_ordering.push(id);
            }
        }
        if hit_exc && !exclusive_pairs.is_empty() {
            let (a, b) = exclusive_pairs[rng.random_range(exclusive_pairs.len())];
            let sa = pos_of(&seq, program, program.point_of(a, MonitorPhase::Start))
                .expect("member start in template");
            let sb = pos_of(&seq, program, program.point_of(b, MonitorPhase::Start))
                .expect("member start in template");
            let (first, second) = (sa.min(sb), sa.max(sb));
            if first + 1 < second {
                move_event_before(&mut seq, second, first + 1);
            }
            injected_exclusive.push(id);
        }
        if hit_conv && !conversation_pairs.is_empty() {
            let (px, py) = conversation_pairs[rng.random_range(conversation_pairs.len())];
            let (x, y) = (
                pos_of(&seq, program, px).expect("x occurrence in template"),
                pos_of(&seq, program, py).expect("y occurrence in template"),
            );
            if x < y {
                move_event_before(&mut seq, y, x);
                injected_conversation.push(id);
            }
        }
        special.insert(id, seq);
    }

    let mut ids: Vec<InstanceId> = (0..params.instances)
        .map(|i| params.first_instance + i)
        .collect();
    let mut events = Vec::with_capacity(epi * params.instances as usize);
    for round in 0..epi {
        rng.shuffle(&mut ids);
        for &id in &ids {
            let (act, phase) = special.get(&id).map_or(base[round], |s| s[round]);
            events.push(MonitorEvent {
                instance: id,
                act,
                phase,
            });
        }
    }
    GeneratedLog {
        events,
        injected_ordering,
        injected_exclusive,
        injected_conversation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_complete() {
        let p = MonitorScenarioParams::default();
        let f1 = monitor_fixture(&p);
        let f2 = monitor_fixture(&p);
        assert_eq!(f1.base, f2.base);
        // 2 + width*depth grid + 2 per exclusive pair activities.
        assert_eq!(f1.program.n_activities(), 2 + 3 * 4 + 2);
        assert_eq!(f1.base.len() as u32, f1.program.events_per_instance());
        assert_eq!(f1.conversations.len(), 1);
        assert!(!f1.program.ordering_pairs().is_empty());
        assert_eq!(f1.program.exclusive_pairs().len(), 1);
        assert_eq!(f1.program.conversation_pairs().len(), 2);
    }

    #[test]
    fn clean_log_interleaves_whole_fleet() {
        let f = monitor_fixture(&MonitorScenarioParams::default());
        let log = event_log(
            &f.program,
            &f.base,
            &EventLogParams {
                instances: 50,
                ..EventLogParams::default()
            },
        );
        assert_eq!(log.events.len(), 50 * f.base.len());
        assert_eq!(log.injected_total(), 0);
        // Round structure: each consecutive block of 50 events carries
        // every instance exactly once.
        for round in log.events.chunks(50) {
            let mut ids: Vec<u32> = round.iter().map(|e| e.instance).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..50).collect::<Vec<_>>());
        }
        // Same params, same stream.
        let log2 = event_log(
            &f.program,
            &f.base,
            &EventLogParams {
                instances: 50,
                ..EventLogParams::default()
            },
        );
        assert_eq!(log.events, log2.events);
    }

    #[test]
    fn injections_are_recorded_and_life_cycle_well_formed() {
        let f = monitor_fixture(&MonitorScenarioParams::default());
        let log = event_log(
            &f.program,
            &f.base,
            &EventLogParams {
                instances: 200,
                seed: 7,
                ordering_rate: 0.3,
                exclusive_rate: 0.3,
                conversation_rate: 0.3,
                ..EventLogParams::default()
            },
        );
        assert!(!log.injected_ordering.is_empty());
        assert!(!log.injected_exclusive.is_empty());
        assert!(!log.injected_conversation.is_empty());
        // Every instance's stream keeps start-before-finish per activity.
        let mut per: FxHashMap<u32, Vec<(u16, MonitorPhase)>> = FxHashMap::default();
        for e in &log.events {
            per.entry(e.instance).or_default().push((e.act, e.phase));
        }
        for (id, seq) in per {
            assert_eq!(seq.len(), f.base.len());
            for act in 0..f.program.n_activities() as u16 {
                let s = seq
                    .iter()
                    .position(|&(a, p)| a == act && p == MonitorPhase::Start)
                    .unwrap();
                let fin = seq
                    .iter()
                    .position(|&(a, p)| a == act && p == MonitorPhase::Finish)
                    .unwrap();
                assert!(s < fin, "instance {id} act {act}: start after finish");
            }
        }
    }
}
