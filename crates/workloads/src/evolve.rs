//! Edit-burst workloads for the incremental re-weave experiments: apply
//! a burst of small random edits to a dependency set, the way an analyst
//! evolves a live process specification.
//!
//! Two profiles:
//!
//! * [`EditProfile::LevelStable`] — inserts and deletes *shortcut*
//!   cooperation dependencies (a direct `x → z` alongside an existing
//!   `x → y → z` data chain). Such edits provably never change a node's
//!   longest-path-to-sink level, so they stay on the session's delta
//!   path — this is the profile the `evolve` benchmark suite times.
//! * [`EditProfile::Mixed`] — adds guard flips (exercising the
//!   execution-condition machinery) and unconstrained random inserts,
//!   which may perturb levels or create cycles — exercising the
//!   fallback and error paths. Used by the equivalence property tests.
//!
//! All edits are deterministic in the supplied RNG.

use dscweaver_core::{Dependency, DependencyKind, DependencySet};
use dscweaver_prng::Rng;

/// Which kinds of edits a burst may contain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditProfile {
    /// Shortcut inserts/deletes only — never perturbs topo levels.
    LevelStable,
    /// Shortcuts plus guard flips and unconstrained inserts.
    Mixed,
}

/// Applies a burst of `size` random edits to `ds` in place, returning a
/// human-readable description of each applied edit. Deterministic in
/// `rng`; an edit kind that finds no applicable site falls back to a
/// shortcut insert so a burst always applies `size` edits when the set
/// has any data chain at all.
pub fn edit_burst(
    ds: &mut DependencySet,
    rng: &mut Rng,
    size: usize,
    profile: EditProfile,
) -> Vec<String> {
    let mut log = Vec::new();
    for _ in 0..size {
        let op = match profile {
            EditProfile::LevelStable => rng.random_range(2),
            EditProfile::Mixed => rng.random_range(4),
        };
        let applied = match op {
            0 => insert_shortcut(ds, rng),
            1 => delete_shortcut(ds, rng),
            2 => flip_guard(ds, rng),
            _ => insert_random(ds, rng),
        };
        match applied.or_else(|| insert_shortcut(ds, rng)) {
            Some(desc) => log.push(desc),
            None => break, // no data chains left to edit
        }
    }
    log
}

/// Ordered `(x, y)` pairs of the data dependencies — the chain material
/// every level-stable edit is built over. Data edges are never deleted
/// by any profile, so a shortcut's covering chain persists across bursts.
fn data_pairs(ds: &DependencySet) -> Vec<(String, String)> {
    ds.deps
        .iter()
        .filter(|d| d.kind.dimension() == "data")
        .map(|d| (d.from.name.clone(), d.to.name.clone()))
        .collect()
}

fn has_coop(ds: &DependencySet, x: &str, z: &str) -> bool {
    ds.deps.iter().any(|d| {
        d.kind.dimension() == "cooperative" && d.from.name == x && d.to.name == z
    })
}

/// Inserts a cooperation shortcut `x → z` along an existing data chain
/// `x → y → z`. The chain gives `F(x)` a path of length ≥ 3 to `S(z)` in
/// the synchronization graph, so the direct edge (length 1) can never be
/// a level maximizer — levels are untouched.
fn insert_shortcut(ds: &mut DependencySet, rng: &mut Rng) -> Option<String> {
    let pairs = data_pairs(ds);
    for _ in 0..50 {
        let (x, y) = rng.choose(&pairs)?.clone();
        let nexts: Vec<&(String, String)> = pairs.iter().filter(|(f, _)| *f == y).collect();
        let Some((_, z)) = rng.choose(&nexts) else {
            continue;
        };
        if x == *z || has_coop(ds, &x, z) {
            continue;
        }
        let z = z.clone();
        ds.push(Dependency::cooperation(&x, &z));
        return Some(format!("+ coop {x} -> {z}"));
    }
    None
}

/// Deletes a cooperation dependency that is a shortcut over a live data
/// chain — the symmetric level-stable edit (the chain keeps every level
/// pinned after the direct edge goes away).
fn delete_shortcut(ds: &mut DependencySet, rng: &mut Rng) -> Option<String> {
    let pairs = data_pairs(ds);
    let covered = |x: &str, z: &str| {
        pairs
            .iter()
            .filter(|(f, _)| f == x)
            .any(|(_, y)| pairs.iter().any(|(f2, t2)| f2 == y && t2 == z))
    };
    let victims: Vec<usize> = ds
        .deps
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            d.kind.dimension() == "cooperative" && covered(&d.from.name, &d.to.name)
        })
        .map(|(i, _)| i)
        .collect();
    let &i = rng.choose(&victims)?;
    let d = ds.deps.remove(i);
    Some(format!("- coop {} -> {}", d.from.name, d.to.name))
}

/// Flips a control dependency's guard value to another element of its
/// variable's domain. Edge structure (and thus levels) unchanged; guard
/// annotations and execution conditions change.
fn flip_guard(ds: &mut DependencySet, rng: &mut Rng) -> Option<String> {
    let sites: Vec<usize> = ds
        .deps
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            matches!(&d.kind, DependencyKind::Control { value: Some(_) })
                && ds.domains.get(&d.from.name).is_some_and(|dom| dom.len() > 1)
        })
        .map(|(i, _)| i)
        .collect();
    let &i = rng.choose(&sites)?;
    let var = ds.deps[i].from.name.clone();
    let dom = ds.domains[&var].clone();
    let DependencyKind::Control { value: Some(old) } = ds.deps[i].kind.clone() else {
        unreachable!("site filter");
    };
    let others: Vec<&String> = dom.iter().filter(|v| **v != old).collect();
    let new = (*rng.choose(&others)?).clone();
    let to = ds.deps[i].to.name.clone();
    ds.deps[i].kind = DependencyKind::Control {
        value: Some(new.clone()),
    };
    Some(format!("~ guard {var} -> {to}: {old} => {new}"))
}

/// Inserts a cooperation dependency between two arbitrary distinct
/// activities — may perturb levels or even introduce a cycle, which is
/// exactly what the fallback/error property tests want to provoke.
fn insert_random(ds: &mut DependencySet, rng: &mut Rng) -> Option<String> {
    let acts: Vec<&String> = ds.activities.iter().collect();
    if acts.len() < 2 {
        return None;
    }
    for _ in 0..20 {
        let a = *rng.choose(&acts)?;
        let b = *rng.choose(&acts)?;
        if a == b || has_coop(ds, a, b) {
            continue;
        }
        let (a, b) = (a.clone(), b.clone());
        ds.push(Dependency::cooperation(&a, &b));
        return Some(format!("+ coop(random) {a} -> {b}"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{layered, LayeredParams};

    #[test]
    fn bursts_are_deterministic_and_sized() {
        let params = LayeredParams::default();
        let mk = || {
            let mut ds = layered(&params);
            let mut rng = Rng::seed_from_u64(7);
            let log = edit_burst(&mut ds, &mut rng, 6, EditProfile::LevelStable);
            (ds, log)
        };
        let (ds1, log1) = mk();
        let (ds2, log2) = mk();
        assert_eq!(log1.len(), 6);
        assert_eq!(log1, log2);
        assert_eq!(ds1.deps.len(), ds2.deps.len());
    }

    #[test]
    fn level_stable_bursts_stay_on_the_delta_path() {
        let mut ds = layered(&LayeredParams::default());
        let mut session = dscweaver_core::Weaver::new().session();
        session.weave(&ds).unwrap();
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..4 {
            edit_burst(&mut ds, &mut rng, 2, EditProfile::LevelStable);
            let rep = session.weave(&ds).unwrap();
            assert_eq!(
                rep.path,
                dscweaver_core::ReweavePath::Delta,
                "{:?}",
                rep.diff
            );
        }
    }

    #[test]
    fn mixed_bursts_include_guard_flips() {
        let mut ds = layered(&LayeredParams {
            guards: 3,
            ..LayeredParams::default()
        });
        let mut rng = Rng::seed_from_u64(3);
        let mut logs = Vec::new();
        for _ in 0..10 {
            logs.extend(edit_burst(&mut ds, &mut rng, 4, EditProfile::Mixed));
        }
        assert!(logs.iter().any(|l| l.starts_with("~ guard")), "{logs:?}");
    }
}
