//! Design-time validation of a synchronization scheme (§4.1: "conflict
//! dependencies like infinite synchronization sequence can be detected
//! during design stage").
//!
//! Validation layers, cheapest first:
//!
//! 1. **Structural conflict check** — a cycle in the constraint graph is
//!    an unsatisfiable ("infinite") synchronization sequence; reported
//!    with the activities on the cycle.
//! 2. **Per-branch-assignment simulation** — for every assignment of
//!    branch values, run the lowered net to quiescence and check the final
//!    marking (every activity done-or-skipped, no stranded tokens). The
//!    lowered nets are conflict-free once branch modes are fixed (each
//!    place has one consumer), so a single maximal-step run per assignment
//!    is complete for deadlock/termination — this is what makes validation
//!    scale past the interleaving explosion.
//! 3. **Bounded interleaving exploration** (optional, small nets) — full
//!    reachability up to a state limit, checking safety (1-boundedness)
//!    and that every terminal marking is final.

use crate::lower::{lower, LoweredNet};
use crate::prepared::{guard_groups, PreparedNet, WavefrontTables};
use crate::reach::{assignment_chooser, explore, explore_with, run_to_quiescence, Reachability};
use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ConstraintSet, SyncGraph};
use dscweaver_graph::{effective_threads, find_cycle, par_ranges};
use dscweaver_obs as obs;
use std::collections::HashMap;

/// The cacheable compile half of validation: everything derivable from
/// the constraint set alone — conflict check, lowered net, wavefront
/// tables, guard-independence groups, and the domain table the
/// enumeration walks. Owns all of it (no borrowed lifetimes), so a
/// long-running daemon can keep one per cached process and replay
/// [`CompiledValidation::run`] per request; [`validate`] is exactly
/// `compile` + `run`, and the reports are bit-identical.
#[derive(Debug)]
pub struct CompiledValidation {
    conflict_cycle: Option<Vec<String>>,
    /// `None` when a structural conflict stops validation before lowering.
    net: Option<CompiledNet>,
    /// `(guard, domain values)` in `cs.domains` (sorted) order.
    domains: Vec<(String, Vec<String>)>,
}

#[derive(Debug)]
struct CompiledNet {
    lowered: LoweredNet,
    tables: WavefrontTables,
    /// Disjoint-footprint guard groups (computed when there is more than
    /// one guard; otherwise empty and never consulted).
    groups: Vec<Vec<String>>,
}

impl CompiledValidation {
    /// Compiles the validation artifacts for a desugared, service-free
    /// constraint set: structural conflict check, then (if conflict-free)
    /// the lowered net, its wavefront tables, and the guard groups.
    pub fn compile(cs: &ConstraintSet, exec: &ExecConditions) -> Self {
        let sg = SyncGraph::build(cs);
        if let Some(cycle) = find_cycle(&sg.graph) {
            obs::instant("petri.conflict_cycle");
            return CompiledValidation {
                conflict_cycle: Some(
                    cycle
                        .iter()
                        .map(|&n| sg.graph.weight(n).label())
                        .collect(),
                ),
                net: None,
                domains: Vec::new(),
            };
        }
        let lower_span = obs::span("petri.lower");
        let lowered = lower(cs, exec);
        drop(lower_span);
        // Compile the wavefront tables once; every assignment run below
        // reuses them through a per-worker session.
        let prepare_span = obs::span("petri.prepare");
        let tables = WavefrontTables::derive(&lowered.net);
        drop(prepare_span);
        let groups = if cs.domains.len() > 1 {
            guard_groups(&lowered, cs)
        } else {
            Vec::new()
        };
        CompiledValidation {
            conflict_cycle: None,
            net: Some(CompiledNet {
                lowered,
                tables,
                groups,
            }),
            domains: cs
                .domains
                .iter()
                .map(|(g, d)| (g.clone(), d.clone()))
                .collect(),
        }
    }

    /// The structural conflict cycle, if compilation found one.
    pub fn conflict_cycle(&self) -> Option<&[String]> {
        self.conflict_cycle.as_deref()
    }

    /// The lowered net (absent when a conflict stopped compilation).
    pub fn lowered(&self) -> Option<&LoweredNet> {
        self.net.as_ref().map(|c| &c.lowered)
    }

    /// Runs the run half — assignment enumeration and optional
    /// exploration — against the compiled artifacts. Bit-identical to
    /// [`validate`] with the same options.
    pub fn run(&self, opts: &ValidateOptions) -> ValidationReport {
        if let Some(cycle) = &self.conflict_cycle {
            return ValidationReport {
                conflict_cycle: Some(cycle.clone()),
                assignments_checked: 0,
                assignments_truncated: false,
                failures: Vec::new(),
                exploration: None,
                guard_groups: 0,
                factored: false,
                assignment_space: 0,
            };
        }
        let compiled = self.net.as_ref().expect("conflict-free compile has a net");
        run_compiled(compiled, &self.domains, opts)
    }
}

/// Validation options.
#[derive(Clone, Debug)]
pub struct ValidateOptions {
    /// Cap on enumerated branch assignments (beyond it, validation samples
    /// the first `max_assignments` lexicographically and reports
    /// truncation).
    pub max_assignments: usize,
    /// Step budget per simulation run.
    pub max_steps: usize,
    /// Also run bounded interleaving exploration with this many states
    /// (0 = skip).
    pub explore_states: usize,
    /// Worker threads for the per-assignment fan-out and the layer-chunked
    /// exploration. `0` picks from available parallelism, `1` forces the
    /// sequential path; the report is bit-identical either way (failures
    /// merge in assignment-lexicographic window order).
    pub threads: usize,
    /// Run each assignment on the legacy full-rescan simulator instead of
    /// the wavefront worklist. Results are identical; the flag exists so
    /// `BENCH_petri.json` and the equivalence tests can measure the old
    /// engine through the same entry point.
    pub rescan_baseline: bool,
    /// When to enumerate independent guard groups separately (see
    /// [`guard_groups`] and [`FactorPolicy`]): each group's assignment
    /// sub-space is checked with the other guards pinned to their first
    /// domain value, turning the multiplicative product of domain sizes
    /// into a sum over groups. The ok/not-ok verdict is unchanged
    /// (disjoint footprints cannot interact), but `assignments_checked`
    /// shrinks and failures report the pinned values for out-of-group
    /// guards. [`ValidationReport::factored`] records whether the split
    /// actually happened.
    pub factor: FactorPolicy,
}

/// Policy for splitting branch-assignment enumeration into independent
/// guard groups ([`ValidateOptions::factor`]).
///
/// Factoring never changes the verdict — groups with disjoint downstream
/// place-footprints cannot influence a common place — so the only reason
/// to disable it is byte-stable comparison against the full
/// multiplicative enumeration (equivalence tests, benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FactorPolicy {
    /// Factor whenever [`guard_groups`] finds more than one group — the
    /// default. (With a single group the factored plan covers every
    /// guard, which is exactly the unfactored enumeration, so `Auto` and
    /// `On` behave identically; the variant exists to document intent.)
    #[default]
    Auto,
    /// Same runtime behaviour as `Auto`; spelled out for callers that
    /// specifically request the factored path.
    On,
    /// Never factor: always enumerate the full multiplicative assignment
    /// space, keeping reports byte-stable against the classic path.
    Off,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            max_assignments: 4096,
            max_steps: 1_000_000,
            explore_states: 0,
            threads: 0,
            rescan_baseline: false,
            factor: FactorPolicy::Auto,
        }
    }
}

/// One failed branch assignment.
#[derive(Clone, Debug)]
pub struct AssignmentFailure {
    /// guard → chosen value.
    pub assignment: HashMap<String, String>,
    /// Activities that never completed (nor skipped).
    pub stuck: Vec<String>,
    /// Rendered stuck marking.
    pub marking: String,
    /// True if the run exceeded the step budget (livelock) rather than
    /// deadlocking.
    pub diverged: bool,
}

/// The validation verdict.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// A structural conflict cycle, if any (validation stops there).
    pub conflict_cycle: Option<Vec<String>>,
    /// Branch assignments simulated.
    pub assignments_checked: usize,
    /// True if the assignment space was larger than the cap.
    pub assignments_truncated: bool,
    /// Failures found.
    pub failures: Vec<AssignmentFailure>,
    /// Interleaving exploration results, when requested.
    pub exploration: Option<Reachability>,
    /// Independence groups the enumeration was split into: `1` for the
    /// unfactored path (or no guards), the number of disjoint-footprint
    /// groups when [`ValidateOptions::factor`] allowed factoring, `0`
    /// when validation stopped at a structural conflict.
    pub guard_groups: usize,
    /// Whether the enumeration actually ran factored (more than one
    /// independent group under a non-`Off` [`FactorPolicy`]) — the
    /// recorded auto-enable decision.
    pub factored: bool,
    /// The full multiplicative assignment space (product of domain
    /// sizes, saturating); `assignments_checked` is below this when the
    /// cap truncated the enumeration or factoring shrank it.
    pub assignment_space: usize,
}

impl ValidationReport {
    /// Overall verdict.
    pub fn ok(&self) -> bool {
        self.conflict_cycle.is_none()
            && self.failures.is_empty()
            && self
                .exploration
                .as_ref()
                .map(|r| !r.truncated)
                .unwrap_or(true)
    }
}

/// Validates a desugared, service-free constraint set.
///
/// Exactly [`CompiledValidation::compile`] followed by
/// [`CompiledValidation::run`] — split out so a daemon can cache the
/// compile half per process and pay only the run half per request.
pub fn validate(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    opts: &ValidateOptions,
) -> ValidationReport {
    let _span = obs::span_with("petri.validate", || {
        format!("activities={} domains={}", cs.activities.len(), cs.domains.len())
    });
    CompiledValidation::compile(cs, exec).run(opts)
}

/// The run half over compiled artifacts: assignment enumeration (layer 2)
/// and optional interleaving exploration (layer 3).
fn run_compiled(
    compiled: &CompiledNet,
    domains: &[(String, Vec<String>)],
    opts: &ValidateOptions,
) -> ValidationReport {
    let lowered = &compiled.lowered;
    let prep = PreparedNet::with_tables(&lowered.net, &compiled.tables);

    // Layer 2: per-assignment simulation.
    let guards: Vec<(&String, &Vec<String>)> = domains.iter().map(|(g, d)| (g, d)).collect();
    let space: usize = guards
        .iter()
        .map(|(_, d)| d.len().max(1))
        .try_fold(1usize, |a, n| a.checked_mul(n))
        .unwrap_or(usize::MAX);

    // Enumeration plans: each plan is the set of guard positions that
    // vary, every other guard pinned to its first domain value. The
    // unfactored path is one plan over all guards — decoding a linear
    // index over it is exactly the original mixed-radix little-endian
    // odometer. Unless the policy is `Off`, one plan per
    // disjoint-footprint group: sub-spaces sum instead of multiplying,
    // and the verdict is unchanged because disjoint groups cannot
    // influence a common place.
    let plans: Vec<Vec<usize>> = if opts.factor != FactorPolicy::Off && guards.len() > 1 {
        let pos: HashMap<&str, usize> = guards
            .iter()
            .enumerate()
            .map(|(i, (g, _))| (g.as_str(), i))
            .collect();
        compiled
            .groups
            .iter()
            .map(|group| {
                let mut ix: Vec<usize> = group.iter().map(|g| pos[g.as_str()]).collect();
                ix.sort_unstable();
                ix
            })
            .collect()
    } else {
        vec![(0..guards.len()).collect()]
    };

    // One branch assignment per (plan, linear index), decoded positionally
    // over the plan's guards, so any contiguous window of indices is an
    // independent work unit. Window results concatenate back in
    // assignment-lexicographic order, making the failure list
    // bit-identical for any thread count. The wavefront path runs inside
    // the caller's session (one scratch marking per pool worker); the
    // rescan baseline stays a fresh per-run simulation.
    let run_one = |plan: &[usize],
                   i: usize,
                   session: Option<&mut crate::prepared::NetSession>|
     -> Option<AssignmentFailure> {
        let mut idx = vec![0usize; guards.len()];
        let mut rest = i;
        for &g in plan {
            let len = guards[g].1.len().max(1);
            idx[g] = rest % len;
            rest /= len;
        }
        let assignment: HashMap<String, String> = guards
            .iter()
            .zip(&idx)
            .map(|((g, dom), &i)| (format!("finish({g})"), dom[i].clone()))
            .collect();
        let run = match session {
            Some(s) => s.run(assignment_chooser(&assignment), opts.max_steps),
            None => {
                run_to_quiescence(&lowered.net, assignment_chooser(&assignment), opts.max_steps)
            }
        };
        if run.diverged || !lowered.is_final(&run.final_marking) {
            Some(AssignmentFailure {
                assignment: guards
                    .iter()
                    .zip(&idx)
                    .map(|((g, dom), &i)| ((*g).clone(), dom[i].clone()))
                    .collect(),
                stuck: lowered
                    .unfinished(&run.final_marking)
                    .into_iter()
                    .map(String::from)
                    .collect(),
                marking: lowered.net.render_marking(&run.final_marking),
                diverged: run.diverged,
            })
        } else {
            None
        }
    };
    let threads = effective_threads(opts.threads, 8);
    let assignments_span = obs::span_with("petri.assignments", || {
        format!("plans={} space={space} threads={threads}", plans.len())
    });
    let mut checked = 0usize;
    let mut truncated = false;
    let mut failures: Vec<AssignmentFailure> = Vec::new();
    for plan in &plans {
        let plan_space: usize = plan
            .iter()
            .map(|&g| guards[g].1.len().max(1))
            .try_fold(1usize, |a, n| a.checked_mul(n))
            .unwrap_or(usize::MAX);
        // max_assignments is a total budget across plans.
        let plan_to_check = plan_space.min(opts.max_assignments.saturating_sub(checked));
        if plan_to_check < plan_space {
            truncated = true;
        }
        failures.extend(
            par_ranges(threads, plan_to_check, &|r| {
                if opts.rescan_baseline {
                    r.filter_map(|i| run_one(plan, i, None))
                        .collect::<Vec<AssignmentFailure>>()
                } else {
                    let mut session = prep.session();
                    r.filter_map(|i| run_one(plan, i, Some(&mut session)))
                        .collect()
                }
            })
            .into_iter()
            .flatten(),
        );
        checked += plan_to_check;
    }
    drop(assignments_span);

    // Layer 3: optional interleaving exploration.
    let exploration = if opts.explore_states > 0 {
        let _span = obs::span("petri.explore");
        Some(if opts.rescan_baseline {
            explore(&lowered.net, opts.explore_states)
        } else {
            explore_with(&lowered.net, opts.explore_states, opts.threads)
        })
    } else {
        None
    };

    let factored = plans.len() > 1;
    obs::counter_add("petri.assignments_checked", checked as u64);
    obs::counter_add("petri.failures", failures.len() as u64);
    if factored {
        obs::counter_add("petri.factored_runs", 1);
    }
    obs::gauge_set("petri.guard_groups", plans.len() as f64);
    obs::gauge_set("petri.assignment_space", space as f64);
    ValidationReport {
        conflict_cycle: None,
        assignments_checked: checked,
        assignments_truncated: truncated,
        failures,
        exploration,
        guard_groups: plans.len(),
        factored,
        assignment_space: space,
    }
}

/// Convenience: lower + validate with defaults.
pub fn validate_default(cs: &ConstraintSet, exec: &ExecConditions) -> ValidationReport {
    validate(cs, exec, &ValidateOptions::default())
}

/// Re-export of the lowered form for callers that want the net itself.
pub fn lower_net(cs: &ConstraintSet, exec: &ExecConditions) -> LoweredNet {
    lower(cs, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Condition, Origin, Relation, StateRef};

    fn exec_of(cs: &ConstraintSet) -> ExecConditions {
        ExecConditions::derive(cs)
    }

    #[test]
    fn sound_branchy_set_validates() {
        let mut cs = ConstraintSet::new("ok");
        for a in ["g", "x", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("j"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("y"),
            StateRef::start("j"),
            Origin::Data,
        ));
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(report.ok(), "{report:#?}");
        assert_eq!(report.assignments_checked, 2);
    }

    #[test]
    fn compiled_validation_replays_identically() {
        // One compile, many runs: every run must equal a fresh validate().
        let mut cs = ConstraintSet::new("replay");
        for a in ["g", "x", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("j"),
            Origin::Data,
        ));
        let exec = exec_of(&cs);
        let compiled = CompiledValidation::compile(&cs, &exec);
        for opts in [
            ValidateOptions::default(),
            ValidateOptions {
                factor: FactorPolicy::Off,
                explore_states: 5_000,
                ..Default::default()
            },
        ] {
            let fresh = validate(&cs, &exec, &opts);
            for _ in 0..2 {
                let cached = compiled.run(&opts);
                assert_eq!(cached.ok(), fresh.ok());
                assert_eq!(cached.assignments_checked, fresh.assignments_checked);
                assert_eq!(cached.guard_groups, fresh.guard_groups);
                assert_eq!(cached.factored, fresh.factored);
                assert_eq!(cached.assignment_space, fresh.assignment_space);
                assert!(cached.failures.is_empty());
                match (&cached.exploration, &fresh.exploration) {
                    (None, None) => {}
                    (Some(c), Some(f)) => {
                        assert_eq!(c.states, f.states);
                        assert_eq!(c.truncated, f.truncated);
                        assert_eq!(c.terminal, f.terminal);
                        assert_eq!(c.fired, f.fired);
                        assert_eq!(c.max_place_tokens, f.max_place_tokens);
                    }
                    _ => panic!("exploration presence must match"),
                }
            }
        }
    }

    #[test]
    fn conflict_cycle_detected_structurally() {
        let mut cs = ConstraintSet::new("cyc");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("b"),
            StateRef::start("a"),
            Origin::Cooperation,
        ));
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(!report.ok());
        assert!(report.conflict_cycle.is_some());
    }

    #[test]
    fn missing_execution_knowledge_deadlocks() {
        // x waits for a conditional token but has NO execution condition
        // derivable (the conditional edge is Cooperation, not Control):
        // when g=F the token is F-colored... consumption is Any so ordering
        // holds; but exec(x)=always, so x runs on both branches — fine. A
        // real deadlock: x additionally waits on a constraint from an
        // activity that itself never resolves. Simulate by a constraint
        // from an activity that is control dependent on g=T while x is
        // unconditional AND the producer's skip cannot propagate... with
        // DPE skip propagation this cannot deadlock — which is exactly
        // what this test demonstrates: the DPE lowering is deadlock-free
        // here, while a naive lowering would hang. So instead, produce a
        // REAL failure: a conditional constraint whose guard has a
        // three-value domain but only two handled branches is still fine
        // (skip covers it)... The honest deadlock case is the structural
        // cycle (above) or an exec condition referencing a guard that is
        // never evaluated — which validation must catch:
        let mut cs = ConstraintSet::new("dead");
        cs.add_activity("x");
        // exec(x) says "ghost=T" but ghost is not an activity: the control
        // place never receives a token.
        cs.add_domain("ghost", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("x"),
            StateRef::start("x"),
            Condition::new("ghost", "T"),
            Origin::Control,
        ));
        // ^ also a self-cycle; validation reports the structural conflict
        // first.
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(!report.ok());
    }

    #[test]
    fn stuck_activity_reported_with_names() {
        // b waits on a control token from guard g whose domain is declared
        // but that never broadcasts to b because g is NOT an activity in
        // the set — the exec condition derivation sees the control
        // relation, the lowering creates the ctl place, and nothing feeds
        // it: a genuine deadlock the per-assignment runs catch.
        let mut cs = ConstraintSet::new("stuck");
        cs.add_activity("b");
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        // Control relation from an undeclared guard: validation of the
        // ConstraintSet would flag it, but we force it through to show the
        // net-level diagnosis.
        cs.relations.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("b"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(!report.ok());
        assert!(report
            .failures
            .iter()
            .all(|f| f.stuck.contains(&"b".to_string())));
    }

    #[test]
    fn exploration_layer_runs_when_requested() {
        let mut cs = ConstraintSet::new("tiny");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        let exec = exec_of(&cs);
        let report = validate(
            &cs,
            &exec,
            &ValidateOptions {
                explore_states: 10_000,
                ..Default::default()
            },
        );
        assert!(report.ok());
        let r = report.exploration.unwrap();
        assert!(!r.truncated);
        assert_eq!(r.terminal.len(), 1);
        assert_eq!(r.max_place_tokens, 1, "lowered nets are safe");
    }
}
