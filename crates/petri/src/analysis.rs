//! Design-time validation of a synchronization scheme (§4.1: "conflict
//! dependencies like infinite synchronization sequence can be detected
//! during design stage").
//!
//! Validation layers, cheapest first:
//!
//! 1. **Structural conflict check** — a cycle in the constraint graph is
//!    an unsatisfiable ("infinite") synchronization sequence; reported
//!    with the activities on the cycle.
//! 2. **Per-branch-assignment simulation** — for every assignment of
//!    branch values, run the lowered net to quiescence and check the final
//!    marking (every activity done-or-skipped, no stranded tokens). The
//!    lowered nets are conflict-free once branch modes are fixed (each
//!    place has one consumer), so a single maximal-step run per assignment
//!    is complete for deadlock/termination — this is what makes validation
//!    scale past the interleaving explosion.
//! 3. **Bounded interleaving exploration** (optional, small nets) — full
//!    reachability up to a state limit, checking safety (1-boundedness)
//!    and that every terminal marking is final.

use crate::lower::{lower, LoweredNet};
use crate::reach::{
    assignment_chooser, explore, explore_with, run_to_quiescence, run_to_quiescence_wavefront,
    Reachability,
};
use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ConstraintSet, SyncGraph};
use dscweaver_graph::{effective_threads, find_cycle, par_ranges};
use std::collections::HashMap;

/// Validation options.
#[derive(Clone, Debug)]
pub struct ValidateOptions {
    /// Cap on enumerated branch assignments (beyond it, validation samples
    /// the first `max_assignments` lexicographically and reports
    /// truncation).
    pub max_assignments: usize,
    /// Step budget per simulation run.
    pub max_steps: usize,
    /// Also run bounded interleaving exploration with this many states
    /// (0 = skip).
    pub explore_states: usize,
    /// Worker threads for the per-assignment fan-out and the layer-chunked
    /// exploration. `0` picks from available parallelism, `1` forces the
    /// sequential path; the report is bit-identical either way (failures
    /// merge in assignment-lexicographic window order).
    pub threads: usize,
    /// Run each assignment on the legacy full-rescan simulator instead of
    /// the wavefront worklist. Results are identical; the flag exists so
    /// `BENCH_petri.json` and the equivalence tests can measure the old
    /// engine through the same entry point.
    pub rescan_baseline: bool,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            max_assignments: 4096,
            max_steps: 1_000_000,
            explore_states: 0,
            threads: 0,
            rescan_baseline: false,
        }
    }
}

/// One failed branch assignment.
#[derive(Clone, Debug)]
pub struct AssignmentFailure {
    /// guard → chosen value.
    pub assignment: HashMap<String, String>,
    /// Activities that never completed (nor skipped).
    pub stuck: Vec<String>,
    /// Rendered stuck marking.
    pub marking: String,
    /// True if the run exceeded the step budget (livelock) rather than
    /// deadlocking.
    pub diverged: bool,
}

/// The validation verdict.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// A structural conflict cycle, if any (validation stops there).
    pub conflict_cycle: Option<Vec<String>>,
    /// Branch assignments simulated.
    pub assignments_checked: usize,
    /// True if the assignment space was larger than the cap.
    pub assignments_truncated: bool,
    /// Failures found.
    pub failures: Vec<AssignmentFailure>,
    /// Interleaving exploration results, when requested.
    pub exploration: Option<Reachability>,
}

impl ValidationReport {
    /// Overall verdict.
    pub fn ok(&self) -> bool {
        self.conflict_cycle.is_none()
            && self.failures.is_empty()
            && self
                .exploration
                .as_ref()
                .map(|r| !r.truncated)
                .unwrap_or(true)
    }
}

/// Validates a desugared, service-free constraint set.
pub fn validate(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    opts: &ValidateOptions,
) -> ValidationReport {
    // Layer 1: structural conflicts.
    let sg = SyncGraph::build(cs);
    if let Some(cycle) = find_cycle(&sg.graph) {
        return ValidationReport {
            conflict_cycle: Some(
                cycle
                    .iter()
                    .map(|&n| sg.graph.weight(n).label())
                    .collect(),
            ),
            assignments_checked: 0,
            assignments_truncated: false,
            failures: Vec::new(),
            exploration: None,
        };
    }

    let lowered = lower(cs, exec);

    // Layer 2: per-assignment simulation.
    let guards: Vec<(&String, &Vec<String>)> = cs.domains.iter().collect();
    let space: usize = guards
        .iter()
        .map(|(_, d)| d.len().max(1))
        .try_fold(1usize, |a, n| a.checked_mul(n))
        .unwrap_or(usize::MAX);
    let truncated = space > opts.max_assignments;
    let to_check = space.min(opts.max_assignments);

    // One branch assignment per linear index, decoded positionally (the
    // mixed-radix little-endian layout of the original odometer loop), so
    // any contiguous window of indices is an independent work unit. Each
    // run is a fresh simulation over the shared read-only net; the window
    // results concatenate back in assignment-lexicographic order, making
    // the failure list bit-identical for any thread count.
    let run_one = |i: usize| -> Option<AssignmentFailure> {
        let mut rest = i;
        let idx: Vec<usize> = guards
            .iter()
            .map(|(_, dom)| {
                let len = dom.len().max(1);
                let d = rest % len;
                rest /= len;
                d
            })
            .collect();
        let assignment: HashMap<String, String> = guards
            .iter()
            .zip(&idx)
            .map(|((g, dom), &i)| (format!("finish({g})"), dom[i].clone()))
            .collect();
        let run = if opts.rescan_baseline {
            run_to_quiescence(&lowered.net, assignment_chooser(&assignment), opts.max_steps)
        } else {
            run_to_quiescence_wavefront(
                &lowered.net,
                assignment_chooser(&assignment),
                opts.max_steps,
            )
        };
        if run.diverged || !lowered.is_final(&run.final_marking) {
            Some(AssignmentFailure {
                assignment: guards
                    .iter()
                    .zip(&idx)
                    .map(|((g, dom), &i)| ((*g).clone(), dom[i].clone()))
                    .collect(),
                stuck: lowered
                    .unfinished(&run.final_marking)
                    .into_iter()
                    .map(String::from)
                    .collect(),
                marking: lowered.net.render_marking(&run.final_marking),
                diverged: run.diverged,
            })
        } else {
            None
        }
    };
    let threads = effective_threads(opts.threads, 8);
    let failures: Vec<AssignmentFailure> = par_ranges(threads, to_check, &|r| {
        r.filter_map(run_one).collect::<Vec<AssignmentFailure>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // Layer 3: optional interleaving exploration.
    let exploration = if opts.explore_states > 0 {
        Some(if opts.rescan_baseline {
            explore(&lowered.net, opts.explore_states)
        } else {
            explore_with(&lowered.net, opts.explore_states, opts.threads)
        })
    } else {
        None
    };

    ValidationReport {
        conflict_cycle: None,
        assignments_checked: to_check,
        assignments_truncated: truncated,
        failures,
        exploration,
    }
}

/// Convenience: lower + validate with defaults.
pub fn validate_default(cs: &ConstraintSet, exec: &ExecConditions) -> ValidationReport {
    validate(cs, exec, &ValidateOptions::default())
}

/// Re-export of the lowered form for callers that want the net itself.
pub fn lower_net(cs: &ConstraintSet, exec: &ExecConditions) -> LoweredNet {
    lower(cs, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Condition, Origin, Relation, StateRef};

    fn exec_of(cs: &ConstraintSet) -> ExecConditions {
        ExecConditions::derive(cs)
    }

    #[test]
    fn sound_branchy_set_validates() {
        let mut cs = ConstraintSet::new("ok");
        for a in ["g", "x", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("j"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("y"),
            StateRef::start("j"),
            Origin::Data,
        ));
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(report.ok(), "{report:#?}");
        assert_eq!(report.assignments_checked, 2);
    }

    #[test]
    fn conflict_cycle_detected_structurally() {
        let mut cs = ConstraintSet::new("cyc");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("b"),
            StateRef::start("a"),
            Origin::Cooperation,
        ));
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(!report.ok());
        assert!(report.conflict_cycle.is_some());
    }

    #[test]
    fn missing_execution_knowledge_deadlocks() {
        // x waits for a conditional token but has NO execution condition
        // derivable (the conditional edge is Cooperation, not Control):
        // when g=F the token is F-colored... consumption is Any so ordering
        // holds; but exec(x)=always, so x runs on both branches — fine. A
        // real deadlock: x additionally waits on a constraint from an
        // activity that itself never resolves. Simulate by a constraint
        // from an activity that is control dependent on g=T while x is
        // unconditional AND the producer's skip cannot propagate... with
        // DPE skip propagation this cannot deadlock — which is exactly
        // what this test demonstrates: the DPE lowering is deadlock-free
        // here, while a naive lowering would hang. So instead, produce a
        // REAL failure: a conditional constraint whose guard has a
        // three-value domain but only two handled branches is still fine
        // (skip covers it)... The honest deadlock case is the structural
        // cycle (above) or an exec condition referencing a guard that is
        // never evaluated — which validation must catch:
        let mut cs = ConstraintSet::new("dead");
        cs.add_activity("x");
        // exec(x) says "ghost=T" but ghost is not an activity: the control
        // place never receives a token.
        cs.add_domain("ghost", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("x"),
            StateRef::start("x"),
            Condition::new("ghost", "T"),
            Origin::Control,
        ));
        // ^ also a self-cycle; validation reports the structural conflict
        // first.
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(!report.ok());
    }

    #[test]
    fn stuck_activity_reported_with_names() {
        // b waits on a control token from guard g whose domain is declared
        // but that never broadcasts to b because g is NOT an activity in
        // the set — the exec condition derivation sees the control
        // relation, the lowering creates the ctl place, and nothing feeds
        // it: a genuine deadlock the per-assignment runs catch.
        let mut cs = ConstraintSet::new("stuck");
        cs.add_activity("b");
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        // Control relation from an undeclared guard: validation of the
        // ConstraintSet would flag it, but we force it through to show the
        // net-level diagnosis.
        cs.relations.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("b"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        let exec = exec_of(&cs);
        let report = validate_default(&cs, &exec);
        assert!(!report.ok());
        assert!(report
            .failures
            .iter()
            .all(|f| f.stuck.contains(&"b".to_string())));
    }

    #[test]
    fn exploration_layer_runs_when_requested() {
        let mut cs = ConstraintSet::new("tiny");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        let exec = exec_of(&cs);
        let report = validate(
            &cs,
            &exec,
            &ValidateOptions {
                explore_states: 10_000,
                ..Default::default()
            },
        );
        assert!(report.ok());
        let r = report.exploration.unwrap();
        assert!(!r.truncated);
        assert_eq!(r.terminal.len(), 1);
        assert_eq!(r.max_place_tokens, 1, "lowered nets are safe");
    }
}
