//! Colored Petri nets (Jensen \[10\], the paper's §4.1 validation target).
//!
//! Tokens carry a [`Color`]; transitions fire in *modes*, each mode naming
//! the colored tokens it consumes (with per-arc color filters) and the
//! colored tokens it produces. Plain (Murata \[13\]) nets are the special
//! case of one unit color and single-mode transitions. The color extension
//! is exactly what the paper needs for control dependencies: a branch
//! activity's finish transition has one mode per branch value, producing
//! differently-colored tokens that conditional arcs filter on.

use std::collections::BTreeMap;
use std::fmt;

/// A token color. The lowering uses `"done"`, `"skip"` and branch-value
/// colors (`"T"`, `"F"`, ...).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Color(pub String);

impl Color {
    /// The unit color of uncolored nets.
    pub fn unit() -> Color {
        Color("•".into())
    }

    /// Convenience constructor.
    pub fn of(s: &str) -> Color {
        Color(s.into())
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Place identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PlaceId(pub u32);

/// Transition identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransitionId(pub u32);

/// What colors an input arc accepts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ColorFilter {
    /// Any token.
    Any,
    /// Exactly this color.
    Eq(Color),
    /// One of these colors.
    OneOf(Vec<Color>),
}

impl ColorFilter {
    /// Does `c` pass the filter?
    pub fn accepts(&self, c: &Color) -> bool {
        match self {
            ColorFilter::Any => true,
            ColorFilter::Eq(x) => x == c,
            ColorFilter::OneOf(xs) => xs.contains(c),
        }
    }
}

/// An input arc of a mode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArcIn {
    /// The place consumed from.
    pub place: PlaceId,
    /// Accepted colors.
    pub filter: ColorFilter,
}

/// An output arc of a mode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArcOut {
    /// The place produced into.
    pub place: PlaceId,
    /// The produced color.
    pub color: Color,
}

/// One firing mode of a transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mode {
    /// Display label (e.g. the branch value).
    pub label: String,
    /// Tokens consumed.
    pub inputs: Vec<ArcIn>,
    /// Tokens produced.
    pub outputs: Vec<ArcOut>,
}

/// A transition with its modes.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Display name.
    pub name: String,
    /// Firing modes (≥ 1 for a useful transition).
    pub modes: Vec<Mode>,
}

/// A place.
#[derive(Clone, Debug)]
pub struct Place {
    /// Display name.
    pub name: String,
}

/// A colored Petri net plus its initial marking.
#[derive(Clone, Debug, Default)]
pub struct Net {
    /// Places.
    pub places: Vec<Place>,
    /// Transitions.
    pub transitions: Vec<Transition>,
    /// Initial marking.
    pub initial: Marking,
}

/// A marking: per place, a multiset of colors. Canonical (sorted) so it
/// can key hash sets during reachability.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Marking {
    tokens: BTreeMap<PlaceId, BTreeMap<Color, u32>>,
}

impl Marking {
    /// Empty marking.
    pub fn new() -> Marking {
        Marking::default()
    }

    /// Number of `color` tokens in `place`.
    pub fn count(&self, place: PlaceId, color: &Color) -> u32 {
        self.tokens
            .get(&place)
            .and_then(|m| m.get(color))
            .copied()
            .unwrap_or(0)
    }

    /// Total tokens in `place`.
    pub fn total(&self, place: PlaceId) -> u32 {
        self.tokens
            .get(&place)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Total tokens anywhere.
    pub fn grand_total(&self) -> u32 {
        self.tokens
            .values()
            .map(|m| m.values().sum::<u32>())
            .sum()
    }

    /// Adds a token.
    pub fn add(&mut self, place: PlaceId, color: Color) {
        *self
            .tokens
            .entry(place)
            .or_default()
            .entry(color)
            .or_insert(0) += 1;
    }

    /// Removes one token of `color`; panics if absent (the caller must
    /// check enabledness first).
    pub fn remove(&mut self, place: PlaceId, color: &Color) {
        let per_place = self.tokens.get_mut(&place).expect("no tokens in place");
        let n = per_place.get_mut(color).expect("no token of that color");
        *n -= 1;
        if *n == 0 {
            per_place.remove(color);
            if per_place.is_empty() {
                self.tokens.remove(&place);
            }
        }
    }

    /// Colors present in `place`, ascending.
    pub fn colors(&self, place: PlaceId) -> Vec<&Color> {
        self.tokens
            .get(&place)
            .map(|m| m.keys().collect())
            .unwrap_or_default()
    }

    /// Non-empty places.
    pub fn marked_places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.tokens.keys().copied()
    }

    /// The smallest color in `place` accepted by `filter`, without
    /// allocating the full color list.
    pub fn first_accepting(&self, place: PlaceId, filter: &ColorFilter) -> Option<&Color> {
        self.tokens
            .get(&place)?
            .keys()
            .find(|c| filter.accepts(c))
    }
}

impl Net {
    /// Adds a place, returning its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId(self.places.len() as u32);
        self.places.push(Place { name: name.into() });
        id
    }

    /// Adds a transition with modes, returning its id.
    pub fn add_transition(&mut self, name: impl Into<String>, modes: Vec<Mode>) -> TransitionId {
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(Transition {
            name: name.into(),
            modes,
        });
        id
    }

    /// Place name.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.places[p.0 as usize].name
    }

    /// Transition name.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0 as usize].name
    }

    /// A binding of a mode: which concrete color each input arc consumes.
    /// Returns every distinct binding enabled under `m` (deduplicated).
    pub fn enabled_bindings(
        &self,
        marking: &Marking,
        t: TransitionId,
        mode_idx: usize,
    ) -> Vec<Vec<Color>> {
        let mode = &self.transitions[t.0 as usize].modes[mode_idx];
        // Backtracking over arcs; a scratch marking tracks consumption so
        // two arcs on the same place cannot double-spend one token.
        fn go(
            mode: &Mode,
            idx: usize,
            scratch: &mut Marking,
            chosen: &mut Vec<Color>,
            out: &mut Vec<Vec<Color>>,
        ) {
            if idx == mode.inputs.len() {
                out.push(chosen.clone());
                return;
            }
            let arc = &mode.inputs[idx];
            let colors: Vec<Color> = scratch
                .colors(arc.place)
                .into_iter()
                .filter(|c| arc.filter.accepts(c))
                .cloned()
                .collect();
            for c in colors {
                scratch.remove(arc.place, &c);
                chosen.push(c.clone());
                go(mode, idx + 1, scratch, chosen, out);
                chosen.pop();
                scratch.add(arc.place, c);
            }
        }
        let mut out = Vec::new();
        let mut scratch = marking.clone();
        go(mode, 0, &mut scratch, &mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// True if any mode of `t` is enabled.
    pub fn is_enabled(&self, marking: &Marking, t: TransitionId) -> bool {
        (0..self.transitions[t.0 as usize].modes.len())
            .any(|m| !self.enabled_bindings(marking, t, m).is_empty())
    }

    /// Fires `t` in `mode_idx` with the given binding, returning the new
    /// marking. The binding must come from [`Net::enabled_bindings`].
    pub fn fire(
        &self,
        marking: &Marking,
        t: TransitionId,
        mode_idx: usize,
        binding: &[Color],
    ) -> Marking {
        let mut next = marking.clone();
        self.fire_in_place(&mut next, t, mode_idx, binding);
        next
    }

    /// [`Net::fire`] mutating `marking` directly — for long simulation runs
    /// where cloning the whole marking per firing dominates.
    pub fn fire_in_place(
        &self,
        marking: &mut Marking,
        t: TransitionId,
        mode_idx: usize,
        binding: &[Color],
    ) {
        let mode = &self.transitions[t.0 as usize].modes[mode_idx];
        assert_eq!(binding.len(), mode.inputs.len(), "binding arity mismatch");
        for (arc, color) in mode.inputs.iter().zip(binding) {
            marking.remove(arc.place, color);
        }
        for arc in &mode.outputs {
            marking.add(arc.place, arc.color.clone());
        }
    }

    /// All transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// Renders a marking with place names for diagnostics.
    pub fn render_marking(&self, m: &Marking) -> String {
        let mut parts = Vec::new();
        for p in m.marked_places() {
            let colors: Vec<String> = m
                .colors(p)
                .iter()
                .map(|c| format!("{}×{}", m.count(p, c), c))
                .collect();
            parts.push(format!("{}[{}]", self.place_name(p), colors.join(",")));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p1 --t--> p2 with unit tokens.
    fn simple() -> (Net, PlaceId, PlaceId, TransitionId) {
        let mut net = Net::default();
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t = net.add_transition(
            "t",
            vec![Mode {
                label: "fire".into(),
                inputs: vec![ArcIn {
                    place: p1,
                    filter: ColorFilter::Any,
                }],
                outputs: vec![ArcOut {
                    place: p2,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p1, Color::unit());
        (net, p1, p2, t)
    }

    #[test]
    fn fire_moves_token() {
        let (net, p1, p2, t) = simple();
        assert!(net.is_enabled(&net.initial, t));
        let bindings = net.enabled_bindings(&net.initial, t, 0);
        assert_eq!(bindings.len(), 1);
        let m2 = net.fire(&net.initial, t, 0, &bindings[0]);
        assert_eq!(m2.total(p1), 0);
        assert_eq!(m2.total(p2), 1);
        assert!(!net.is_enabled(&m2, t));
    }

    #[test]
    fn color_filter_blocks() {
        let mut net = Net::default();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let t = net.add_transition(
            "t",
            vec![Mode {
                label: "onlyT".into(),
                inputs: vec![ArcIn {
                    place: p,
                    filter: ColorFilter::Eq(Color::of("T")),
                }],
                outputs: vec![ArcOut {
                    place: q,
                    color: Color::of("done"),
                }],
            }],
        );
        net.initial.add(p, Color::of("F"));
        assert!(!net.is_enabled(&net.initial, t));
        net.initial.add(p, Color::of("T"));
        assert!(net.is_enabled(&net.initial, t));
        let b = net.enabled_bindings(&net.initial, t, 0);
        assert_eq!(b, vec![vec![Color::of("T")]]);
    }

    #[test]
    fn two_arcs_same_place_no_double_spend() {
        let mut net = Net::default();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let t = net.add_transition(
            "t",
            vec![Mode {
                label: "two".into(),
                inputs: vec![
                    ArcIn {
                        place: p,
                        filter: ColorFilter::Any,
                    },
                    ArcIn {
                        place: p,
                        filter: ColorFilter::Any,
                    },
                ],
                outputs: vec![ArcOut {
                    place: q,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p, Color::unit());
        assert!(!net.is_enabled(&net.initial, t), "one token, two arcs");
        net.initial.add(p, Color::unit());
        assert!(net.is_enabled(&net.initial, t));
    }

    #[test]
    fn multiple_modes() {
        let mut net = Net::default();
        let p = net.add_place("run");
        let out = net.add_place("out");
        let t = net.add_transition(
            "branch",
            vec!["T", "F"]
                .into_iter()
                .map(|v| Mode {
                    label: v.into(),
                    inputs: vec![ArcIn {
                        place: p,
                        filter: ColorFilter::Any,
                    }],
                    outputs: vec![ArcOut {
                        place: out,
                        color: Color::of(v),
                    }],
                })
                .collect(),
        );
        net.initial.add(p, Color::unit());
        assert!(!net.enabled_bindings(&net.initial, t, 0).is_empty());
        assert!(!net.enabled_bindings(&net.initial, t, 1).is_empty());
        let m_t = net.fire(&net.initial, t, 0, &[Color::unit()]);
        assert_eq!(m_t.count(out, &Color::of("T")), 1);
        let m_f = net.fire(&net.initial, t, 1, &[Color::unit()]);
        assert_eq!(m_f.count(out, &Color::of("F")), 1);
    }

    #[test]
    fn marking_accounting() {
        let mut m = Marking::new();
        let p = PlaceId(0);
        m.add(p, Color::of("a"));
        m.add(p, Color::of("a"));
        m.add(p, Color::of("b"));
        assert_eq!(m.count(p, &Color::of("a")), 2);
        assert_eq!(m.total(p), 3);
        assert_eq!(m.grand_total(), 3);
        m.remove(p, &Color::of("a"));
        assert_eq!(m.count(p, &Color::of("a")), 1);
        m.remove(p, &Color::of("a"));
        m.remove(p, &Color::of("b"));
        assert_eq!(m.grand_total(), 0);
        assert_eq!(m, Marking::new(), "empty places canonicalize away");
    }

    #[test]
    fn one_of_filter() {
        let f = ColorFilter::OneOf(vec![Color::of("T"), Color::of("skip")]);
        assert!(f.accepts(&Color::of("T")));
        assert!(f.accepts(&Color::of("skip")));
        assert!(!f.accepts(&Color::of("F")));
    }
}

/// Summary statistics of a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetStats {
    /// Number of places.
    pub places: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Total firing modes across all transitions.
    pub modes: usize,
    /// Total arcs (inputs + outputs across all modes).
    pub arcs: usize,
    /// Tokens in the initial marking.
    pub initial_tokens: u32,
}

impl Net {
    /// Computes summary statistics.
    pub fn stats(&self) -> NetStats {
        let modes = self.transitions.iter().map(|t| t.modes.len()).sum();
        let arcs = self
            .transitions
            .iter()
            .flat_map(|t| &t.modes)
            .map(|m| m.inputs.len() + m.outputs.len())
            .sum();
        NetStats {
            places: self.places.len(),
            transitions: self.transitions.len(),
            modes,
            arcs,
            initial_tokens: self.initial.grand_total(),
        }
    }

    /// Renders the net in Graphviz DOT syntax: places as circles (marked
    /// places show their initial tokens), transitions as boxes; arcs are
    /// the union over modes (mode labels and color filters annotate the
    /// edges).
    pub fn to_dot(&self, name: &str) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!("digraph \"{}\" {{\n  rankdir=LR;\n", esc(name));
        out.push_str("  node [fontsize=10];\n  edge [fontsize=8];\n");
        for (i, p) in self.places.iter().enumerate() {
            let tokens = self.initial.total(PlaceId(i as u32));
            let label = if tokens > 0 {
                format!("{}\\n●×{}", esc(&p.name), tokens)
            } else {
                esc(&p.name)
            };
            out.push_str(&format!("  p{i} [shape=ellipse, label=\"{label}\"];\n"));
        }
        for (i, t) in self.transitions.iter().enumerate() {
            out.push_str(&format!(
                "  t{i} [shape=box, style=filled, fillcolor=\"#dddddd\", label=\"{}\"];\n",
                esc(&t.name)
            ));
        }
        // Deduplicated arcs across modes.
        let mut seen = std::collections::BTreeSet::new();
        for (ti, t) in self.transitions.iter().enumerate() {
            for m in &t.modes {
                for arc in &m.inputs {
                    let label = match &arc.filter {
                        ColorFilter::Any => String::new(),
                        ColorFilter::Eq(c) => c.to_string(),
                        ColorFilter::OneOf(cs) => cs
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join("|"),
                    };
                    if seen.insert((arc.place.0, ti as u32, label.clone(), true)) {
                        let attr = if label.is_empty() {
                            String::new()
                        } else {
                            format!(" [label=\"{}\"]", esc(&label))
                        };
                        out.push_str(&format!("  p{} -> t{}{};\n", arc.place.0, ti, attr));
                    }
                }
                for arc in &m.outputs {
                    let label = arc.color.to_string();
                    if seen.insert((arc.place.0, ti as u32, label.clone(), false)) {
                        let attr = if label == "•" {
                            String::new()
                        } else {
                            format!(" [label=\"{}\"]", esc(&label))
                        };
                        out.push_str(&format!("  t{} -> p{}{};\n", ti, arc.place.0, attr));
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn stats_and_dot() {
        let mut net = Net::default();
        let p = net.add_place("todo(a)");
        let q = net.add_place("done(a)");
        net.add_transition(
            "finish(a)",
            vec![
                Mode {
                    label: "T".into(),
                    inputs: vec![ArcIn {
                        place: p,
                        filter: ColorFilter::Eq(Color::of("T")),
                    }],
                    outputs: vec![ArcOut {
                        place: q,
                        color: Color::of("T"),
                    }],
                },
                Mode {
                    label: "F".into(),
                    inputs: vec![ArcIn {
                        place: p,
                        filter: ColorFilter::Any,
                    }],
                    outputs: vec![ArcOut {
                        place: q,
                        color: Color::of("F"),
                    }],
                },
            ],
        );
        net.initial.add(p, Color::of("T"));
        let stats = net.stats();
        assert_eq!(stats.places, 2);
        assert_eq!(stats.transitions, 1);
        assert_eq!(stats.modes, 2);
        assert_eq!(stats.arcs, 4);
        assert_eq!(stats.initial_tokens, 1);

        let dot = net.to_dot("n");
        assert!(dot.contains("p0 [shape=ellipse"));
        assert!(dot.contains("●×1"), "initial marking shown");
        assert!(dot.contains("t0 [shape=box"));
        assert!(dot.contains("p0 -> t0 [label=\"T\"];"), "{dot}");
        assert!(dot.contains("t0 -> p1 [label=\"T\"];"));
        assert!(dot.contains("t0 -> p1 [label=\"F\"];"));
    }
}
