//! Lowering a DSCL constraint set to a colored Petri net (§4.1: "The
//! synchronization scheme described in DSCL can be mapped to Petri Nets
//! for validation").
//!
//! ## Structure per internal activity `a`
//!
//! * places `todo(a)` (one initial token), `run(a)`, `done(a)`;
//! * transitions `start(a)`: `todo → run`, `finish(a)`: `run → done`;
//! * a `skip(a)` transition implementing **dead-path elimination**: when
//!   `a`'s execution condition is false under the branch outcome, `skip`
//!   consumes the same prerequisites `start` would have and emits
//!   `"skip"`-colored tokens downstream, so activities after a dead branch
//!   neither deadlock nor lose their ordering guarantees.
//!
//! ## Constraints
//!
//! Each HappenBefore constraint `X(a) → Y(b)` becomes a buffer place from
//! the producing transition (`start(a)` for `S`/`R` sources, `finish(a)`
//! for `F`) to the consuming one. Consumption filters are `Any`: ordering
//! is what the constraint means; *whether* `b` runs is decided by the
//! control machinery below (this is why the optimizer may safely remove
//! redundant control constraints — execution conditions are process
//! semantics, carried separately from the monitored constraint set).
//!
//! ## Control (the colored part)
//!
//! A guard activity `g` (one with a declared branch domain) finishes in
//! one *mode per branch value*, producing `v`-colored tokens — the exact
//! move from place/transition nets \[13\] to colored nets \[10\] the paper
//! describes. For every activity `b` whose execution condition mentions
//! `g`, a broadcast place `ctl(g→b)` carries the outcome; `start(b)` has
//! one mode per guard-value combination satisfying `exec(b)`, `skip(b)`
//! one per falsifying combination (a skipped guard broadcasts the pseudo
//! value `"skip"`, which falsifies every condition on it).

use crate::net::{ArcIn, ArcOut, Color, ColorFilter, Mode, Net, PlaceId, TransitionId};
use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ActivityState, ConstraintSet, Relation};
use std::collections::{BTreeMap, BTreeSet};

/// Where the pieces of a lowered activity live.
#[derive(Clone, Debug)]
pub struct ActivityNodes {
    /// The `todo` place (1 initial token).
    pub todo: PlaceId,
    /// The `run` place.
    pub run: PlaceId,
    /// The `done` place (holds `"done"` or `"skip"` at the end).
    pub done: PlaceId,
    /// `start` transition.
    pub start: TransitionId,
    /// `finish` transition.
    pub finish: TransitionId,
    /// `skip` transition, if the activity is conditional.
    pub skip: Option<TransitionId>,
}

/// The lowered net plus its index.
#[derive(Clone, Debug)]
pub struct LoweredNet {
    /// The net (initial marking set).
    pub net: Net,
    /// Per-activity node index.
    pub activities: BTreeMap<String, ActivityNodes>,
    /// Constraint buffer places, labeled by the relation they encode.
    pub constraint_places: Vec<(PlaceId, String)>,
}

impl LoweredNet {
    /// True if `marking` is the expected final marking: every activity
    /// `done` (really done or skipped) and nothing else marked.
    pub fn is_final(&self, marking: &crate::net::Marking) -> bool {
        let expected = self.activities.len() as u32;
        if marking.grand_total() != expected {
            return false;
        }
        self.activities
            .values()
            .all(|n| marking.total(n.done) == 1)
    }

    /// Activities whose `done` place is unmarked in `marking`.
    pub fn unfinished(&self, marking: &crate::net::Marking) -> Vec<&str> {
        self.activities
            .iter()
            .filter(|(_, n)| marking.total(n.done) == 0)
            .map(|(a, _)| a.as_str())
            .collect()
    }
}

/// The pseudo branch value a skipped guard broadcasts.
pub const SKIP: &str = "skip";

/// Lowers a desugared, service-free constraint set. Panics (debug) on
/// HappenTogether sugar; Exclusive relations contribute nothing (they are
/// runtime-checked by the scheduler, §4.2).
pub fn lower(cs: &ConstraintSet, exec: &ExecConditions) -> LoweredNet {
    let mut net = Net::default();
    let mut activities: BTreeMap<String, ActivityNodes> = BTreeMap::new();

    // Pass 1: per-activity places.
    struct Slots {
        todo: PlaceId,
        run: PlaceId,
        done: PlaceId,
    }
    let mut slots: BTreeMap<String, Slots> = BTreeMap::new();
    for a in &cs.activities {
        let todo = net.add_place(format!("todo({a})"));
        let run = net.add_place(format!("run({a})"));
        let done = net.add_place(format!("done({a})"));
        net.initial.add(todo, Color::unit());
        slots.insert(a.clone(), Slots { todo, run, done });
    }

    // Pass 2: constraint buffer places, grouped by producing/consuming
    // transition kind. `Start` and `Run` states attach to the start
    // transition (the state is reached at/while starting); `Finish` to the
    // finish transition.
    #[derive(Clone, Copy, PartialEq)]
    enum End {
        AtStart,
        AtFinish,
    }
    let end_of = |s: ActivityState| match s {
        ActivityState::Start | ActivityState::Run => End::AtStart,
        ActivityState::Finish => End::AtFinish,
    };
    // (place, producer activity, producer end, consumer activity, consumer end)
    let mut buffers: Vec<(PlaceId, String, End, String, End)> = Vec::new();
    let mut constraint_places = Vec::new();
    for r in &cs.relations {
        match r {
            Relation::HappenBefore { from, to, .. } => {
                let p = net.add_place(format!("c({from}->{to})"));
                constraint_places.push((p, r.to_string()));
                buffers.push((
                    p,
                    from.activity.clone(),
                    end_of(from.state),
                    to.activity.clone(),
                    end_of(to.state),
                ));
            }
            Relation::HappenTogether { .. } => {
                debug_assert!(false, "desugar before lowering");
            }
            Relation::Exclusive { .. } => {}
        }
    }

    // Pass 3: control broadcast places. guards(b) = guard activities in
    // exec(b)'s terms.
    let mut ctl: BTreeMap<(String, String), PlaceId> = BTreeMap::new(); // (guard, dependent)
    let mut guards_of: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for b in &cs.activities {
        let dnf = exec.of(b);
        let mut gs: BTreeSet<String> = BTreeSet::new();
        for term in dnf.terms() {
            for c in term {
                gs.insert(c.on.clone());
            }
        }
        for g in &gs {
            let p = net.add_place(format!("ctl({g}->{b})"));
            ctl.insert((g.clone(), b.clone()), p);
        }
        guards_of.insert(b.clone(), gs.into_iter().collect());
    }

    // Pass 4: transitions.
    for a in &cs.activities {
        let s = &slots[a];
        let incoming: Vec<PlaceId> = buffers
            .iter()
            .filter(|(_, _, _, cons, end)| cons == a && *end == End::AtStart)
            .map(|(p, ..)| *p)
            .collect();
        let incoming_finish: Vec<PlaceId> = buffers
            .iter()
            .filter(|(_, _, _, cons, end)| cons == a && *end == End::AtFinish)
            .map(|(p, ..)| *p)
            .collect();
        let out_start: Vec<PlaceId> = buffers
            .iter()
            .filter(|(_, prod, end, ..)| prod == a && *end == End::AtStart)
            .map(|(p, ..)| *p)
            .collect();
        let out_finish: Vec<PlaceId> = buffers
            .iter()
            .filter(|(_, prod, end, ..)| prod == a && *end == End::AtFinish)
            .map(|(p, ..)| *p)
            .collect();
        // Control broadcast places this activity *feeds* (it is a guard).
        let broadcasts: Vec<PlaceId> = ctl
            .iter()
            .filter(|((g, _), _)| g == a)
            .map(|(_, &p)| p)
            .collect();
        // Control places this activity *listens on*.
        let listens: Vec<(String, PlaceId)> = guards_of[a]
            .iter()
            .map(|g| (g.clone(), ctl[&(g.clone(), a.clone())]))
            .collect();

        // Enumerate guard-value assignments over the listened guards
        // (domain ∪ {skip}).
        let guard_domains: Vec<(String, Vec<String>)> = listens
            .iter()
            .map(|(g, _)| {
                let mut dom = cs.domains.get(g).cloned().unwrap_or_default();
                dom.push(SKIP.to_string());
                (g.clone(), dom)
            })
            .collect();
        let mut assignments: Vec<Vec<String>> = vec![Vec::new()];
        for (_, dom) in &guard_domains {
            assignments = assignments
                .into_iter()
                .flat_map(|base| {
                    dom.iter().map(move |v| {
                        let mut a = base.clone();
                        a.push(v.clone());
                        a
                    })
                })
                .collect::<Vec<_>>();
        }
        let exec_dnf = exec.of(a);
        let satisfied = |assign: &[String]| -> bool {
            exec_dnf.terms().iter().any(|term| {
                term.iter().all(|c| {
                    guard_domains
                        .iter()
                        .position(|(g, _)| *g == c.on)
                        .map(|i| assign[i] == c.value)
                        .unwrap_or(false)
                })
            })
        };

        let base_start_inputs = |assign: Option<&[String]>| -> Vec<ArcIn> {
            let mut inputs = vec![ArcIn {
                place: s.todo,
                filter: ColorFilter::Any,
            }];
            for p in &incoming {
                inputs.push(ArcIn {
                    place: *p,
                    filter: ColorFilter::Any,
                });
            }
            if let Some(assign) = assign {
                for ((_, p), v) in listens.iter().zip(assign) {
                    inputs.push(ArcIn {
                        place: *p,
                        filter: ColorFilter::Eq(Color::of(v)),
                    });
                }
            }
            inputs
        };

        // start(a): one mode per satisfying assignment (a single
        // unconstrained mode when unconditional).
        let start_modes: Vec<Mode> = if listens.is_empty() {
            vec![Mode {
                label: "start".into(),
                inputs: base_start_inputs(None),
                outputs: vec![ArcOut {
                    place: s.run,
                    color: Color::unit(),
                }]
                .into_iter()
                .chain(out_start.iter().map(|&p| ArcOut {
                    place: p,
                    color: Color::of("done"),
                }))
                .collect(),
            }]
        } else {
            assignments
                .iter()
                .filter(|a| satisfied(a))
                .map(|assign| Mode {
                    label: format!("start[{}]", assign.join(",")),
                    inputs: base_start_inputs(Some(assign)),
                    outputs: vec![ArcOut {
                        place: s.run,
                        color: Color::unit(),
                    }]
                    .into_iter()
                    .chain(out_start.iter().map(|&p| ArcOut {
                        place: p,
                        color: Color::of("done"),
                    }))
                    .collect(),
                })
                .collect()
        };
        let start = net.add_transition(format!("start({a})"), start_modes);

        // finish(a): one mode per branch value for guards, else one mode.
        let finish_values: Vec<String> = cs
            .domains
            .get(a)
            .cloned()
            .unwrap_or_else(|| vec!["done".to_string()]);
        let finish_modes: Vec<Mode> = finish_values
            .iter()
            .map(|v| Mode {
                label: v.clone(),
                inputs: vec![ArcIn {
                    place: s.run,
                    filter: ColorFilter::Any,
                }]
                .into_iter()
                .chain(incoming_finish.iter().map(|&p| ArcIn {
                    place: p,
                    filter: ColorFilter::Any,
                }))
                .collect(),
                outputs: std::iter::once(ArcOut {
                    place: s.done,
                    color: Color::of("done"),
                })
                .chain(out_finish.iter().map(|&p| ArcOut {
                    place: p,
                    color: Color::of(v),
                }))
                .chain(broadcasts.iter().map(|&p| ArcOut {
                    place: p,
                    color: Color::of(v),
                }))
                .collect(),
            })
            .collect();
        let finish = net.add_transition(format!("finish({a})"), finish_modes);

        // skip(a): one mode per falsifying assignment. Consumes everything
        // start+finish would (prerequisites still order the skip event),
        // emits "skip" downstream.
        let skip = if listens.is_empty() {
            None
        } else {
            let skip_modes: Vec<Mode> = assignments
                .iter()
                .filter(|a| !satisfied(a))
                .map(|assign| Mode {
                    label: format!("skip[{}]", assign.join(",")),
                    inputs: base_start_inputs(Some(assign))
                        .into_iter()
                        .chain(incoming_finish.iter().map(|&p| ArcIn {
                            place: p,
                            filter: ColorFilter::Any,
                        }))
                        .collect(),
                    outputs: std::iter::once(ArcOut {
                        place: s.done,
                        color: Color::of(SKIP),
                    })
                    .chain(
                        out_start
                            .iter()
                            .chain(out_finish.iter())
                            .map(|&p| ArcOut {
                                place: p,
                                color: Color::of(SKIP),
                            }),
                    )
                    .chain(broadcasts.iter().map(|&p| ArcOut {
                        place: p,
                        color: Color::of(SKIP),
                    }))
                    .collect(),
                })
                .collect();
            Some(net.add_transition(format!("skip({a})"), skip_modes))
        };

        activities.insert(
            a.clone(),
            ActivityNodes {
                todo: s.todo,
                run: s.run,
                done: s.done,
                start,
                finish,
                skip,
            },
        );
    }

    LoweredNet {
        net,
        activities,
        constraint_places,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::{assignment_chooser, explore, run_to_quiescence};
    use dscweaver_dscl::{Condition, Origin, StateRef};
    use std::collections::HashMap;

    fn lowered(cs: &ConstraintSet) -> LoweredNet {
        let exec = ExecConditions::derive(cs);
        lower(cs, &exec)
    }

    #[test]
    fn unconditional_chain_runs_to_completion() {
        let mut cs = ConstraintSet::new("chain");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("b"),
            StateRef::start("c"),
            Origin::Data,
        ));
        let l = lowered(&cs);
        let run = run_to_quiescence(&l.net, |_, _, e| e[0], 1000);
        assert!(!run.diverged);
        assert!(l.is_final(&run.final_marking), "{}", l.net.render_marking(&run.final_marking));
        // Ordering: start(b) fires after finish(a).
        let pos = |name: &str| {
            run.trace
                .iter()
                .position(|(t, _)| l.net.transition_name(*t) == name)
                .unwrap_or_else(|| panic!("{name} did not fire"))
        };
        assert!(pos("finish(a)") < pos("start(b)"));
        assert!(pos("finish(b)") < pos("start(c)"));
    }

    fn branchy() -> ConstraintSet {
        // g branches; x on T, y on F; join j unconditional with data deps
        // from both.
        let mut cs = ConstraintSet::new("branchy");
        for a in ["g", "x", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("j"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("y"),
            StateRef::start("j"),
            Origin::Data,
        ));
        cs
    }

    #[test]
    fn dead_path_elimination_lets_the_join_fire() {
        let l = lowered(&branchy());
        for (value, runs, skips) in [("T", "x", "y"), ("F", "y", "x")] {
            let assignment: HashMap<String, String> =
                [("finish(g)".to_string(), value.to_string())].into();
            let run = run_to_quiescence(&l.net, assignment_chooser(&assignment), 1000);
            assert!(!run.diverged);
            assert!(
                l.is_final(&run.final_marking),
                "branch {value}: {}",
                l.net.render_marking(&run.final_marking)
            );
            let fired: Vec<&str> = run
                .trace
                .iter()
                .map(|(t, _)| l.net.transition_name(*t))
                .collect();
            assert!(fired.contains(&format!("start({runs})").as_str()));
            assert!(fired.contains(&format!("skip({skips})").as_str()));
            assert!(fired.contains(&"start(j)"), "join runs on both branches");
            // done(skipped) holds a skip token.
            let skipped = &l.activities[skips];
            assert_eq!(
                run.final_marking.count(skipped.done, &Color::of(SKIP)),
                1
            );
        }
    }

    #[test]
    fn skip_waits_for_prerequisites() {
        // a → x (data) where x is conditional on g=T: on the F branch,
        // skip(x) must still wait for finish(a) — skip events are ordered.
        let mut cs = branchy();
        cs.add_activity("a");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("x"),
            Origin::Data,
        ));
        let l = lowered(&cs);
        let assignment: HashMap<String, String> =
            [("finish(g)".to_string(), "F".to_string())].into();
        let run = run_to_quiescence(&l.net, assignment_chooser(&assignment), 1000);
        assert!(l.is_final(&run.final_marking));
        let pos = |name: &str| {
            run.trace
                .iter()
                .position(|(t, _)| l.net.transition_name(*t) == name)
                .unwrap_or_else(|| panic!("{name} did not fire"))
        };
        assert!(pos("finish(a)") < pos("skip(x)"));
    }

    #[test]
    fn nested_guards_cascade_skips() {
        // outer=F skips inner guard g2, which must broadcast "skip" so its
        // own dependent d skips as well.
        let mut cs = ConstraintSet::new("nested");
        for a in ["g1", "g2", "d"] {
            cs.add_activity(a);
        }
        cs.add_domain("g1", vec!["T".into(), "F".into()]);
        cs.add_domain("g2", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g1"),
            StateRef::start("g2"),
            Condition::new("g1", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g2"),
            StateRef::start("d"),
            Condition::new("g2", "T"),
            Origin::Control,
        ));
        let l = lowered(&cs);
        let assignment: HashMap<String, String> =
            [("finish(g1)".to_string(), "F".to_string())].into();
        let run = run_to_quiescence(&l.net, assignment_chooser(&assignment), 1000);
        assert!(
            l.is_final(&run.final_marking),
            "{}",
            l.net.render_marking(&run.final_marking)
        );
        assert_eq!(
            run.final_marking.count(l.activities["d"].done, &Color::of(SKIP)),
            1
        );
    }

    #[test]
    fn overlap_constraint_orders_states() {
        // S(a) → F(b): b cannot finish before a starts.
        let mut cs = ConstraintSet::new("overlap");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("b"),
            Origin::Cooperation,
        ));
        let l = lowered(&cs);
        let run = run_to_quiescence(&l.net, |_, _, e| e[0], 100);
        assert!(l.is_final(&run.final_marking));
        let pos = |name: &str| {
            run.trace
                .iter()
                .position(|(t, _)| l.net.transition_name(*t) == name)
                .unwrap()
        };
        assert!(pos("start(a)") < pos("finish(b)"));
    }

    #[test]
    fn interleaving_exploration_is_confluent() {
        // Small unconditional diamond: full reachability, single terminal
        // marking, which is final.
        let mut cs = ConstraintSet::new("diamond");
        for a in ["a", "b", "c", "d"] {
            cs.add_activity(a);
        }
        for (f, t) in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")] {
            cs.push(Relation::before(
                StateRef::finish(f),
                StateRef::start(t),
                Origin::Data,
            ));
        }
        let l = lowered(&cs);
        let r = explore(&l.net, 100_000);
        assert!(!r.truncated);
        assert_eq!(r.terminal.len(), 1, "confluence");
        assert!(l.is_final(&r.terminal[0]));
        assert_eq!(r.max_place_tokens, 1, "safe (1-bounded) net");
    }
}
