//! Structural analysis: place invariants (P-semiflows).
//!
//! A place invariant is a weighting `w` of places such that every
//! transition firing conserves the weighted token sum `w·M`. Invariants
//! are *structural* — computed from the incidence matrix alone, no state
//! exploration — and give cheap global guarantees: for the DSCL lowering,
//! every activity carries the invariant `todo(a) + run(a) + done(a) = 1`,
//! which is exactly "an activity is always in precisely one phase of its
//! life cycle" (§4.1's state model), machine-checked.
//!
//! Colored nets are handled by color abstraction: the incidence matrix
//! counts tokens regardless of color, so a discovered invariant holds for
//! every mode. (Color-sensitive invariants would need unfolding; the
//! token-count ones are what the life-cycle property requires.)

use crate::net::{Net, PlaceId};

/// A place invariant: weights per place (sparse, only non-zero entries)
/// and the conserved sum under the initial marking.
#[derive(Clone, Debug, PartialEq)]
pub struct PlaceInvariant {
    /// `(place, weight)` pairs with non-zero weights.
    pub weights: Vec<(PlaceId, i64)>,
    /// The conserved value `w · M₀`.
    pub initial_sum: i64,
}

impl PlaceInvariant {
    /// Evaluates `w · M` on a marking.
    pub fn eval(&self, m: &crate::net::Marking) -> i64 {
        self.weights
            .iter()
            .map(|&(p, w)| w * m.total(p) as i64)
            .sum()
    }

    /// Renders as `todo(a) + run(a) + done(a) = 1`.
    pub fn render(&self, net: &Net) -> String {
        let lhs: Vec<String> = self
            .weights
            .iter()
            .map(|&(p, w)| {
                if w == 1 {
                    net.place_name(p).to_string()
                } else {
                    format!("{}·{}", w, net.place_name(p))
                }
            })
            .collect();
        format!("{} = {}", lhs.join(" + "), self.initial_sum)
    }
}

/// The token-count incidence matrix: `inc[t][p]` = net token change of
/// place `p` when transition `t` fires (taken as the per-mode change —
/// modes of one transition that disagree are split into separate rows so
/// an invariant must hold for every mode).
fn incidence_rows(net: &Net) -> Vec<Vec<i64>> {
    let np = net.places.len();
    let mut rows = Vec::new();
    for t in &net.transitions {
        for m in &t.modes {
            let mut row = vec![0i64; np];
            for arc in &m.inputs {
                row[arc.place.0 as usize] -= 1;
            }
            for arc in &m.outputs {
                row[arc.place.0 as usize] += 1;
            }
            rows.push(row);
        }
    }
    // Deduplicate identical rows (common: every mode of `start` moves the
    // same token counts).
    rows.sort();
    rows.dedup();
    rows
}

/// Computes a basis of the integer null space of the incidence matrix
/// (fraction-free Gaussian elimination over `i128`). Every returned
/// vector `w` satisfies `C · w = 0`, i.e. is a place invariant. The basis
/// is not guaranteed minimal-support, but spans the invariant space.
pub fn place_invariants(net: &Net) -> Vec<PlaceInvariant> {
    let np = net.places.len();
    if np == 0 {
        return Vec::new();
    }
    let rows = incidence_rows(net);

    // Gaussian elimination over rationals represented as f64-free exact
    // i128 arithmetic: we row-reduce [C] and read the null space of the
    // column space. Work with fractions via scaling: standard fraction-free
    // Bareiss would do; for the small matrices here, use i128 and
    // cross-multiplication elimination.
    let m = rows.len();
    let mut a: Vec<Vec<i128>> = rows
        .iter()
        .map(|r| r.iter().map(|&x| x as i128).collect())
        .collect();

    let mut pivot_col_of_row: Vec<usize> = Vec::new();
    let mut r = 0;
    for c in 0..np {
        // Find a pivot.
        let Some(pr) = (r..m).find(|&i| a[i][c] != 0) else {
            continue;
        };
        a.swap(r, pr);
        // Eliminate below and above with cross-multiplication.
        for i in 0..m {
            if i != r && a[i][c] != 0 {
                let (p, q) = (a[r][c], a[i][c]);
                let pivot_row = a[r].clone();
                for (x, &pv) in a[i].iter_mut().zip(&pivot_row) {
                    *x = *x * p - pv * q;
                }
                // Keep numbers small: divide the row by its gcd.
                let g = a[i].iter().fold(0i128, |acc, &x| gcd(acc, x.abs()));
                if g > 1 {
                    for x in &mut a[i] {
                        *x /= g;
                    }
                }
            }
        }
        pivot_col_of_row.push(c);
        r += 1;
        if r == m {
            break;
        }
    }

    let pivot_cols: std::collections::HashSet<usize> =
        pivot_col_of_row.iter().copied().collect();
    let free_cols: Vec<usize> = (0..np).filter(|c| !pivot_cols.contains(c)).collect();

    // For each free column, build a null-space vector.
    let mut out = Vec::new();
    for &fc in &free_cols {
        // w[fc] = D (common denominator), w[pivot col of row i] solves
        // a[i][pc] * w[pc] + a[i][fc] * D = 0.
        // Use rational back-substitution: w[pc] = -a[i][fc] / a[i][pc] * D.
        // Choose D = lcm of pivots to stay integral.
        let mut denom: i128 = 1;
        for (i, &pc) in pivot_col_of_row.iter().enumerate() {
            if a[i][fc] != 0 {
                denom = lcm(denom, a[i][pc].abs());
            }
        }
        let mut w = vec![0i128; np];
        w[fc] = denom;
        for (i, &pc) in pivot_col_of_row.iter().enumerate() {
            if a[i][fc] != 0 {
                w[pc] = -a[i][fc] * denom / a[i][pc];
            }
        }
        // Normalize: gcd and sign (make the first non-zero positive).
        let g = w.iter().fold(0i128, |acc, &x| gcd(acc, x.abs()));
        if g > 1 {
            for x in &mut w {
                *x /= g;
            }
        }
        if let Some(first) = w.iter().find(|&&x| x != 0) {
            if *first < 0 {
                for x in &mut w {
                    *x = -*x;
                }
            }
        }
        let weights: Vec<(PlaceId, i64)> = w
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0)
            .map(|(p, &x)| (PlaceId(p as u32), x as i64))
            .collect();
        if weights.is_empty() {
            continue;
        }
        let inv = PlaceInvariant {
            initial_sum: weights
                .iter()
                .map(|&(p, wt)| wt * net.initial.total(p) as i64)
                .sum(),
            weights,
        };
        out.push(inv);
    }
    out
}

/// Verifies that every invariant holds on a marking (used by tests against
/// reachability exploration).
pub fn check_invariants(invs: &[PlaceInvariant], m: &crate::net::Marking) -> bool {
    invs.iter().all(|inv| inv.eval(m) == inv.initial_sum)
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::net::{ArcIn, ArcOut, Color, ColorFilter, Marking, Mode, Net};
    use crate::reach::explore;
    use dscweaver_core::ExecConditions;
    use dscweaver_dscl::{ConstraintSet, Origin, Relation, StateRef};

    /// p1 -t-> p2: invariant p1 + p2 = const.
    #[test]
    fn two_place_chain_invariant() {
        let mut net = Net::default();
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition(
            "t",
            vec![Mode {
                label: "go".into(),
                inputs: vec![ArcIn {
                    place: p1,
                    filter: ColorFilter::Any,
                }],
                outputs: vec![ArcOut {
                    place: p2,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p1, Color::unit());
        let invs = place_invariants(&net);
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].weights, vec![(p1, 1), (p2, 1)]);
        assert_eq!(invs[0].initial_sum, 1);
        assert_eq!(invs[0].render(&net), "p1 + p2 = 1");
    }

    /// A producer t: ∅ → p has no conservation; null space is empty.
    #[test]
    fn unbounded_producer_no_invariant() {
        let mut net = Net::default();
        let p = net.add_place("p");
        net.add_transition(
            "make",
            vec![Mode {
                label: "go".into(),
                inputs: vec![],
                outputs: vec![ArcOut {
                    place: p,
                    color: Color::unit(),
                }],
            }],
        );
        let invs = place_invariants(&net);
        assert!(invs.is_empty());
    }

    /// Weighted invariant: t consumes 2×p1 and produces 1×p2 →
    /// p1 + 2·p2 conserved.
    #[test]
    fn weighted_invariant() {
        let mut net = Net::default();
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        net.add_transition(
            "t",
            vec![Mode {
                label: "go".into(),
                inputs: vec![
                    ArcIn {
                        place: p1,
                        filter: ColorFilter::Any,
                    },
                    ArcIn {
                        place: p1,
                        filter: ColorFilter::Any,
                    },
                ],
                outputs: vec![ArcOut {
                    place: p2,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p1, Color::unit());
        net.initial.add(p1, Color::unit());
        let invs = place_invariants(&net);
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].weights, vec![(p1, 1), (p2, 2)]);
        assert_eq!(invs[0].initial_sum, 2);
    }

    /// The DSCL lowering's signature property: for every activity,
    /// todo + run + done is an invariant with sum 1 — and every invariant
    /// holds on every reachable marking.
    #[test]
    fn lowering_lifecycle_invariants() {
        let mut cs = ConstraintSet::new("inv");
        for a in ["g", "x", "y"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            dscweaver_dscl::Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("y"),
            Origin::Data,
        ));
        let exec = ExecConditions::derive(&cs);
        let lowered = lower(&cs, &exec);
        let invs = place_invariants(&lowered.net);
        assert!(!invs.is_empty());

        // The per-activity lifecycle combination is in the invariant span:
        // check directly that todo+run+done stays 1 on every reachable
        // marking, and that every computed invariant holds everywhere.
        let reach = explore(&lowered.net, 100_000);
        assert!(!reach.truncated);
        let mut all: Vec<Marking> = reach.terminal.clone();
        all.push(lowered.net.initial.clone());
        for m in &all {
            assert!(check_invariants(&invs, m), "invariant broken");
            for nodes in lowered.activities.values() {
                let sum = m.total(nodes.todo) + m.total(nodes.run) + m.total(nodes.done);
                assert_eq!(sum, 1, "life-cycle invariant");
            }
        }
    }

    #[test]
    fn invariants_hold_across_exploration() {
        // Cross-check: every invariant evaluated on every reachable
        // marking equals its initial sum.
        let mut cs = ConstraintSet::new("x");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("c"),
            Origin::Data,
        ));
        let exec = ExecConditions::derive(&cs);
        let lowered = lower(&cs, &exec);
        let invs = place_invariants(&lowered.net);
        // Walk the full reachability graph manually, checking at each step.
        let mut stack = vec![lowered.net.initial.clone()];
        let mut seen = std::collections::HashSet::new();
        seen.insert(lowered.net.initial.clone());
        while let Some(m) = stack.pop() {
            assert!(check_invariants(&invs, &m));
            for t in lowered.net.transition_ids() {
                for mi in 0..lowered.net.transitions[t.0 as usize].modes.len() {
                    for b in lowered.net.enabled_bindings(&m, t, mi) {
                        let next = lowered.net.fire(&m, t, mi, &b);
                        if seen.insert(next.clone()) {
                            stack.push(next);
                        }
                    }
                }
            }
        }
    }
}
