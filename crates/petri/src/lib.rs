//! # dscweaver-petri
//!
//! Colored Petri nets and the DSCL → net lowering the paper uses for
//! design-time validation (§4.1, refs \[13\] Murata, \[10\] Jensen's colored
//! nets for multi-valued branch outcomes). Includes bounded reachability,
//! a deterministic maximal-step simulator, dead-path-elimination lowering
//! and the layered validation pipeline (structural conflicts →
//! per-assignment simulation → optional interleaving exploration).

#![warn(missing_docs)]

pub mod analysis;
pub mod invariants;
pub mod lower;
pub mod net;
pub mod reach;

pub use analysis::{validate, validate_default, AssignmentFailure, ValidateOptions, ValidationReport};
pub use invariants::{check_invariants, place_invariants, PlaceInvariant};
pub use lower::{lower, ActivityNodes, LoweredNet, SKIP};
pub use net::{ArcIn, ArcOut, Color, ColorFilter, Marking, Mode, Net, PlaceId, TransitionId};
pub use reach::{
    assignment_chooser, explore, explore_with, run_to_quiescence, run_to_quiescence_wavefront,
    Reachability, Run,
};
