//! # dscweaver-petri
//!
//! Colored Petri nets and the DSCL → net lowering the paper uses for
//! design-time validation (§4.1, refs \[13\] Murata, \[10\] Jensen's colored
//! nets for multi-valued branch outcomes). Includes bounded reachability,
//! a deterministic maximal-step simulator, dead-path-elimination lowering
//! and the layered validation pipeline (structural conflicts →
//! per-assignment simulation → optional interleaving exploration).
//!
//! Two engines run the per-assignment simulations: the legacy full-rescan
//! loop ([`run_to_quiescence`]) and the wavefront worklist
//! ([`run_to_quiescence_wavefront`]), pinned bit-identical by property
//! tests. For replaying one net many times, [`PreparedNet`] compiles the
//! wavefront's derived tables once and [`NetSession`] reuses scratch
//! state across runs; [`guard_groups`] factors independent guards so
//! [`validate`] can enumerate additive sub-spaces instead of the full
//! multiplicative product (see [`ValidateOptions::factor`]).
//!
//! ```
//! use dscweaver_core::ExecConditions;
//! use dscweaver_dscl::{Condition, ConstraintSet, Origin, Relation, StateRef};
//! use dscweaver_petri::{validate, ValidateOptions};
//!
//! // A guarded diamond: g chooses x (g=T) or y (g=F); both join at j.
//! let mut cs = ConstraintSet::new("diamond");
//! for a in ["g", "x", "y", "j"] {
//!     cs.add_activity(a);
//! }
//! cs.add_domain("g", vec!["T".into(), "F".into()]);
//! cs.push(Relation::before_if(
//!     StateRef::finish("g"), StateRef::start("x"),
//!     Condition::new("g", "T"), Origin::Control,
//! ));
//! cs.push(Relation::before_if(
//!     StateRef::finish("g"), StateRef::start("y"),
//!     Condition::new("g", "F"), Origin::Control,
//! ));
//! cs.push(Relation::before(StateRef::finish("x"), StateRef::start("j"), Origin::Data));
//! cs.push(Relation::before(StateRef::finish("y"), StateRef::start("j"), Origin::Data));
//!
//! let exec = ExecConditions::derive(&cs);
//! let report = validate(&cs, &exec, &ValidateOptions::default());
//! assert!(report.ok());
//! assert_eq!(report.assignments_checked, 2); // both branches simulated
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod invariants;
pub mod lower;
pub mod net;
pub mod prepared;
pub mod reach;

pub use analysis::{
    validate, validate_default, AssignmentFailure, CompiledValidation, FactorPolicy,
    ValidateOptions, ValidationReport,
};
pub use invariants::{check_invariants, place_invariants, PlaceInvariant};
pub use lower::{lower, ActivityNodes, LoweredNet, SKIP};
pub use net::{ArcIn, ArcOut, Color, ColorFilter, Marking, Mode, Net, PlaceId, TransitionId};
pub use prepared::{guard_groups, NetSession, PreparedNet, WavefrontTables};
pub use reach::{
    assignment_chooser, explore, explore_with, run_to_quiescence, run_to_quiescence_wavefront,
    Reachability, Run,
};
