//! Prepared (pre-compiled) nets: the wavefront simulator's derived tables
//! hoisted out of the per-run loop, plus guard-independence analysis over
//! the lowered net's place footprints.
//!
//! [`run_to_quiescence_wavefront`](crate::run_to_quiescence_wavefront)
//! derives two tables from the net before every run — the place →
//! consuming-transitions index and the per-mode distinct-input-places
//! flags — and allocates a fresh working marking. Validation replays the
//! *same* net once per branch assignment (monitoring-style replay), so a
//! [`PreparedNet`] computes the tables once and a [`NetSession`] carries
//! one reusable scratch marking / decided-mode map / dirty worklist per
//! pool worker across runs. The session's [`NetSession::run`] is the
//! wavefront loop verbatim, so traces and final markings are bit-identical
//! to the unprepared path — which the `prepared_engines_equivalence`
//! property tests pin.
//!
//! [`guard_groups`] adds the independence analysis on top: the forward
//! place-closure reachable from each guard's `finish` outputs is the set
//! of places whose tokens can ever depend on that guard's value; guards
//! with disjoint closures cannot interact, so validation may enumerate
//! each group's assignments separately (multiplicative → additive).

use crate::lower::LoweredNet;
use crate::net::{Marking, Net, TransitionId};
use crate::reach::{first_binding, Run};
use dscweaver_dscl::ConstraintSet;
use dscweaver_graph::BitSet;
use std::collections::{BTreeSet, HashMap};

/// The wavefront simulator's derived tables, owned and lifetime-free —
/// the cacheable "compile half" of a [`PreparedNet`].
///
/// Splitting the tables from the net reference lets a long-lived registry
/// (the serve daemon's warm-artifact cache) store them next to the owned
/// net and rebuild a borrowing [`PreparedNet`] per request with
/// [`PreparedNet::with_tables`] at zero derivation cost.
#[derive(Clone, Debug)]
pub struct WavefrontTables {
    /// `consumers[p]` = transitions with an input arc on place `p` in any
    /// mode, ascending.
    consumers: Vec<Vec<u32>>,
    /// `distinct[t][mode]` = no two input arcs of the mode share a place
    /// (licenses the clone-free `first_binding` fast path).
    distinct: Vec<Vec<bool>>,
}

impl WavefrontTables {
    /// Derives the consumer and distinct-input-place tables from a net.
    pub fn derive(net: &Net) -> Self {
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); net.places.len()];
        let mut distinct: Vec<Vec<bool>> = Vec::with_capacity(net.transitions.len());
        for (ti, tr) in net.transitions.iter().enumerate() {
            let mut ins: BTreeSet<u32> = BTreeSet::new();
            let mut per_mode = Vec::with_capacity(tr.modes.len());
            for mode in &tr.modes {
                let mut places: Vec<u32> = mode.inputs.iter().map(|a| a.place.0).collect();
                for &p in &places {
                    ins.insert(p);
                }
                places.sort_unstable();
                places.dedup();
                per_mode.push(places.len() == mode.inputs.len());
            }
            distinct.push(per_mode);
            for p in ins {
                consumers[p as usize].push(ti as u32);
            }
        }
        WavefrontTables {
            consumers,
            distinct,
        }
    }
}

/// A net with the wavefront simulator's derived tables computed once.
///
/// Borrows the net immutably, so one `PreparedNet` can be shared across
/// worker threads, each holding its own [`NetSession`]. The tables are
/// either derived on the spot ([`PreparedNet::new`]) or borrowed from a
/// cached [`WavefrontTables`] ([`PreparedNet::with_tables`]); behaviour
/// is identical.
#[derive(Debug)]
pub struct PreparedNet<'n> {
    net: &'n Net,
    tables: std::borrow::Cow<'n, WavefrontTables>,
}

impl<'n> PreparedNet<'n> {
    /// Derives the consumer and distinct-input-place tables.
    pub fn new(net: &'n Net) -> Self {
        PreparedNet {
            net,
            tables: std::borrow::Cow::Owned(WavefrontTables::derive(net)),
        }
    }

    /// Wraps a net and its pre-derived tables without re-deriving. The
    /// tables must come from [`WavefrontTables::derive`] on this same net.
    pub fn with_tables(net: &'n Net, tables: &'n WavefrontTables) -> Self {
        PreparedNet {
            net,
            tables: std::borrow::Cow::Borrowed(tables),
        }
    }

    /// The underlying net.
    pub fn net(&self) -> &'n Net {
        self.net
    }

    /// A fresh session (scratch marking + worklist) over this prepared net.
    pub fn session(&self) -> NetSession<'_, 'n> {
        NetSession {
            prep: self,
            marking: self.net.initial.clone(),
            decided: HashMap::new(),
            dirty: BTreeSet::new(),
        }
    }
}

/// Reusable per-worker simulation state over a [`PreparedNet`].
///
/// Each [`run`](NetSession::run) resets the scratch marking to the net's
/// initial marking and replays the wavefront loop; the marking, the
/// decided-mode map and the dirty worklist are recycled across runs so the
/// per-run cost is the simulation itself, not re-deriving tables or
/// reallocating state.
#[derive(Debug)]
pub struct NetSession<'p, 'n> {
    prep: &'p PreparedNet<'n>,
    marking: Marking,
    decided: HashMap<TransitionId, usize>,
    dirty: BTreeSet<u32>,
}

impl NetSession<'_, '_> {
    /// Runs the net to quiescence — semantics (and output, bit for bit)
    /// of [`run_to_quiescence_wavefront`](crate::run_to_quiescence_wavefront),
    /// minus the per-call table derivation.
    pub fn run(
        &mut self,
        mut choose_mode: impl FnMut(&Net, TransitionId, &[usize]) -> usize,
        max_steps: usize,
    ) -> Run {
        let net = self.prep.net;
        self.marking.clone_from(&net.initial);
        self.decided.clear();
        self.dirty.clear();
        self.dirty.extend(0..net.transitions.len() as u32);
        let mut trace = Vec::new();
        let mut steps = 0;
        loop {
            // Budget check sits between sweeps, exactly like the rescan's.
            if steps >= max_steps {
                return Run {
                    final_marking: self.marking.clone(),
                    trace,
                    diverged: true,
                };
            }
            let mut pos = 0u32;
            let mut progressed = false;
            while let Some(t) = self.dirty.range(pos..).next().copied() {
                let tid = TransitionId(t);
                let enabled: Vec<usize> = (0..net.transitions[t as usize].modes.len())
                    .filter(|&mi| {
                        first_binding(net, &self.marking, tid, mi, self.prep.tables.distinct[t as usize][mi])
                            .is_some()
                    })
                    .collect();
                pos = t + 1;
                if enabled.is_empty() {
                    self.dirty.remove(&t);
                    continue;
                }
                let mode = match self.decided.get(&tid) {
                    Some(&mi) if enabled.contains(&mi) => mi,
                    _ => {
                        let mi = if enabled.len() == 1 {
                            enabled[0]
                        } else {
                            choose_mode(net, tid, &enabled)
                        };
                        self.decided.insert(tid, mi);
                        mi
                    }
                };
                let binding =
                    first_binding(net, &self.marking, tid, mode, self.prep.tables.distinct[t as usize][mode])
                        .expect("chosen mode is enabled");
                net.fire_in_place(&mut self.marking, tid, mode, &binding);
                trace.push((tid, net.transitions[t as usize].modes[mode].label.clone()));
                progressed = true;
                steps += 1;
                // Only consumers of the produced tokens can have gained
                // enabledness. The fired transition itself stays dirty —
                // the next sweep re-checks it, as the rescan would.
                for arc in &net.transitions[t as usize].modes[mode].outputs {
                    for &c in &self.prep.tables.consumers[arc.place.0 as usize] {
                        self.dirty.insert(c);
                    }
                }
            }
            if !progressed {
                return Run {
                    final_marking: self.marking.clone(),
                    trace,
                    diverged: false,
                };
            }
        }
    }
}

/// Partitions the guards of `cs` into independence groups by downstream
/// place footprint.
///
/// A guard's *footprint* is the forward place-closure seeded from the
/// output places of its `finish` transition's modes (the only transition
/// whose mode choice depends on the guard's value — see
/// [`assignment_chooser`](crate::assignment_chooser)): any place a token
/// can reach from there, following "a transition consuming from a
/// footprint place adds all its output places". Guards whose footprints
/// are disjoint cannot influence a common place, so the stuck/final
/// verdict of a run factorizes over the groups and validation may
/// enumerate each group's assignment sub-space separately with the other
/// guards pinned.
///
/// Guards with no lowered activity (ghost guards: a domain whose name is
/// not an activity) have empty footprints and form singleton groups.
/// Groups are returned ordered by their first guard in `cs.domains`
/// iteration order (sorted — `domains` is a `BTreeMap`), with the guards
/// inside each group in the same order: the output is deterministic.
pub fn guard_groups(lowered: &LoweredNet, cs: &ConstraintSet) -> Vec<Vec<String>> {
    let guards: Vec<&String> = cs.domains.keys().collect();
    if guards.is_empty() {
        return Vec::new();
    }
    let net = &lowered.net;
    let n_places = net.places.len();

    // Per-transition deduped input/output place lists over all modes.
    let mut tin: Vec<Vec<u32>> = Vec::with_capacity(net.transitions.len());
    let mut tout: Vec<Vec<u32>> = Vec::with_capacity(net.transitions.len());
    for tr in &net.transitions {
        let mut ins: Vec<u32> = tr
            .modes
            .iter()
            .flat_map(|m| m.inputs.iter().map(|a| a.place.0))
            .collect();
        let mut outs: Vec<u32> = tr
            .modes
            .iter()
            .flat_map(|m| m.outputs.iter().map(|a| a.place.0))
            .collect();
        ins.sort_unstable();
        ins.dedup();
        outs.sort_unstable();
        outs.dedup();
        tin.push(ins);
        tout.push(outs);
    }

    let footprints: Vec<BitSet> = guards
        .iter()
        .map(|g| {
            let mut fp = BitSet::new(n_places);
            if let Some(nodes) = lowered.activities.get(g.as_str()) {
                for mode in &net.transitions[nodes.finish.0 as usize].modes {
                    for arc in &mode.outputs {
                        fp.insert(arc.place.0 as usize);
                    }
                }
            }
            // Forward closure: saturate "consumes from footprint ⇒
            // produces into footprint". Lowered nets are shallow DAG-ish,
            // so the fixpoint converges in a few passes.
            let mut changed = true;
            while changed {
                changed = false;
                for t in 0..net.transitions.len() {
                    if tin[t].iter().any(|&p| fp.contains(p as usize))
                        && tout[t].iter().any(|&p| !fp.contains(p as usize))
                    {
                        for &p in &tout[t] {
                            fp.insert(p as usize);
                        }
                        changed = true;
                    }
                }
            }
            fp
        })
        .collect();

    // Union-find over guards; overlapping footprints merge.
    let mut parent: Vec<usize> = (0..guards.len()).collect();
    fn find(parent: &mut Vec<usize>, mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..guards.len() {
        for j in (i + 1)..guards.len() {
            if footprints[i].intersects(&footprints[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                }
            }
        }
    }

    // Collect groups keyed by root, emitted in first-member order.
    let mut groups: Vec<Vec<String>> = Vec::new();
    let mut root_to_group: HashMap<usize, usize> = HashMap::new();
    for (i, g) in guards.iter().enumerate() {
        let r = find(&mut parent, i);
        let gi = *root_to_group.entry(r).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push((*g).clone());
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::reach::{assignment_chooser, run_to_quiescence_wavefront};
    use dscweaver_core::ExecConditions;
    use dscweaver_dscl::{Condition, Origin, Relation, StateRef};
    use std::collections::HashMap;

    /// Two independent guarded diamonds (g1 → x1/y1 → j1, g2 → x2/y2 → j2)
    /// sharing no places, plus one unguarded straggler.
    fn two_islands() -> ConstraintSet {
        let mut cs = ConstraintSet::new("islands");
        for a in ["g1", "x1", "y1", "j1", "g2", "x2", "y2", "j2", "solo"] {
            cs.add_activity(a);
        }
        for g in ["g1", "g2"] {
            cs.add_domain(g, vec!["T".into(), "F".into()]);
        }
        for (g, x, y, j) in [("g1", "x1", "y1", "j1"), ("g2", "x2", "y2", "j2")] {
            cs.push(Relation::before_if(
                StateRef::finish(g),
                StateRef::start(x),
                Condition::new(g, "T"),
                Origin::Control,
            ));
            cs.push(Relation::before_if(
                StateRef::finish(g),
                StateRef::start(y),
                Condition::new(g, "F"),
                Origin::Control,
            ));
            cs.push(Relation::before(
                StateRef::finish(x),
                StateRef::start(j),
                Origin::Data,
            ));
            cs.push(Relation::before(
                StateRef::finish(y),
                StateRef::start(j),
                Origin::Data,
            ));
        }
        cs
    }

    #[test]
    fn disjoint_diamonds_form_two_groups() {
        let cs = two_islands();
        let exec = ExecConditions::derive(&cs);
        let lowered = lower(&cs, &exec);
        let groups = guard_groups(&lowered, &cs);
        assert_eq!(groups, vec![vec!["g1".to_string()], vec!["g2".to_string()]]);
    }

    #[test]
    fn shared_join_merges_groups() {
        // Same two diamonds, but both joins feed one final sink: footprints
        // meet at the sink's places, so the guards collapse to one group.
        let mut cs = two_islands();
        cs.add_activity("sink");
        for j in ["j1", "j2"] {
            cs.push(Relation::before(
                StateRef::finish(j),
                StateRef::start("sink"),
                Origin::Data,
            ));
        }
        let exec = ExecConditions::derive(&cs);
        let lowered = lower(&cs, &exec);
        let groups = guard_groups(&lowered, &cs);
        assert_eq!(groups, vec![vec!["g1".to_string(), "g2".to_string()]]);
    }

    #[test]
    fn ghost_guard_is_a_singleton_group() {
        let mut cs = ConstraintSet::new("ghostly");
        cs.add_activity("a");
        cs.add_domain("ghost", vec!["T".into(), "F".into()]);
        let exec = ExecConditions::derive(&cs);
        let lowered = lower(&cs, &exec);
        let groups = guard_groups(&lowered, &cs);
        assert_eq!(groups, vec![vec!["ghost".to_string()]]);
    }

    #[test]
    fn session_replays_wavefront_bit_identically() {
        let cs = two_islands();
        let exec = ExecConditions::derive(&cs);
        let lowered = lower(&cs, &exec);
        let prep = PreparedNet::new(&lowered.net);
        let mut session = prep.session();
        for (v1, v2) in [("T", "T"), ("T", "F"), ("F", "T"), ("F", "F"), ("T", "T")] {
            let assignment: HashMap<String, String> = [
                ("finish(g1)".to_string(), v1.to_string()),
                ("finish(g2)".to_string(), v2.to_string()),
            ]
            .into();
            let fresh = run_to_quiescence_wavefront(
                &lowered.net,
                assignment_chooser(&assignment),
                1_000_000,
            );
            let reused = session.run(assignment_chooser(&assignment), 1_000_000);
            assert_eq!(fresh.trace, reused.trace);
            assert_eq!(fresh.final_marking, reused.final_marking);
            assert_eq!(fresh.diverged, reused.diverged);
        }
    }
}
