//! Reachability analysis: bounded interleaving exploration for small nets,
//! and a deterministic maximal-step simulator for the conflict-free nets
//! the DSCL lowering produces.
//!
//! Both analyses come in two flavors sharing one result type: the original
//! full-rescan/FIFO implementations ([`run_to_quiescence`], [`explore`])
//! and the optimized ones ([`run_to_quiescence_wavefront`],
//! [`explore_with`]) — a dirty-transition worklist that skips the `O(T)`
//! sweep rescans, and a frontier-layered BFS whose per-marking expansion
//! fans out on the shared [`dscweaver_graph::par`] pool. Each pair is
//! pinned bit-identical (trace for trace, marking for marking) by the
//! `par_equivalence` property tests.

use crate::net::{Color, Marking, Net, TransitionId};
use dscweaver_graph::par_map;
use std::collections::{HashMap, HashSet, VecDeque};

/// Result of bounded reachability exploration.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// Distinct markings visited.
    pub states: usize,
    /// True if the exploration hit the state limit before exhausting the
    /// space (analyses are then lower bounds).
    pub truncated: bool,
    /// Markings with no enabled transition.
    pub terminal: Vec<Marking>,
    /// Transitions that fired at least once somewhere.
    pub fired: HashSet<TransitionId>,
    /// Largest token count observed in any single place (boundedness
    /// witness).
    pub max_place_tokens: u32,
}

/// Explores the reachability graph breadth-first up to `max_states`
/// distinct markings.
pub fn explore(net: &Net, max_states: usize) -> Reachability {
    let mut seen: HashSet<Marking> = HashSet::new();
    let mut queue: VecDeque<Marking> = VecDeque::new();
    let mut terminal = Vec::new();
    let mut fired = HashSet::new();
    let mut truncated = false;
    let mut max_place_tokens = 0;

    seen.insert(net.initial.clone());
    queue.push_back(net.initial.clone());

    while let Some(m) = queue.pop_front() {
        for p in m.marked_places() {
            max_place_tokens = max_place_tokens.max(m.total(p));
        }
        let mut any = false;
        for t in net.transition_ids() {
            for mode in 0..net.transitions[t.0 as usize].modes.len() {
                for binding in net.enabled_bindings(&m, t, mode) {
                    any = true;
                    fired.insert(t);
                    let next = net.fire(&m, t, mode, &binding);
                    if !seen.contains(&next) {
                        if seen.len() >= max_states {
                            truncated = true;
                            continue;
                        }
                        seen.insert(next.clone());
                        queue.push_back(next);
                    }
                }
            }
        }
        if !any {
            terminal.push(m);
        }
    }
    Reachability {
        states: seen.len(),
        truncated,
        terminal,
        fired,
        max_place_tokens,
    }
}

/// What expanding one marking yields — computed purely, so a whole BFS
/// layer can expand on worker threads.
struct Expansion {
    /// Largest single-place token count in the expanded marking.
    peak: u32,
    /// Successor markings with the firing transition, in the exact
    /// deterministic order the sequential loop generates them (transition
    /// id, then mode, then binding order).
    succs: Vec<(TransitionId, Marking)>,
}

fn expand(net: &Net, m: &Marking) -> Expansion {
    let mut peak = 0;
    for p in m.marked_places() {
        peak = peak.max(m.total(p));
    }
    let mut succs = Vec::new();
    for t in net.transition_ids() {
        for mode in 0..net.transitions[t.0 as usize].modes.len() {
            for binding in net.enabled_bindings(m, t, mode) {
                succs.push((t, net.fire(m, t, mode, &binding)));
            }
        }
    }
    Expansion { peak, succs }
}

/// [`explore`] with the per-marking expansion of each BFS frontier layer
/// fanned out over `threads` scoped workers (`0` = auto, `1` =
/// sequential). A FIFO queue visits markings in layer order, so expanding
/// a whole layer concurrently and merging the expansions *in frontier
/// order* replays the sequential seen-set insertion order exactly — the
/// result (including the `truncated` flag and terminal-marking order) is
/// bit-identical for any thread count.
pub fn explore_with(net: &Net, max_states: usize, threads: usize) -> Reachability {
    let threads = dscweaver_graph::effective_threads(threads, 8);
    let mut seen: HashSet<Marking> = HashSet::new();
    let mut terminal = Vec::new();
    let mut fired = HashSet::new();
    let mut truncated = false;
    let mut max_place_tokens = 0;

    seen.insert(net.initial.clone());
    let mut frontier: Vec<Marking> = vec![net.initial.clone()];

    while !frontier.is_empty() {
        let expansions = par_map(threads, &frontier, &|m: &Marking| expand(net, m));
        let mut next_frontier = Vec::new();
        for (m, exp) in frontier.iter().zip(expansions) {
            max_place_tokens = max_place_tokens.max(exp.peak);
            if exp.succs.is_empty() {
                terminal.push(m.clone());
                continue;
            }
            for (t, next) in exp.succs {
                fired.insert(t);
                if !seen.contains(&next) {
                    if seen.len() >= max_states {
                        truncated = true;
                        continue;
                    }
                    seen.insert(next.clone());
                    next_frontier.push(next);
                }
            }
        }
        frontier = next_frontier;
    }
    Reachability {
        states: seen.len(),
        truncated,
        terminal,
        fired,
        max_place_tokens,
    }
}

/// Outcome of a deterministic maximal-step run.
#[derive(Clone, Debug)]
pub struct Run {
    /// The quiescent final marking.
    pub final_marking: Marking,
    /// Transitions fired, in firing order, with the mode label.
    pub trace: Vec<(TransitionId, String)>,
    /// True if the step budget ran out before quiescence (livelock/cycle).
    pub diverged: bool,
}

/// Runs the net to quiescence, repeatedly firing any enabled transition.
///
/// `choose_mode` resolves nondeterministic *choices* (a transition with
/// several enabled modes — the lowering's branch environments): it
/// receives the transition and the enabled mode indices and picks one.
/// For the conflict-free nets the DSCL lowering produces, the final
/// marking is independent of firing order once modes are fixed
/// (confluence), which the tests exercise.
pub fn run_to_quiescence(
    net: &Net,
    mut choose_mode: impl FnMut(&Net, TransitionId, &[usize]) -> usize,
    max_steps: usize,
) -> Run {
    let mut m = net.initial.clone();
    let mut trace = Vec::new();
    let mut steps = 0;
    // Remember branch decisions so a transition choosing mode X keeps
    // choosing X if it ever fires again (loop bodies).
    let mut decided: HashMap<TransitionId, usize> = HashMap::new();
    loop {
        if steps >= max_steps {
            return Run {
                final_marking: m,
                trace,
                diverged: true,
            };
        }
        let mut progressed = false;
        for t in net.transition_ids() {
            let enabled: Vec<usize> = (0..net.transitions[t.0 as usize].modes.len())
                .filter(|&mi| !net.enabled_bindings(&m, t, mi).is_empty())
                .collect();
            if enabled.is_empty() {
                continue;
            }
            let mode = match decided.get(&t) {
                Some(&mi) if enabled.contains(&mi) => mi,
                _ => {
                    let mi = if enabled.len() == 1 {
                        enabled[0]
                    } else {
                        choose_mode(net, t, &enabled)
                    };
                    decided.insert(t, mi);
                    mi
                }
            };
            let binding = net.enabled_bindings(&m, t, mode).remove(0);
            m = net.fire(&m, t, mode, &binding);
            trace.push((t, net.transitions[t.0 as usize].modes[mode].label.clone()));
            progressed = true;
            steps += 1;
        }
        if !progressed {
            return Run {
                final_marking: m,
                trace,
                diverged: false,
            };
        }
    }
}

/// The lexicographically smallest enabled binding of one mode, or `None`
/// if the mode is disabled — equivalent to `enabled_bindings(..)[0]`
/// (bindings are emitted sorted), but clone-free on the common case.
///
/// When a mode's input arcs hit pairwise-distinct places, the arcs cannot
/// compete for tokens: the mode is enabled iff every arc's place holds an
/// accepting color, and the sorted-first binding is the per-arc minimum
/// accepting color (lexicographic order over the binding vector is
/// arc-major, and the per-arc choices are independent). Modes with two
/// arcs on one place fall back to the backtracking enumeration.
pub(crate) fn first_binding(
    net: &Net,
    m: &Marking,
    t: TransitionId,
    mode_idx: usize,
    distinct_places: bool,
) -> Option<Vec<Color>> {
    if distinct_places {
        net.transitions[t.0 as usize].modes[mode_idx]
            .inputs
            .iter()
            .map(|arc| m.first_accepting(arc.place, &arc.filter).cloned())
            .collect()
    } else {
        let mut bindings = net.enabled_bindings(m, t, mode_idx);
        if bindings.is_empty() {
            None
        } else {
            Some(bindings.remove(0))
        }
    }
}

/// [`run_to_quiescence`] without the `O(T)` sweep rescans: a sorted
/// dirty-transition worklist, with clone-free enabledness probes and
/// in-place firing.
///
/// The rescan loop re-checks every transition each sweep, but a transition
/// found disabled can only become enabled again when a later firing adds
/// tokens to one of its input places (firing never *removes* enabledness
/// prerequisites from others — extra tokens never disable a mode). So the
/// worklist keeps exactly the transitions that might be enabled: all of
/// them initially, minus checked-and-disabled ones, plus the consumers of
/// every place a firing produced into. Scanning the worklist in ascending
/// id order with a sweep position (consumers behind the scan wait for the
/// next sweep, consumers ahead join the current one) replays the rescan's
/// firing sequence *exactly* — same trace, same sticky mode decisions,
/// same divergence cutoff — which the `par_equivalence` property tests
/// pin. On the lowered nets, where each firing enables O(out-degree)
/// transitions, this turns quadratic sweeps into near-linear work; the
/// `first_binding` fast path and [`Net::fire_in_place`] additionally
/// drop the per-probe and per-firing whole-marking clones the legacy
/// engine pays.
///
/// This is a convenience wrapper that compiles the net's derived tables
/// and runs once; callers replaying one net many times (validation's
/// per-assignment loop) should build a
/// [`PreparedNet`](crate::PreparedNet) and reuse a
/// [`NetSession`](crate::NetSession) instead, which skips the per-call
/// table derivation and state allocation.
pub fn run_to_quiescence_wavefront(
    net: &Net,
    choose_mode: impl FnMut(&Net, TransitionId, &[usize]) -> usize,
    max_steps: usize,
) -> Run {
    crate::prepared::PreparedNet::new(net)
        .session()
        .run(choose_mode, max_steps)
}

/// Picks the mode whose label matches the assignment, for branch
/// transitions named in `assignment` (transition name → mode label);
/// first enabled mode otherwise.
pub fn assignment_chooser<'a>(
    assignment: &'a HashMap<String, String>,
) -> impl FnMut(&Net, TransitionId, &[usize]) -> usize + 'a {
    move |net: &Net, t: TransitionId, enabled: &[usize]| {
        let tr = &net.transitions[t.0 as usize];
        if let Some(want) = assignment.get(&tr.name) {
            if let Some(&mi) = enabled.iter().find(|&&mi| tr.modes[mi].label == *want) {
                return mi;
            }
        }
        enabled[0]
    }
}

/// The colors used by bindings/tests.
pub fn unit_binding(n: usize) -> Vec<Color> {
    vec![Color::unit(); n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{ArcIn, ArcOut, Color, ColorFilter, Mode, Net};

    fn chain(n: usize) -> Net {
        let mut net = Net::default();
        let places: Vec<_> = (0..=n).map(|i| net.add_place(format!("p{i}"))).collect();
        for i in 0..n {
            net.add_transition(
                format!("t{i}"),
                vec![Mode {
                    label: "go".into(),
                    inputs: vec![ArcIn {
                        place: places[i],
                        filter: ColorFilter::Any,
                    }],
                    outputs: vec![ArcOut {
                        place: places[i + 1],
                        color: Color::unit(),
                    }],
                }],
            );
        }
        net.initial.add(places[0], Color::unit());
        net
    }

    #[test]
    fn chain_reachability() {
        let net = chain(5);
        let r = explore(&net, 1000);
        assert_eq!(r.states, 6);
        assert!(!r.truncated);
        assert_eq!(r.terminal.len(), 1);
        assert_eq!(r.fired.len(), 5);
        assert_eq!(r.max_place_tokens, 1);
    }

    #[test]
    fn truncation_reported() {
        let net = chain(50);
        let r = explore(&net, 10);
        assert!(r.truncated);
        assert!(r.states <= 10);
    }

    #[test]
    fn deadlock_found() {
        // A transition that needs a color that never arrives.
        let mut net = Net::default();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition(
            "starved",
            vec![Mode {
                label: "x".into(),
                inputs: vec![ArcIn {
                    place: p,
                    filter: ColorFilter::Eq(Color::of("T")),
                }],
                outputs: vec![ArcOut {
                    place: q,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p, Color::of("F"));
        let r = explore(&net, 100);
        assert_eq!(r.terminal.len(), 1);
        assert!(r.fired.is_empty(), "the transition is dead");
        assert_eq!(r.terminal[0].count(PlaceOf(0), &Color::of("F")), 1);
        #[allow(non_snake_case)]
        fn PlaceOf(i: u32) -> crate::net::PlaceId {
            crate::net::PlaceId(i)
        }
    }

    #[test]
    fn quiescent_run_on_chain() {
        let net = chain(4);
        let run = run_to_quiescence(&net, |_, _, e| e[0], 1000);
        assert!(!run.diverged);
        assert_eq!(run.trace.len(), 4);
        assert_eq!(run.final_marking.grand_total(), 1);
    }

    #[test]
    fn divergence_detected() {
        // A self-feeding loop never quiesces.
        let mut net = Net::default();
        let p = net.add_place("p");
        net.add_transition(
            "loop",
            vec![Mode {
                label: "again".into(),
                inputs: vec![ArcIn {
                    place: p,
                    filter: ColorFilter::Any,
                }],
                outputs: vec![ArcOut {
                    place: p,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p, Color::unit());
        let run = run_to_quiescence(&net, |_, _, e| e[0], 50);
        assert!(run.diverged);
    }

    #[test]
    fn first_binding_fast_path_matches_backtracking() {
        // Two distinct input places with several accepting colors each:
        // the fast path must return enabled_bindings()[0] (lexicographic
        // minimum) exactly.
        let mut net = Net::default();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let out = net.add_place("out");
        let t = net.add_transition(
            "t",
            vec![Mode {
                label: "go".into(),
                inputs: vec![
                    ArcIn {
                        place: p,
                        filter: ColorFilter::OneOf(vec![Color::of("T"), Color::of("skip")]),
                    },
                    ArcIn {
                        place: q,
                        filter: ColorFilter::Any,
                    },
                ],
                outputs: vec![ArcOut {
                    place: out,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p, Color::of("skip"));
        net.initial.add(p, Color::of("T"));
        net.initial.add(p, Color::of("F"));
        net.initial.add(q, Color::of("b"));
        net.initial.add(q, Color::of("a"));
        let slow = net.enabled_bindings(&net.initial, t, 0);
        let fast = first_binding(&net, &net.initial, t, 0, true);
        assert_eq!(fast.as_ref(), slow.first());
        assert_eq!(fast, Some(vec![Color::of("T"), Color::of("a")]));
        // Disabled case: filter accepts nothing present.
        let mut empty = net.initial.clone();
        empty.remove(q, &Color::of("a"));
        empty.remove(q, &Color::of("b"));
        assert_eq!(first_binding(&net, &empty, t, 0, true), None);
        assert!(net.enabled_bindings(&empty, t, 0).is_empty());
    }

    #[test]
    fn assignment_chooser_picks_labeled_mode() {
        let mut net = Net::default();
        let p = net.add_place("run");
        let out = net.add_place("out");
        net.add_transition(
            "branch",
            vec!["T", "F"]
                .into_iter()
                .map(|v| Mode {
                    label: v.into(),
                    inputs: vec![ArcIn {
                        place: p,
                        filter: ColorFilter::Any,
                    }],
                    outputs: vec![ArcOut {
                        place: out,
                        color: Color::of(v),
                    }],
                })
                .collect(),
        );
        net.initial.add(p, Color::unit());
        let assignment: HashMap<String, String> =
            [("branch".to_string(), "F".to_string())].into();
        let run = run_to_quiescence(&net, assignment_chooser(&assignment), 10);
        assert_eq!(run.trace, vec![(TransitionId(0), "F".to_string())]);
        assert_eq!(run.final_marking.count(crate::net::PlaceId(1), &Color::of("F")), 1);
    }
}
