//! Reachability analysis: bounded interleaving exploration for small nets,
//! and a deterministic maximal-step simulator for the conflict-free nets
//! the DSCL lowering produces.

use crate::net::{Color, Marking, Net, TransitionId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Result of bounded reachability exploration.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// Distinct markings visited.
    pub states: usize,
    /// True if the exploration hit the state limit before exhausting the
    /// space (analyses are then lower bounds).
    pub truncated: bool,
    /// Markings with no enabled transition.
    pub terminal: Vec<Marking>,
    /// Transitions that fired at least once somewhere.
    pub fired: HashSet<TransitionId>,
    /// Largest token count observed in any single place (boundedness
    /// witness).
    pub max_place_tokens: u32,
}

/// Explores the reachability graph breadth-first up to `max_states`
/// distinct markings.
pub fn explore(net: &Net, max_states: usize) -> Reachability {
    let mut seen: HashSet<Marking> = HashSet::new();
    let mut queue: VecDeque<Marking> = VecDeque::new();
    let mut terminal = Vec::new();
    let mut fired = HashSet::new();
    let mut truncated = false;
    let mut max_place_tokens = 0;

    seen.insert(net.initial.clone());
    queue.push_back(net.initial.clone());

    while let Some(m) = queue.pop_front() {
        for p in m.marked_places() {
            max_place_tokens = max_place_tokens.max(m.total(p));
        }
        let mut any = false;
        for t in net.transition_ids() {
            for mode in 0..net.transitions[t.0 as usize].modes.len() {
                for binding in net.enabled_bindings(&m, t, mode) {
                    any = true;
                    fired.insert(t);
                    let next = net.fire(&m, t, mode, &binding);
                    if !seen.contains(&next) {
                        if seen.len() >= max_states {
                            truncated = true;
                            continue;
                        }
                        seen.insert(next.clone());
                        queue.push_back(next);
                    }
                }
            }
        }
        if !any {
            terminal.push(m);
        }
    }
    Reachability {
        states: seen.len(),
        truncated,
        terminal,
        fired,
        max_place_tokens,
    }
}

/// Outcome of a deterministic maximal-step run.
#[derive(Clone, Debug)]
pub struct Run {
    /// The quiescent final marking.
    pub final_marking: Marking,
    /// Transitions fired, in firing order, with the mode label.
    pub trace: Vec<(TransitionId, String)>,
    /// True if the step budget ran out before quiescence (livelock/cycle).
    pub diverged: bool,
}

/// Runs the net to quiescence, repeatedly firing any enabled transition.
///
/// `choose_mode` resolves nondeterministic *choices* (a transition with
/// several enabled modes — the lowering's branch environments): it
/// receives the transition and the enabled mode indices and picks one.
/// For the conflict-free nets the DSCL lowering produces, the final
/// marking is independent of firing order once modes are fixed
/// (confluence), which the tests exercise.
pub fn run_to_quiescence(
    net: &Net,
    mut choose_mode: impl FnMut(&Net, TransitionId, &[usize]) -> usize,
    max_steps: usize,
) -> Run {
    let mut m = net.initial.clone();
    let mut trace = Vec::new();
    let mut steps = 0;
    // Remember branch decisions so a transition choosing mode X keeps
    // choosing X if it ever fires again (loop bodies).
    let mut decided: HashMap<TransitionId, usize> = HashMap::new();
    loop {
        if steps >= max_steps {
            return Run {
                final_marking: m,
                trace,
                diverged: true,
            };
        }
        let mut progressed = false;
        for t in net.transition_ids() {
            let enabled: Vec<usize> = (0..net.transitions[t.0 as usize].modes.len())
                .filter(|&mi| !net.enabled_bindings(&m, t, mi).is_empty())
                .collect();
            if enabled.is_empty() {
                continue;
            }
            let mode = match decided.get(&t) {
                Some(&mi) if enabled.contains(&mi) => mi,
                _ => {
                    let mi = if enabled.len() == 1 {
                        enabled[0]
                    } else {
                        choose_mode(net, t, &enabled)
                    };
                    decided.insert(t, mi);
                    mi
                }
            };
            let binding = net.enabled_bindings(&m, t, mode).remove(0);
            m = net.fire(&m, t, mode, &binding);
            trace.push((t, net.transitions[t.0 as usize].modes[mode].label.clone()));
            progressed = true;
            steps += 1;
        }
        if !progressed {
            return Run {
                final_marking: m,
                trace,
                diverged: false,
            };
        }
    }
}

/// Picks the mode whose label matches the assignment, for branch
/// transitions named in `assignment` (transition name → mode label);
/// first enabled mode otherwise.
pub fn assignment_chooser<'a>(
    assignment: &'a HashMap<String, String>,
) -> impl FnMut(&Net, TransitionId, &[usize]) -> usize + 'a {
    move |net: &Net, t: TransitionId, enabled: &[usize]| {
        let tr = &net.transitions[t.0 as usize];
        if let Some(want) = assignment.get(&tr.name) {
            if let Some(&mi) = enabled.iter().find(|&&mi| tr.modes[mi].label == *want) {
                return mi;
            }
        }
        enabled[0]
    }
}

/// The colors used by bindings/tests.
pub fn unit_binding(n: usize) -> Vec<Color> {
    vec![Color::unit(); n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{ArcIn, ArcOut, Color, ColorFilter, Mode, Net};

    fn chain(n: usize) -> Net {
        let mut net = Net::default();
        let places: Vec<_> = (0..=n).map(|i| net.add_place(format!("p{i}"))).collect();
        for i in 0..n {
            net.add_transition(
                format!("t{i}"),
                vec![Mode {
                    label: "go".into(),
                    inputs: vec![ArcIn {
                        place: places[i],
                        filter: ColorFilter::Any,
                    }],
                    outputs: vec![ArcOut {
                        place: places[i + 1],
                        color: Color::unit(),
                    }],
                }],
            );
        }
        net.initial.add(places[0], Color::unit());
        net
    }

    #[test]
    fn chain_reachability() {
        let net = chain(5);
        let r = explore(&net, 1000);
        assert_eq!(r.states, 6);
        assert!(!r.truncated);
        assert_eq!(r.terminal.len(), 1);
        assert_eq!(r.fired.len(), 5);
        assert_eq!(r.max_place_tokens, 1);
    }

    #[test]
    fn truncation_reported() {
        let net = chain(50);
        let r = explore(&net, 10);
        assert!(r.truncated);
        assert!(r.states <= 10);
    }

    #[test]
    fn deadlock_found() {
        // A transition that needs a color that never arrives.
        let mut net = Net::default();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition(
            "starved",
            vec![Mode {
                label: "x".into(),
                inputs: vec![ArcIn {
                    place: p,
                    filter: ColorFilter::Eq(Color::of("T")),
                }],
                outputs: vec![ArcOut {
                    place: q,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p, Color::of("F"));
        let r = explore(&net, 100);
        assert_eq!(r.terminal.len(), 1);
        assert!(r.fired.is_empty(), "the transition is dead");
        assert_eq!(r.terminal[0].count(PlaceOf(0), &Color::of("F")), 1);
        #[allow(non_snake_case)]
        fn PlaceOf(i: u32) -> crate::net::PlaceId {
            crate::net::PlaceId(i)
        }
    }

    #[test]
    fn quiescent_run_on_chain() {
        let net = chain(4);
        let run = run_to_quiescence(&net, |_, _, e| e[0], 1000);
        assert!(!run.diverged);
        assert_eq!(run.trace.len(), 4);
        assert_eq!(run.final_marking.grand_total(), 1);
    }

    #[test]
    fn divergence_detected() {
        // A self-feeding loop never quiesces.
        let mut net = Net::default();
        let p = net.add_place("p");
        net.add_transition(
            "loop",
            vec![Mode {
                label: "again".into(),
                inputs: vec![ArcIn {
                    place: p,
                    filter: ColorFilter::Any,
                }],
                outputs: vec![ArcOut {
                    place: p,
                    color: Color::unit(),
                }],
            }],
        );
        net.initial.add(p, Color::unit());
        let run = run_to_quiescence(&net, |_, _, e| e[0], 50);
        assert!(run.diverged);
    }

    #[test]
    fn assignment_chooser_picks_labeled_mode() {
        let mut net = Net::default();
        let p = net.add_place("run");
        let out = net.add_place("out");
        net.add_transition(
            "branch",
            vec!["T", "F"]
                .into_iter()
                .map(|v| Mode {
                    label: v.into(),
                    inputs: vec![ArcIn {
                        place: p,
                        filter: ColorFilter::Any,
                    }],
                    outputs: vec![ArcOut {
                        place: out,
                        color: Color::of(v),
                    }],
                })
                .collect(),
        );
        net.initial.add(p, Color::unit());
        let assignment: HashMap<String, String> =
            [("branch".to_string(), "F".to_string())].into();
        let run = run_to_quiescence(&net, assignment_chooser(&assignment), 10);
        assert_eq!(run.trace, vec![(TransitionId(0), "F".to_string())]);
        assert_eq!(run.final_marking.count(crate::net::PlaceId(1), &Color::of("F")), 1);
    }
}
