//! The sequencing-construct baseline: executing a Figure-2-style
//! implementation by converting its *structure* into constraints.
//!
//! The conversion makes the paper's critique concrete: a `sequence`
//! construct orders consecutive members whether or not any dependency
//! requires it (§2: "the sequencing between invProduction_po and
//! invProduction_ss is an over-specified dependency"). Running the same
//! discrete-event engine over the structural constraint set and over the
//! optimized minimal set gives an apples-to-apples concurrency/makespan
//! comparison (experiment Ext-D).

use dscweaver_dscl::{Condition, ConstraintSet, Origin, Relation, StateRef};
use dscweaver_model::{Construct, Process};

/// Error for constructs the static conversion cannot express.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructuralError {
    /// `while` loops need dynamic unrolling; the static constraint scheme
    /// (like the paper's) does not iterate.
    WhileUnsupported(String),
}

impl std::fmt::Display for StructuralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuralError::WhileUnsupported(n) => {
                write!(f, "while loop '{n}' cannot be converted to a static constraint set")
            }
        }
    }
}

impl std::error::Error for StructuralError {}

/// Converts a (while-free) process into its *structural* constraint set:
///
/// * consecutive members of a `sequence` are fully ordered
///   (all exits of item *i* before all entries of item *i+1*);
/// * `flow` orders nothing, but its `link`s become (possibly conditional)
///   constraints;
/// * `switch` guards every activity of each case with a control
///   constraint on the case label (region-based, so dead paths are
///   skippable) and orders the branch evaluator before the case entries.
pub fn structural_constraints(process: &Process) -> Result<ConstraintSet, StructuralError> {
    let mut cs = ConstraintSet::new(format!("{}_constructs", process.name));
    for a in process.activities() {
        cs.add_activity(a.name.clone());
    }
    for (guard, dom) in dscweaver_pdg::guard_domains(process) {
        cs.add_domain(guard, dom);
    }
    // Region control constraints for every activity of every case.
    for d in dscweaver_pdg::control_dependencies(process) {
        cs.push(dscweaver_core::lower(&d));
    }
    lower_construct(&process.root, &mut cs)?;
    // Links.
    for l in process.root.links() {
        let cond = l.condition.as_ref().map(|v| {
            // A link condition names a case label; its guard is the link
            // source's controlling switch. We locate the guard by finding
            // a control dependency on the source with that label; absent
            // one, the condition refers to the source itself (a branch
            // activity).
            Condition::new(l.from.clone(), v.clone())
        });
        cs.push(Relation::HappenBefore {
            from: StateRef::finish(l.from.clone()),
            to: StateRef::start(l.to.clone()),
            cond,
            origin: Origin::Other,
        });
    }
    Ok(cs)
}

/// Entry activities (first to start) and exit activities (last to finish)
/// of a construct.
fn boundaries(c: &Construct) -> (Vec<&str>, Vec<&str>) {
    match c {
        Construct::Act(a) => (vec![&a.name], vec![&a.name]),
        Construct::Sequence(items) => {
            let firsts = items.iter().find_map(|i| {
                let b = boundaries(i);
                (!b.0.is_empty()).then_some(b.0)
            });
            let lasts = items.iter().rev().find_map(|i| {
                let b = boundaries(i);
                (!b.1.is_empty()).then_some(b.1)
            });
            (firsts.unwrap_or_default(), lasts.unwrap_or_default())
        }
        Construct::Flow { branches, .. } => {
            let mut ins = Vec::new();
            let mut outs = Vec::new();
            for b in branches {
                let (i, o) = boundaries(b);
                ins.extend(i);
                outs.extend(o);
            }
            (ins, outs)
        }
        Construct::Switch { branch, cases } => {
            let mut outs = Vec::new();
            for case in cases {
                let (_, o) = boundaries(&case.body);
                if o.is_empty() {
                    outs.push(branch.name.as_str());
                } else {
                    outs.extend(o);
                }
            }
            if cases.is_empty() {
                outs.push(branch.name.as_str());
            }
            (vec![&branch.name], outs)
        }
        Construct::While { cond, .. } => (vec![&cond.name], vec![&cond.name]),
    }
}

fn lower_construct(c: &Construct, cs: &mut ConstraintSet) -> Result<(), StructuralError> {
    match c {
        Construct::Act(_) => Ok(()),
        Construct::Sequence(items) => {
            for item in items {
                lower_construct(item, cs)?;
            }
            for w in items.windows(2) {
                let (_, exits) = boundaries(&w[0]);
                let (entries, _) = boundaries(&w[1]);
                for e in &exits {
                    for s in &entries {
                        cs.push(Relation::before(
                            StateRef::finish(*e),
                            StateRef::start(*s),
                            Origin::Other,
                        ));
                    }
                }
            }
            Ok(())
        }
        Construct::Flow { branches, .. } => {
            for b in branches {
                lower_construct(b, cs)?;
            }
            Ok(())
        }
        Construct::Switch { branch, cases } => {
            for case in cases {
                lower_construct(&case.body, cs)?;
                let (entries, _) = boundaries(&case.body);
                for s in entries {
                    cs.push(Relation::before_if(
                        StateRef::finish(&branch.name),
                        StateRef::start(s),
                        Condition::new(branch.name.clone(), case.label.clone()),
                        Origin::Control,
                    ));
                }
            }
            Ok(())
        }
        Construct::While { cond, .. } => {
            Err(StructuralError::WhileUnsupported(cond.name.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use dscweaver_core::ExecConditions;
    use dscweaver_model::parse_process;

    fn run(cs: &ConstraintSet, oracle: &[(&str, &str)]) -> crate::engine::Schedule {
        let exec = ExecConditions::derive(cs);
        let mut cfg = SimConfig::default();
        for (g, v) in oracle {
            cfg.oracle.insert(g.to_string(), v.to_string());
        }
        simulate(cs, &exec, &cfg)
    }

    #[test]
    fn sequence_fully_orders() {
        let p = parse_process(
            "process P { var x; sequence { assign a writes x; assign b writes x; assign c writes x; } }",
        )
        .unwrap();
        let cs = structural_constraints(&p).unwrap();
        let s = run(&cs, &[]);
        assert!(s.completed());
        assert_eq!(s.trace.makespan(), 3);
        assert_eq!(s.trace.max_concurrency(), 1);
    }

    #[test]
    fn flow_runs_in_parallel() {
        let p = parse_process(
            "process P { var x; flow { assign a writes x; assign b writes x; assign c writes x; } }",
        )
        .unwrap();
        let cs = structural_constraints(&p).unwrap();
        let s = run(&cs, &[]);
        assert_eq!(s.trace.makespan(), 1);
        assert_eq!(s.trace.max_concurrency(), 3);
    }

    #[test]
    fn sequence_of_flows_barriers() {
        let p = parse_process(
            "process P { var x; sequence { flow { assign a writes x; assign b writes x; } flow { assign c writes x; assign d writes x; } } }",
        )
        .unwrap();
        let cs = structural_constraints(&p).unwrap();
        // Full cross product between the two flows.
        assert_eq!(cs.constraint_count(), 4);
        let s = run(&cs, &[]);
        assert_eq!(s.trace.makespan(), 2);
        assert_eq!(s.trace.max_concurrency(), 2);
    }

    #[test]
    fn switch_runs_selected_case_only() {
        let p = parse_process(
            "process P { var c, x; sequence {
               assign init writes c;
               switch s reads c { case T { assign a writes x; } case F { assign b writes x; } }
               assign after reads x;
             } }",
        )
        .unwrap();
        let cs = structural_constraints(&p).unwrap();
        let s = run(&cs, &[("s", "F")]);
        assert!(s.completed(), "stuck: {:?}", s.stuck);
        assert!(s.trace.executed("b"));
        assert!(s.trace.skipped("a"));
        assert!(s.trace.executed("after"));
        assert!(s.trace.verify(&cs).is_empty());
    }

    #[test]
    fn links_order_across_branches() {
        let p = parse_process(
            "process P { var x; flow { sequence { assign a writes x; assign a2 writes x; } sequence { assign b reads x; } link l from a2 to b; } }",
        )
        .unwrap();
        let cs = structural_constraints(&p).unwrap();
        let s = run(&cs, &[]);
        let a2_fin = s.trace.occurrence(&StateRef::finish("a2")).unwrap();
        let b_start = s.trace.occurrence(&StateRef::start("b")).unwrap();
        assert!(a2_fin <= b_start);
    }

    #[test]
    fn while_rejected() {
        let p = parse_process("process P { var n; while c reads n { assign d reads n writes n; } }")
            .unwrap();
        assert!(matches!(
            structural_constraints(&p),
            Err(StructuralError::WhileUnsupported(_))
        ));
    }

    #[test]
    fn over_specification_shows_in_makespan() {
        // Two independent assigns in a sequence (over-specified) vs flow.
        let seq = parse_process(
            "process P { var x, y; sequence { assign a writes x; assign b writes y; } }",
        )
        .unwrap();
        let par = parse_process(
            "process P { var x, y; flow { assign a writes x; assign b writes y; } }",
        )
        .unwrap();
        let s_seq = run(&structural_constraints(&seq).unwrap(), &[]);
        let s_par = run(&structural_constraints(&par).unwrap(), &[]);
        assert_eq!(s_seq.trace.makespan(), 2);
        assert_eq!(s_par.trace.makespan(), 1);
    }
}
