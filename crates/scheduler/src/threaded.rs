//! A real concurrent executor: one OS thread per activity, synchronizing
//! through a shared monitor (`std::sync` mutex + condvar) exactly on the
//! HappenBefore constraints. Where the DES (`engine`) *simulates* the
//! dataflow schedule in virtual time, this module *executes* it — the
//! integration tests run both and verify their traces against the same
//! constraint sets.

use crate::trace::{EventKind, Trace, TraceEvent};
use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ActivityState, ConstraintSet, Relation, StateRef};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Monitor {
    resolved: HashSet<StateRef>,
    outcomes: HashMap<String, Option<String>>, // guard → Some(value) | None=skipped
    running: HashSet<String>,
    events: Vec<TraceEvent>,
    seq: u64,
    aborted: bool,
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedRun {
    /// The logical trace (times are commit sequence numbers).
    pub trace: Trace,
    /// Activities that timed out waiting (deadlock); empty on success.
    pub stuck: Vec<String>,
}

/// Executes the constraint set with one thread per activity. `timeout`
/// bounds each wait, turning an unsound scheme into a reported deadlock
/// instead of a hung test.
pub fn execute_threaded(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    oracle: &BTreeMap<String, String>,
    timeout: Duration,
) -> ThreadedRun {
    // Static per-activity prerequisite tables.
    let mut start_prereqs: HashMap<&str, Vec<&Relation>> = HashMap::new();
    let mut finish_prereqs: HashMap<&str, Vec<&Relation>> = HashMap::new();
    for a in &cs.activities {
        start_prereqs.insert(a, Vec::new());
        finish_prereqs.insert(a, Vec::new());
    }
    for r in &cs.relations {
        if let Relation::HappenBefore { to, .. } = r {
            let bucket = match to.state {
                ActivityState::Start | ActivityState::Run => &mut start_prereqs,
                ActivityState::Finish => &mut finish_prereqs,
            };
            if let Some(v) = bucket.get_mut(to.activity.as_str()) {
                v.push(r);
            }
        }
    }
    let mut exclusive: HashMap<&str, Vec<&str>> = HashMap::new();
    for (x, y) in cs.exclusives() {
        exclusive
            .entry(x.activity.as_str())
            .or_default()
            .push(y.activity.as_str());
        exclusive
            .entry(y.activity.as_str())
            .or_default()
            .push(x.activity.as_str());
    }

    let monitor = Mutex::new(Monitor::default());
    let condvar = Condvar::new();
    let stuck = Mutex::new(Vec::<String>::new());

    let prereqs_ok = |m: &Monitor, prereqs: &[&Relation]| -> bool {
        prereqs.iter().all(|r| {
            let Relation::HappenBefore { from, cond, .. } = r else {
                return true;
            };
            match cond {
                None => m.resolved.contains(from),
                Some(c) => match m.outcomes.get(&c.on) {
                    None => false,
                    Some(Some(v)) if *v == c.value => m.resolved.contains(from),
                    Some(_) => true, // mismatched or skipped: waived
                },
            }
        })
    };

    let exec_state = |m: &Monitor, a: &str| -> Option<bool> {
        let dnf = exec.of(a);
        if dnf.is_always() {
            return Some(true);
        }
        let mut guards: HashSet<&str> = HashSet::new();
        for t in dnf.terms() {
            for c in t {
                guards.insert(&c.on);
            }
        }
        if !guards.iter().all(|g| m.outcomes.contains_key(*g)) {
            return None;
        }
        Some(dnf.terms().iter().any(|term| {
            term.iter()
                .all(|c| matches!(m.outcomes.get(&c.on), Some(Some(v)) if *v == c.value))
        }))
    };

    std::thread::scope(|scope| {
        for a in &cs.activities {
            let a = a.as_str();
            let monitor = &monitor;
            let condvar = &condvar;
            let stuck = &stuck;
            let start_prereqs = &start_prereqs;
            let finish_prereqs = &finish_prereqs;
            let exclusive = &exclusive;
            let prereqs_ok = &prereqs_ok;
            let exec_state = &exec_state;
            scope.spawn(move || {
                let mut m = monitor.lock().unwrap();
                // Phase 1: wait until startable (or skippable).
                let decision = loop {
                    if m.aborted {
                        return;
                    }
                    let starts = prereqs_ok(&m, &start_prereqs[a]);
                    match exec_state(&m, a) {
                        Some(true) if starts => {
                            let clear = exclusive
                                .get(a)
                                .map(|ps| !ps.iter().any(|p| m.running.contains(*p)))
                                .unwrap_or(true);
                            if clear {
                                break true;
                            }
                        }
                        Some(false)
                            if starts && prereqs_ok(&m, &finish_prereqs[a]) =>
                        {
                            break false;
                        }
                        _ => {}
                    }
                    let (guard, wait) = condvar.wait_timeout(m, timeout).unwrap();
                    m = guard;
                    if wait.timed_out() {
                        m.aborted = true;
                        stuck.lock().unwrap().push(a.to_string());
                        condvar.notify_all();
                        return;
                    }
                };

                if !decision {
                    // Skip: resolve all states at once.
                    let seq = m.seq;
                    m.seq += 1;
                    m.events.push(TraceEvent {
                        time: seq,
                        seq,
                        activity: a.to_string(),
                        kind: EventKind::Skip,
                        value: None,
                    });
                    for st in ActivityState::ALL {
                        m.resolved.insert(StateRef {
                            activity: a.to_string(),
                            state: st,
                        });
                    }
                    m.outcomes.insert(a.to_string(), None);
                    condvar.notify_all();
                    return;
                }

                // Start.
                let seq = m.seq;
                m.seq += 1;
                m.events.push(TraceEvent {
                    time: seq,
                    seq,
                    activity: a.to_string(),
                    kind: EventKind::Start,
                    value: None,
                });
                m.resolved.insert(StateRef::start(a));
                m.resolved.insert(StateRef::run(a));
                m.running.insert(a.to_string());
                condvar.notify_all();
                // "Work" happens here, outside the lock.
                drop(m);
                std::thread::yield_now();
                let mut m = monitor.lock().unwrap();
                // Phase 2: wait for finish-side prerequisites.
                while !prereqs_ok(&m, &finish_prereqs[a]) {
                    if m.aborted {
                        return;
                    }
                    let (guard, wait) = condvar.wait_timeout(m, timeout).unwrap();
                    m = guard;
                    if wait.timed_out() {
                        m.aborted = true;
                        stuck.lock().unwrap().push(a.to_string());
                        condvar.notify_all();
                        return;
                    }
                }
                let value = cs.domains.contains_key(a).then(|| {
                    oracle
                        .get(a)
                        .cloned()
                        .unwrap_or_else(|| cs.domains[a][0].clone())
                });
                let seq = m.seq;
                m.seq += 1;
                m.events.push(TraceEvent {
                    time: seq,
                    seq,
                    activity: a.to_string(),
                    kind: EventKind::Finish,
                    value: value.clone(),
                });
                m.resolved.insert(StateRef::finish(a));
                m.running.remove(a);
                m.outcomes
                    .insert(a.to_string(), Some(value.unwrap_or_else(|| "done".into())));
                condvar.notify_all();
            });
        }
    });

    let m = monitor.into_inner().unwrap();
    ThreadedRun {
        trace: Trace { events: m.events },
        stuck: stuck.into_inner().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Condition, Origin};

    fn before(a: &str, b: &str) -> Relation {
        Relation::before(StateRef::finish(a), StateRef::start(b), Origin::Data)
    }

    fn run(cs: &ConstraintSet, oracle: &[(&str, &str)]) -> ThreadedRun {
        let exec = ExecConditions::derive(cs);
        let oracle: BTreeMap<String, String> = oracle
            .iter()
            .map(|(g, v)| (g.to_string(), v.to_string()))
            .collect();
        execute_threaded(cs, &exec, &oracle, Duration::from_secs(5))
    }

    #[test]
    fn chain_order_holds_under_real_threads() {
        let mut cs = ConstraintSet::new("chain");
        for a in ["a", "b", "c", "d", "e"] {
            cs.add_activity(a);
        }
        for w in ["a", "b", "c", "d", "e"].windows(2) {
            cs.push(before(w[0], w[1]));
        }
        let r = run(&cs, &[]);
        assert!(r.stuck.is_empty());
        assert!(r.trace.verify(&cs).is_empty());
    }

    #[test]
    fn branch_skip_propagates() {
        let mut cs = ConstraintSet::new("branch");
        for a in ["g", "x", "x2", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x2"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(before("x", "x2"));
        cs.push(before("x2", "j"));
        cs.push(before("y", "j"));
        let r = run(&cs, &[("g", "F")]);
        assert!(r.stuck.is_empty(), "stuck: {:?}", r.stuck);
        assert!(r.trace.skipped("x") && r.trace.skipped("x2"));
        assert!(r.trace.executed("y") && r.trace.executed("j"));
        assert!(r.trace.verify(&cs).is_empty());
    }

    #[test]
    fn deadlock_times_out_with_names() {
        let mut cs = ConstraintSet::new("dead");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(before("a", "b"));
        cs.push(before("b", "a"));
        let exec = ExecConditions::derive(&cs);
        let r = execute_threaded(&cs, &exec, &BTreeMap::new(), Duration::from_millis(100));
        assert!(!r.stuck.is_empty());
    }

    #[test]
    fn exclusive_never_overlaps() {
        let mut cs = ConstraintSet::new("excl");
        for a in ["p", "q", "r"] {
            cs.add_activity(a);
        }
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        cs.push(Relation::Exclusive {
            a: StateRef::run("q"),
            b: StateRef::run("r"),
            origin: Origin::Cooperation,
        });
        for _ in 0..20 {
            let r = run(&cs, &[]);
            assert!(r.stuck.is_empty());
            assert!(r.trace.verify_exclusives(&cs).is_empty());
        }
    }

    #[test]
    fn repeated_runs_all_verify() {
        // Nondeterministic interleavings, every trace must satisfy the
        // constraints.
        let mut cs = ConstraintSet::new("diamond");
        for a in ["a", "b", "c", "d"] {
            cs.add_activity(a);
        }
        for (f, t) in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")] {
            cs.push(before(f, t));
        }
        for _ in 0..50 {
            let r = run(&cs, &[]);
            assert!(r.stuck.is_empty());
            assert!(r.trace.verify(&cs).is_empty());
        }
    }
}
