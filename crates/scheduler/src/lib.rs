//! # dscweaver-scheduler
//!
//! The dataflow scheduling engine (§1: "dependencies are explicitly
//! modeled to guide activity scheduling") and its baselines:
//!
//! * [`engine`] — a discrete-event simulator executing constraint sets in
//!   virtual time, with dead-path elimination, Exclusive runtime checking
//!   (§4.2) and a constraint-check counter (the "maintenance cost" the
//!   optimization reduces);
//! * [`constructs`] — the sequencing-construct baseline: Figure-2-style
//!   process structure converted to (over-specified) constraints, run on
//!   the same engine;
//! * [`threaded`] — a real concurrent executor (scoped `std::thread`s +
//!   a `std::sync` monitor) honoring the same constraints;
//! * [`trace`] — traces, metrics and post-hoc verification of *any*
//!   constraint set against a trace (the optimizer's correctness oracle).

#![warn(missing_docs)]

pub mod conformance;
pub mod constructs;
pub mod engine;
pub mod threaded;
pub mod trace;

pub use conformance::{check_all_conformance, check_conformance};
pub use constructs::{structural_constraints, StructuralError};
pub use engine::{simulate, simulate_rescan_baseline, DurationModel, Schedule, SimConfig};
pub use threaded::{execute_threaded, ThreadedRun};
pub use trace::{EventKind, Time, Trace, TraceEvent, Violation};
