//! # dscweaver-scheduler
//!
//! The dataflow scheduling engine (§1: "dependencies are explicitly
//! modeled to guide activity scheduling") and its baselines:
//!
//! * [`engine`] — a discrete-event simulator executing constraint sets in
//!   virtual time, with dead-path elimination, Exclusive runtime checking
//!   (§4.2) and a constraint-check counter (the "maintenance cost" the
//!   optimization reduces); [`PreparedSchedule`] compiles one constraint
//!   set's indexes for repeated simulation under different branch oracles
//!   (monitoring replay);
//! * [`constructs`] — the sequencing-construct baseline: Figure-2-style
//!   process structure converted to (over-specified) constraints, run on
//!   the same engine;
//! * [`threaded`] — a real concurrent executor (scoped `std::thread`s +
//!   a `std::sync` monitor) honoring the same constraints;
//! * [`trace`] — traces, metrics and post-hoc verification of *any*
//!   constraint set against a trace (the optimizer's correctness oracle).
//!
//! ```
//! use dscweaver_core::ExecConditions;
//! use dscweaver_dscl::{ConstraintSet, Origin, Relation, StateRef};
//! use dscweaver_scheduler::{engine::PreparedSchedule, simulate, SimConfig};
//!
//! // a → b → c in series, unit durations.
//! let mut cs = ConstraintSet::new("chain");
//! for a in ["a", "b", "c"] {
//!     cs.add_activity(a);
//! }
//! cs.push(Relation::before(StateRef::finish("a"), StateRef::start("b"), Origin::Data));
//! cs.push(Relation::before(StateRef::finish("b"), StateRef::start("c"), Origin::Data));
//!
//! let exec = ExecConditions::derive(&cs);
//! let config = SimConfig::default();
//! // One-shot entry point and the prepared session agree bit for bit.
//! let fresh = simulate(&cs, &exec, &config);
//! let session = PreparedSchedule::new(&cs, &exec);
//! let replay = session.run(&config);
//! assert!(fresh.completed());
//! assert_eq!(format!("{:?}", replay.trace), format!("{:?}", fresh.trace));
//! assert_eq!(fresh.trace.makespan(), 3);
//! ```

#![warn(missing_docs)]

pub mod conformance;
pub mod constructs;
pub mod engine;
pub mod monitor;
pub mod threaded;
pub mod trace;

pub use conformance::{check_all_conformance, check_conformance, occurrence_point};
pub use monitor::{
    oracle_verdicts, InstanceId, MonitorConfig, MonitorError, MonitorEvent, MonitorPhase,
    MonitorProgram, MonitorState, MonitorStats, Verdict, VerdictKind,
};
pub use constructs::{structural_constraints, StructuralError};
pub use engine::{
    simulate, simulate_rescan_baseline, DurationModel, PreparedSchedule, Schedule, ScheduleTables,
    SimConfig,
};
pub use threaded::{execute_threaded, ThreadedRun};
pub use trace::{EventKind, Time, Trace, TraceEvent, Violation};
