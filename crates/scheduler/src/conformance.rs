//! Conversation conformance: does an execution trace respect each partner
//! service's WSCL conversation?
//!
//! This closes the loop on the §1 motivation — a state-aware service
//! "can now submit [its invocation constraint] as a service dependency"
//! — by checking, after the fact, that the schedule actually honored the
//! submitted conversations: for every conversation transition `x → y`
//! whose interactions both occurred, the process-side event bound to `x`
//! happened before the one bound to `y` (assuming ordered message
//! delivery, as the translation does).
//!
//! Event mapping: a `Receive` interaction (service input port) occurs when
//! the bound *invoke* activity finishes (the request is on the wire); a
//! `Send` interaction (callback) occurs when the bound *receive* activity
//! starts (the process observes the reply).

use crate::trace::{Trace, Violation};
use dscweaver_dscl::ActivityState;
use dscweaver_wscl::{Conversation, InteractionKind, ServiceBinding};
use std::collections::HashMap;

/// The process-side occurrence point of an interaction: which activity,
/// and which life-cycle edge of it, marks the interaction as having
/// happened. A `Receive` interaction (service input port) occurs when the
/// bound *invoke* activity **finishes** (the request is on the wire); a
/// `Send` interaction (callback) occurs when the bound *receive* activity
/// **starts** (the process observes the reply). `None` when the
/// interaction is unknown or unbound.
///
/// This mapping is the single source of truth shared by the post-hoc
/// checker below and the streaming monitor's program compiler
/// (`crate::monitor`), so the two can never drift apart.
pub fn occurrence_point<'a>(
    conv: &Conversation,
    binding: &'a ServiceBinding,
    interaction_id: &str,
) -> Option<(&'a str, ActivityState)> {
    let interaction = conv.interaction(interaction_id)?;
    match interaction.kind {
        InteractionKind::Receive => binding
            .invokers
            .get(interaction_id)
            .map(|act| (act.as_str(), ActivityState::Finish)),
        InteractionKind::Send => binding
            .receivers
            .get(interaction_id)
            .map(|act| (act.as_str(), ActivityState::Start)),
    }
}

/// Checks one conversation against a trace. Interactions whose bound
/// activity was skipped (dead path) or never bound are treated as
/// not-occurred; transitions involving them are vacuous.
///
/// Occurrences are resolved once per interaction id up front — not once
/// per transition endpoint — so a conversation with many transitions over
/// few interactions costs one trace scan per interaction and zero
/// allocations per transition.
pub fn check_conformance(
    trace: &Trace,
    conv: &Conversation,
    binding: &ServiceBinding,
) -> Vec<Violation> {
    // Memoized occurrence per interaction id for this (trace, conv) pair.
    let mut occ: HashMap<&str, Option<(u64, u64)>> =
        HashMap::with_capacity(conv.interactions.len());
    for i in &conv.interactions {
        let t = occurrence_point(conv, binding, &i.id).and_then(|(act, state)| {
            if trace.skipped(act) {
                return None;
            }
            trace.occurrence_of(act, state)
        });
        occ.insert(i.id.as_str(), t);
    }
    let occurrence =
        |interaction_id: &str| -> Option<(u64, u64)> { *occ.get(interaction_id)? };

    let mut violations = Vec::new();
    for (x, y) in &conv.transitions {
        if let (Some(tx), Some(ty)) = (occurrence(x.as_str()), occurrence(y.as_str())) {
            if tx > ty {
                violations.push(Violation {
                    relation: format!("{}: {x} -> {y}", conv.name),
                    reason: format!(
                        "interaction '{x}' at t={},#{} but '{y}' at t={},#{}",
                        tx.0, tx.1, ty.0, ty.1
                    ),
                });
            }
        }
    }
    violations
}

/// Checks a batch of conversations.
pub fn check_all_conformance(
    trace: &Trace,
    conversations: &[(Conversation, ServiceBinding)],
) -> Vec<Violation> {
    conversations
        .iter()
        .flat_map(|(c, b)| check_conformance(trace, c, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, TraceEvent};

    fn purchase_conv() -> (Conversation, ServiceBinding) {
        (
            Conversation::new("Purchase")
                .receive("port1", "PurchaseOrder")
                .receive("port2", "ShippingInvoice")
                .send("callback", "OrderInvoice")
                .transition("port1", "port2")
                .transition("port2", "callback"),
            ServiceBinding::new()
                .invoke("port1", "invA")
                .invoke("port2", "invB")
                .receive("callback", "recC"),
        )
    }

    fn ev(time: u64, seq: u64, activity: &str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time,
            seq,
            activity: activity.into(),
            kind,
            value: None,
        }
    }

    #[test]
    fn conformant_trace_passes() {
        let t = Trace {
            events: vec![
                ev(0, 0, "invA", EventKind::Start),
                ev(1, 1, "invA", EventKind::Finish),
                ev(2, 2, "invB", EventKind::Start),
                ev(3, 3, "invB", EventKind::Finish),
                ev(9, 4, "recC", EventKind::Start),
                ev(10, 5, "recC", EventKind::Finish),
            ],
        };
        let (c, b) = purchase_conv();
        assert!(check_conformance(&t, &c, &b).is_empty());
    }

    #[test]
    fn port_order_violation_detected() {
        // invB's request leaves before invA's — port2 would see its
        // document first.
        let t = Trace {
            events: vec![
                ev(0, 0, "invB", EventKind::Start),
                ev(1, 1, "invB", EventKind::Finish),
                ev(2, 2, "invA", EventKind::Start),
                ev(3, 3, "invA", EventKind::Finish),
                ev(9, 4, "recC", EventKind::Start),
                ev(10, 5, "recC", EventKind::Finish),
            ],
        };
        let (c, b) = purchase_conv();
        let v = check_conformance(&t, &c, &b);
        assert_eq!(v.len(), 1);
        assert!(v[0].relation.contains("port1 -> port2"));
    }

    #[test]
    fn skipped_interactions_are_vacuous() {
        let t = Trace {
            events: vec![
                ev(0, 0, "invA", EventKind::Start),
                ev(1, 1, "invA", EventKind::Finish),
                ev(2, 2, "invB", EventKind::Skip),
                ev(3, 3, "recC", EventKind::Skip),
            ],
        };
        let (c, b) = purchase_conv();
        assert!(check_conformance(&t, &c, &b).is_empty());
    }

    #[test]
    fn callback_before_request_detected() {
        let t = Trace {
            events: vec![
                ev(0, 0, "recC", EventKind::Start),
                ev(1, 1, "invA", EventKind::Start),
                ev(2, 2, "invA", EventKind::Finish),
                ev(3, 3, "invB", EventKind::Start),
                ev(4, 4, "invB", EventKind::Finish),
                ev(5, 5, "recC", EventKind::Finish),
            ],
        };
        let (c, b) = purchase_conv();
        let v = check_conformance(&t, &c, &b);
        assert_eq!(v.len(), 1);
        assert!(v[0].relation.contains("port2 -> callback"));
    }
}
