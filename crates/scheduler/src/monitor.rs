//! Fleet-scale streaming conformance monitoring: millions of live process
//! instances advancing over one compiled constraint program.
//!
//! The paper's §5 runtime argument is that a woven ASC makes each
//! instance's synchronization state *cheap to track*. This module takes
//! that seriously at fleet scale: a [`MonitorProgram`] compiles a
//! constraint set plus its WSCL conversations once — activity names
//! interned to dense ids, HappenBefore prerequisites flattened to CSR
//! arrays, Exclusive membership packed into 64-bit partner masks,
//! conversation transitions resolved through the same
//! interaction→occurrence mapping the post-hoc checker uses
//! ([`crate::conformance::occurrence_point`]) — and a [`MonitorState`]
//! then tracks every live instance as a tiny *cursor* over that program.
//!
//! ## Struct-of-arrays cursors
//!
//! Instance state is laid out as flat slabs indexed by slot row, not
//! per-instance structs: remaining-dependency counters (`Vec<u32>`, one
//! lane per *consumer slot* of the program), occurrence bitsets (two bits
//! per activity: its start and finish points), one Exclusive running-mask
//! word, and per-conversation interaction watermark bitsets. A live
//! instance costs a fixed few dozen bytes; retired instances return their
//! row to a free list, so memory is bounded by the *peak live* fleet, not
//! the stream length.
//!
//! ## Batch ingestion and determinism
//!
//! [`MonitorState::ingest`] takes a batch of [`MonitorEvent`]s, routes
//! them to shards by `instance % shards`, fans the shards out on
//! [`dscweaver_graph::par_shards`] and merges the per-shard verdicts by
//! the event's position in the batch. Because every violation is detected
//! at the *later* event of its pair, the verdict sequence over a whole
//! stream is identical for any batch size, shard count or thread count —
//! the same merge discipline as the wavefront engines.
//!
//! Verdicts carry the exact relation renderings of the post-hoc oracles
//! ([`Trace::verify`], [`Trace::verify_exclusives`],
//! [`check_conformance`](crate::conformance::check_conformance)), and
//! [`oracle_verdicts`] replays a stream through those oracles
//! instance-at-a-time so tests and benchmarks can pin the streaming path
//! bit-for-bit against the reference semantics.
//!
//! Streams are expected to be *life-cycle well-formed* per instance: each
//! activity starts before it finishes and appears once. Ordering between
//! different activities is exactly what the monitor checks; duplicate
//! events for a live instance are ignored, and an instance retires (its
//! row recycled) after its `2 × n_activities`-th event.

use crate::conformance::{check_all_conformance, occurrence_point};
use crate::trace::{EventKind, Trace, TraceEvent};
use dscweaver_dscl::{ActivityState, ConstraintSet, Relation};
use dscweaver_graph::{effective_threads, par_shards, FxHashMap};
use dscweaver_obs as obs;
use dscweaver_wscl::{Conversation, ServiceBinding};

/// A live process instance's identity on the stream.
pub type InstanceId = u32;

const NONE: u32 = u32::MAX;

/// Batches below this size are processed inline even when the state has
/// worker threads: spawning scoped threads per tiny batch would dominate.
/// The verdict sequence is identical either way.
const PAR_INGEST_MIN: usize = 4096;

/// Which life-cycle edge of an activity an event reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum MonitorPhase {
    /// The activity started (resolves its `S` and `R` state points).
    Start = 0,
    /// The activity finished (resolves its `F` state point).
    Finish = 1,
}

/// One stream event: instance × activity × life-cycle edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MonitorEvent {
    /// Which process instance.
    pub instance: InstanceId,
    /// Compiled activity id (see [`MonitorProgram::act_id`]).
    pub act: u16,
    /// Start or finish.
    pub phase: MonitorPhase,
}

/// What kind of violation a verdict reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum VerdictKind {
    /// A HappenBefore constraint's consumer fired before a producer.
    Ordering,
    /// Two Exclusive activities' run intervals overlapped.
    Exclusive,
    /// A conversation transition `x → y` observed `y` before `x`.
    Conversation,
}

/// One online violation report. `relation` is rendered exactly as the
/// post-hoc oracle renders the same violation, so streaming and batch
/// verdicts compare as plain strings.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Verdict {
    /// The violating instance.
    pub instance: InstanceId,
    /// Violation category.
    pub kind: VerdictKind,
    /// The violated relation, oracle-rendered.
    pub relation: String,
}

/// Compilation failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonitorError {
    /// More than `u16::MAX + 1` activities.
    TooManyActivities(usize),
    /// More than 64 distinct activities participate in Exclusive
    /// relations (the running set is one mask word per instance).
    TooManyExclusiveMembers(usize),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::TooManyActivities(n) => {
                write!(f, "monitor supports at most 65536 activities, got {n}")
            }
            MonitorError::TooManyExclusiveMembers(n) => {
                write!(f, "monitor supports at most 64 exclusive activities, got {n}")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

/// The compiled, shared, read-only program every instance cursor runs
/// over. Compile once per (constraint set, conversations) pair; share
/// across any number of [`MonitorState`]s.
#[derive(Clone, Debug)]
pub struct MonitorProgram {
    /// Activity names in id order (sorted — `ConstraintSet::activities`
    /// is a `BTreeSet`, so ids are stable across compiles).
    acts: Vec<String>,
    act_ix: FxHashMap<String, u16>,

    // HappenBefore: consumer points with prerequisites get a counter
    // *slot*; prerequisites per slot and dependent slots per producer
    // point are CSR-flattened.
    slot_of_point: Vec<u32>,
    slot_prereq_index: Vec<u32>,
    prereq_point: Vec<u32>,
    prereq_relation: Vec<String>,
    template: Vec<u32>,
    dep_index: Vec<u32>,
    dep_slot: Vec<u32>,

    // Exclusive: member index per activity, partner mask + ordered
    // partner list (with oracle-rendered pair relations) per member.
    excl_member: Vec<u32>,
    excl_mask: Vec<u64>,
    excl_partners: Vec<Vec<(u32, Vec<String>)>>,
    excl_pairs: Vec<(u16, u16)>,

    // Conversations: interactions flattened to global ids; which
    // interactions occur at each point, and each interaction's successor
    // transitions with oracle-rendered relations.
    point_inter_index: Vec<u32>,
    point_inter: Vec<u32>,
    succ_index: Vec<u32>,
    succ_inter: Vec<u32>,
    succ_relation: Vec<String>,
    inter_point: Vec<u32>,

    occ_words: usize,
    conv_words: usize,
    events_per_instance: u32,
}

impl MonitorProgram {
    /// Compiles `cs` + bound conversations into a monitor program.
    ///
    /// Mirroring the post-hoc oracles, the compiler *skips* whatever they
    /// treat as vacuous on a complete, skip-free stream: conditional
    /// HappenBefore relations (streamed finishes carry no guard value),
    /// relations whose endpoints are not activities of `cs` (external
    /// service nodes), Exclusive relations over missing or identical
    /// activities, and interactions unbound or bound to activities
    /// outside `cs`.
    pub fn compile(
        cs: &ConstraintSet,
        conversations: &[(Conversation, ServiceBinding)],
    ) -> Result<MonitorProgram, MonitorError> {
        let _span = obs::span_with("monitor.compile", || cs.name.clone());
        let acts: Vec<String> = cs.activities.iter().cloned().collect();
        if acts.len() > u16::MAX as usize + 1 {
            return Err(MonitorError::TooManyActivities(acts.len()));
        }
        let act_ix: FxHashMap<String, u16> = acts
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i as u16))
            .collect();
        let n_points = acts.len() * 2;
        let point = |act: u16, state: ActivityState| -> u32 {
            let phase = match state {
                ActivityState::Start | ActivityState::Run => 0,
                ActivityState::Finish => 1,
            };
            act as u32 * 2 + phase
        };

        // --- HappenBefore prerequisites, bucketed per consumer point.
        let mut buckets: Vec<Vec<(u32, String)>> = vec![Vec::new(); n_points];
        for r in cs.happen_befores() {
            let Relation::HappenBefore { from, to, cond, .. } = r else {
                unreachable!("filtered to HappenBefore");
            };
            if cond.is_some() {
                continue;
            }
            let (Some(&fa), Some(&ta)) =
                (act_ix.get(&from.activity), act_ix.get(&to.activity))
            else {
                continue;
            };
            let producer = point(fa, from.state);
            let consumer = point(ta, to.state);
            buckets[consumer as usize].push((producer, r.to_string()));
        }
        let mut slot_of_point = vec![NONE; n_points];
        let mut slot_prereq_index = vec![0u32];
        let mut prereq_point = Vec::new();
        let mut prereq_relation = Vec::new();
        let mut template = Vec::new();
        let mut deps: Vec<Vec<u32>> = vec![Vec::new(); n_points];
        for (p, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let slot = template.len() as u32;
            slot_of_point[p] = slot;
            template.push(bucket.len() as u32);
            for (producer, relation) in bucket {
                deps[producer as usize].push(slot);
                prereq_point.push(producer);
                prereq_relation.push(relation);
            }
            slot_prereq_index.push(prereq_point.len() as u32);
        }
        let mut dep_index = vec![0u32];
        let mut dep_slot = Vec::new();
        for d in deps {
            dep_slot.extend(d);
            dep_index.push(dep_slot.len() as u32);
        }

        // --- Exclusives: register members (first-seen order), pair
        // relation strings keyed by unordered member pair.
        let mut member_of: FxHashMap<u16, u32> = FxHashMap::default();
        let mut members: Vec<u16> = Vec::new();
        let mut pair_rels: std::collections::BTreeMap<(u32, u32), Vec<String>> =
            std::collections::BTreeMap::new();
        for (a, b) in cs.exclusives() {
            let (Some(&aa), Some(&ba)) =
                (act_ix.get(&a.activity), act_ix.get(&b.activity))
            else {
                continue;
            };
            if aa == ba {
                continue;
            }
            let mut member = |act: u16| -> u32 {
                *member_of.entry(act).or_insert_with(|| {
                    members.push(act);
                    members.len() as u32 - 1
                })
            };
            let (ma, mb) = (member(aa), member(ba));
            pair_rels
                .entry((ma.min(mb), ma.max(mb)))
                .or_default()
                .push(format!("{a} >< {b}"));
        }
        if members.len() > 64 {
            return Err(MonitorError::TooManyExclusiveMembers(members.len()));
        }
        let mut excl_member = vec![NONE; acts.len()];
        for (m, &act) in members.iter().enumerate() {
            excl_member[act as usize] = m as u32;
        }
        let mut excl_mask = vec![0u64; members.len()];
        let mut excl_partners: Vec<Vec<(u32, Vec<String>)>> = vec![Vec::new(); members.len()];
        let mut excl_pairs = Vec::new();
        for (&(m1, m2), rels) in &pair_rels {
            excl_mask[m1 as usize] |= 1 << m2;
            excl_mask[m2 as usize] |= 1 << m1;
            excl_partners[m1 as usize].push((m2, rels.clone()));
            excl_partners[m2 as usize].push((m1, rels.clone()));
            excl_pairs.push((members[m1 as usize], members[m2 as usize]));
        }
        for p in &mut excl_partners {
            p.sort_by_key(|(m, _)| *m);
        }

        // --- Conversations: flatten interactions that have an occurrence
        // point inside the activity table, via the shared mapping.
        let mut inter_point: Vec<u32> = Vec::new();
        let mut point_inters: Vec<Vec<u32>> = vec![Vec::new(); n_points];
        let mut inter_ids: Vec<FxHashMap<&str, u32>> = Vec::with_capacity(conversations.len());
        for (conv, binding) in conversations {
            let mut ids: FxHashMap<&str, u32> = FxHashMap::default();
            for i in &conv.interactions {
                let Some((act, state)) = occurrence_point(conv, binding, &i.id) else {
                    continue;
                };
                let Some(&a) = act_ix.get(act) else { continue };
                let g = inter_point.len() as u32;
                let p = point(a, state);
                inter_point.push(p);
                point_inters[p as usize].push(g);
                ids.insert(i.id.as_str(), g);
            }
            inter_ids.push(ids);
        }
        let mut succs: Vec<Vec<(u32, String)>> = vec![Vec::new(); inter_point.len()];
        for (ci, (conv, _)) in conversations.iter().enumerate() {
            for (x, y) in &conv.transitions {
                let (Some(&gx), Some(&gy)) =
                    (inter_ids[ci].get(x.as_str()), inter_ids[ci].get(y.as_str()))
                else {
                    continue;
                };
                succs[gx as usize].push((gy, format!("{}: {x} -> {y}", conv.name)));
            }
        }
        let mut point_inter_index = vec![0u32];
        let mut point_inter = Vec::new();
        for pi in point_inters {
            point_inter.extend(pi);
            point_inter_index.push(point_inter.len() as u32);
        }
        let mut succ_index = vec![0u32];
        let mut succ_inter = Vec::new();
        let mut succ_relation = Vec::new();
        for s in succs {
            for (y, rel) in s {
                succ_inter.push(y);
                succ_relation.push(rel);
            }
            succ_index.push(succ_inter.len() as u32);
        }

        let events_per_instance = n_points as u32;
        Ok(MonitorProgram {
            occ_words: n_points.div_ceil(64),
            conv_words: inter_point.len().div_ceil(64),
            acts,
            act_ix,
            slot_of_point,
            slot_prereq_index,
            prereq_point,
            prereq_relation,
            template,
            dep_index,
            dep_slot,
            excl_member,
            excl_mask,
            excl_partners,
            excl_pairs,
            point_inter_index,
            point_inter,
            succ_index,
            succ_inter,
            succ_relation,
            inter_point,
            events_per_instance,
        })
    }

    /// Number of compiled activities.
    pub fn n_activities(&self) -> usize {
        self.acts.len()
    }

    /// Number of consumer counter slots per instance.
    pub fn n_slots(&self) -> usize {
        self.template.len()
    }

    /// The activity name behind a compiled id.
    pub fn activity_name(&self, act: u16) -> &str {
        &self.acts[act as usize]
    }

    /// The compiled id of an activity name.
    pub fn act_id(&self, name: &str) -> Option<u16> {
        self.act_ix.get(name).copied()
    }

    /// Events a complete instance emits (start + finish per activity) —
    /// the retirement threshold.
    pub fn events_per_instance(&self) -> u32 {
        self.events_per_instance
    }

    /// A state point id: `2 × act + phase`.
    pub fn point_of(&self, act: u16, phase: MonitorPhase) -> u32 {
        act as u32 * 2 + phase as u32
    }

    /// Inverse of [`MonitorProgram::point_of`].
    pub fn split_point(&self, point: u32) -> (u16, MonitorPhase) {
        let phase = if point & 1 == 0 {
            MonitorPhase::Start
        } else {
            MonitorPhase::Finish
        };
        ((point / 2) as u16, phase)
    }

    /// Every compiled `(producer point, consumer point)` prerequisite
    /// pair, in compile order (violation-injection hook).
    pub fn ordering_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.prereq_point.len());
        for (p, &slot) in self.slot_of_point.iter().enumerate() {
            if slot == NONE {
                continue;
            }
            let (s, e) = self.prereq_range(slot);
            for k in s..e {
                out.push((self.prereq_point[k], p as u32));
            }
        }
        out
    }

    /// Every compiled Exclusive activity pair (violation-injection hook).
    pub fn exclusive_pairs(&self) -> &[(u16, u16)] {
        &self.excl_pairs
    }

    /// Every compiled conversation transition as
    /// `(point of x, point of y)` (violation-injection hook).
    pub fn conversation_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.succ_inter.len());
        for (x, &px) in self.inter_point.iter().enumerate() {
            let (s, e) = self.succ_range(x);
            for k in s..e {
                out.push((px, self.inter_point[self.succ_inter[k] as usize]));
            }
        }
        out
    }

    fn prereq_range(&self, slot: u32) -> (usize, usize) {
        (
            self.slot_prereq_index[slot as usize] as usize,
            self.slot_prereq_index[slot as usize + 1] as usize,
        )
    }

    fn dep_range(&self, point: u32) -> (usize, usize) {
        (
            self.dep_index[point as usize] as usize,
            self.dep_index[point as usize + 1] as usize,
        )
    }

    fn point_inter_range(&self, point: u32) -> (usize, usize) {
        (
            self.point_inter_index[point as usize] as usize,
            self.point_inter_index[point as usize + 1] as usize,
        )
    }

    fn succ_range(&self, inter: usize) -> (usize, usize) {
        (
            self.succ_index[inter] as usize,
            self.succ_index[inter + 1] as usize,
        )
    }
}

/// Knobs for a [`MonitorState`].
#[derive(Clone, Debug, Default)]
pub struct MonitorConfig {
    /// Worker threads for batch fan-out: `0` = auto (capped at 8),
    /// `1` = sequential. Verdicts are bit-identical regardless.
    pub threads: usize,
    /// Instance shards (`0` = one per worker thread). Instances route to
    /// `instance % shards`; the shard count affects slab layout only,
    /// never verdicts.
    pub shards: usize,
    /// Expected live-instance capacity (total, spread over shards) to
    /// pre-size the slabs. `0` grows on demand.
    pub capacity: usize,
}

/// Aggregate state/throughput counters of a [`MonitorState`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MonitorStats {
    /// Instances currently live (allocated, not yet retired).
    pub live: usize,
    /// High-water mark of `live`.
    pub peak_live: usize,
    /// Instances retired (completed their event budget; row recycled).
    pub retired: u64,
    /// Slab rows ever allocated across shards (≥ peak live; rows are
    /// recycled, never freed).
    pub slab_rows: usize,
    /// Events ingested.
    pub events: u64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Estimated resident bytes of the instance slabs + routing tables.
    pub bytes: usize,
}

struct Shard {
    map: FxHashMap<InstanceId, u32>,
    free: Vec<u32>,
    rows: u32,
    remaining: Vec<u32>,
    occurred: Vec<u64>,
    excl_running: Vec<u64>,
    conv_seen: Vec<u64>,
    seen: Vec<u32>,
    live: usize,
    peak_live: usize,
    retired: u64,
}

impl Shard {
    fn with_capacity(rows: usize, p: &MonitorProgram) -> Shard {
        let mut map = FxHashMap::default();
        map.reserve(rows);
        Shard {
            map,
            free: Vec::new(),
            rows: 0,
            remaining: Vec::with_capacity(rows * p.n_slots()),
            occurred: Vec::with_capacity(rows * p.occ_words),
            excl_running: Vec::with_capacity(rows),
            conv_seen: Vec::with_capacity(rows * p.conv_words),
            seen: Vec::with_capacity(rows),
            live: 0,
            peak_live: 0,
            retired: 0,
        }
    }

    fn alloc_row(&mut self, p: &MonitorProgram) -> u32 {
        if let Some(r) = self.free.pop() {
            let r_us = r as usize;
            let ns = p.n_slots();
            self.remaining[r_us * ns..(r_us + 1) * ns].copy_from_slice(&p.template);
            self.occurred[r_us * p.occ_words..(r_us + 1) * p.occ_words].fill(0);
            self.excl_running[r_us] = 0;
            self.conv_seen[r_us * p.conv_words..(r_us + 1) * p.conv_words].fill(0);
            self.seen[r_us] = 0;
            return r;
        }
        let r = self.rows;
        self.rows += 1;
        self.remaining.extend_from_slice(&p.template);
        self.occurred.extend(std::iter::repeat(0u64).take(p.occ_words));
        self.excl_running.push(0);
        self.conv_seen.extend(std::iter::repeat(0u64).take(p.conv_words));
        self.seen.push(0);
        r
    }

    fn advance(
        &mut self,
        p: &MonitorProgram,
        idx: u32,
        ev: &MonitorEvent,
        out: &mut Vec<(u32, Verdict)>,
    ) {
        debug_assert!((ev.act as usize) < p.n_activities());
        let row = if let Some(&r) = self.map.get(&ev.instance) {
            r
        } else {
            let r = self.alloc_row(p);
            self.map.insert(ev.instance, r);
            self.live += 1;
            self.peak_live = self.peak_live.max(self.live);
            r
        };
        let row_us = row as usize;
        let point = p.point_of(ev.act, ev.phase);

        // Duplicate life-cycle event for a live instance: ignore.
        let ow = row_us * p.occ_words + (point as usize >> 6);
        let obit = 1u64 << (point & 63);
        if self.occurred[ow] & obit != 0 {
            return;
        }

        // 1. Ordering: a consumer with unsatisfied prerequisites names
        // every producer that has not occurred yet. The counter is the
        // fast path; the enumeration only runs on actual violations.
        let slot = p.slot_of_point[point as usize];
        let base = row_us * p.n_slots();
        if slot != NONE && self.remaining[base + slot as usize] > 0 {
            let (s, e) = p.prereq_range(slot);
            for k in s..e {
                let pp = p.prereq_point[k] as usize;
                if self.occurred[row_us * p.occ_words + (pp >> 6)] & (1u64 << (pp & 63)) == 0 {
                    out.push((
                        idx,
                        Verdict {
                            instance: ev.instance,
                            kind: VerdictKind::Ordering,
                            relation: p.prereq_relation[k].clone(),
                        },
                    ));
                }
            }
        }
        self.occurred[ow] |= obit;

        // 2. This point produces: release its dependents' counters.
        let (ds, de) = p.dep_range(point);
        for k in ds..de {
            let s = p.dep_slot[k] as usize;
            debug_assert!(self.remaining[base + s] > 0);
            self.remaining[base + s] -= 1;
        }

        // 3. Exclusive co-occurrence: detected at the later start.
        let m = p.excl_member[ev.act as usize];
        if m != NONE {
            match ev.phase {
                MonitorPhase::Start => {
                    let running = self.excl_running[row_us];
                    if running & p.excl_mask[m as usize] != 0 {
                        for (partner, rels) in &p.excl_partners[m as usize] {
                            if running & (1u64 << partner) != 0 {
                                for rel in rels {
                                    out.push((
                                        idx,
                                        Verdict {
                                            instance: ev.instance,
                                            kind: VerdictKind::Exclusive,
                                            relation: rel.clone(),
                                        },
                                    ));
                                }
                            }
                        }
                    }
                    self.excl_running[row_us] |= 1u64 << m;
                }
                MonitorPhase::Finish => self.excl_running[row_us] &= !(1u64 << m),
            }
        }

        // 4. Conversation transitions: `x → y` inverted iff `y`'s
        // watermark bit is already set when `x` occurs.
        let (is_, ie) = p.point_inter_range(point);
        for k in is_..ie {
            let x = p.point_inter[k] as usize;
            let (ss, se) = p.succ_range(x);
            for j in ss..se {
                let y = p.succ_inter[j] as usize;
                if self.conv_seen[row_us * p.conv_words + (y >> 6)] & (1u64 << (y & 63)) != 0 {
                    out.push((
                        idx,
                        Verdict {
                            instance: ev.instance,
                            kind: VerdictKind::Conversation,
                            relation: p.succ_relation[j].clone(),
                        },
                    ));
                }
            }
            self.conv_seen[row_us * p.conv_words + (x >> 6)] |= 1u64 << (x & 63);
        }

        // 5. Retirement: event budget exhausted → recycle the row.
        self.seen[row_us] += 1;
        if self.seen[row_us] == p.events_per_instance {
            self.map.remove(&ev.instance);
            self.free.push(row);
            self.live -= 1;
            self.retired += 1;
        }
    }

    fn bytes(&self) -> usize {
        self.remaining.capacity() * 4
            + self.occurred.capacity() * 8
            + self.excl_running.capacity() * 8
            + self.conv_seen.capacity() * 8
            + self.seen.capacity() * 4
            + self.free.capacity() * 4
            // FxHashMap<u32, u32>: 8-byte payload plus control byte,
            // counted at its allocated capacity.
            + self.map.capacity() * 9
    }
}

/// The live fleet: sharded struct-of-arrays instance cursors over one
/// [`MonitorProgram`].
pub struct MonitorState<'p> {
    program: &'p MonitorProgram,
    threads: usize,
    shards: Vec<Shard>,
    route: Vec<Vec<u32>>,
    events: u64,
    verdicts: u64,
}

impl<'p> MonitorState<'p> {
    /// A fresh fleet over `program`.
    pub fn new(program: &'p MonitorProgram, config: &MonitorConfig) -> MonitorState<'p> {
        let threads = effective_threads(config.threads, 8);
        let nshards = if config.shards == 0 {
            threads
        } else {
            config.shards
        }
        .max(1);
        let per_shard = config.capacity.div_ceil(nshards);
        MonitorState {
            program,
            threads,
            shards: (0..nshards)
                .map(|_| Shard::with_capacity(per_shard, program))
                .collect(),
            route: vec![Vec::new(); nshards],
            events: 0,
            verdicts: 0,
        }
    }

    /// The shared program.
    pub fn program(&self) -> &'p MonitorProgram {
        self.program
    }

    /// Ingests one event batch and returns the verdicts it triggered, in
    /// batch order (ties within one event keep emission order). The
    /// concatenation of verdicts over a stream is independent of how the
    /// stream is cut into batches and of the thread/shard configuration.
    pub fn ingest(&mut self, batch: &[MonitorEvent]) -> Vec<Verdict> {
        let _span = obs::span_with("monitor.ingest", || format!("events={}", batch.len()));
        let t0 = std::time::Instant::now();
        let nshards = self.shards.len();
        let program = self.program;
        let parts: Vec<Vec<(u32, Verdict)>> = if nshards == 1 {
            let _adv = obs::span("monitor.advance");
            let shard = &mut self.shards[0];
            let mut out = Vec::new();
            for (i, ev) in batch.iter().enumerate() {
                shard.advance(program, i as u32, ev, &mut out);
            }
            vec![out]
        } else {
            for r in &mut self.route {
                r.clear();
            }
            for (i, ev) in batch.iter().enumerate() {
                self.route[ev.instance as usize % nshards].push(i as u32);
            }
            let route = &self.route;
            let threads = if batch.len() >= PAR_INGEST_MIN {
                self.threads
            } else {
                1
            };
            par_shards(threads, &mut self.shards, &|si, shard| {
                let _adv = obs::span_with("monitor.advance", || {
                    format!("shard={si} events={}", route[si].len())
                });
                let mut out = Vec::new();
                for &i in &route[si] {
                    shard.advance(program, i, &batch[i as usize], &mut out);
                }
                out
            })
        };

        let _merge = obs::span("monitor.verdicts");
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut tagged: Vec<(u32, Verdict)> = Vec::with_capacity(total);
        for p in parts {
            tagged.extend(p);
        }
        // Stable by batch position: one event's verdicts come from one
        // shard and keep their emission order.
        tagged.sort_by_key(|(i, _)| *i);
        self.events += batch.len() as u64;
        self.verdicts += tagged.len() as u64;
        obs::counter_add("monitor.events", batch.len() as u64);
        obs::counter_add("monitor.verdicts", tagged.len() as u64);
        // Metrics plane: per-batch ingest latency, instantaneous
        // throughput, and fleet occupancy (cheap sums over the shard
        // headers; all no-ops while metrics recording is off).
        if obs::metrics_enabled() {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            obs::histogram("monitor.ingest_batch").observe(dur_ns);
            if dur_ns > 0 && !batch.is_empty() {
                obs::gauge_set(
                    "monitor.events_per_sec",
                    batch.len() as f64 * 1e9 / dur_ns as f64,
                );
            }
            let (mut live, mut rows) = (0u64, 0u64);
            for sh in &self.shards {
                live += sh.live as u64;
                rows += sh.rows as u64;
            }
            obs::gauge_set("monitor.live_instances", live as f64);
            obs::gauge_set("monitor.slab_rows", rows as f64);
            obs::gauge_set(
                "monitor.slab_occupancy",
                if rows > 0 { live as f64 / rows as f64 } else { 0.0 },
            );
        }
        tagged.into_iter().map(|(_, v)| v).collect()
    }

    /// Aggregate counters and the slab-memory estimate.
    pub fn stats(&self) -> MonitorStats {
        let mut s = MonitorStats {
            events: self.events,
            verdicts: self.verdicts,
            ..MonitorStats::default()
        };
        for sh in &self.shards {
            s.live += sh.live;
            s.peak_live += sh.peak_live;
            s.retired += sh.retired;
            s.slab_rows += sh.rows as usize;
            s.bytes += sh.bytes();
        }
        s.bytes += self.route.iter().map(|r| r.capacity() * 4).sum::<usize>();
        s
    }
}

/// Replays a stream through the post-hoc oracles, instance at a time:
/// each instance's events become a [`Trace`] (time = position in the
/// instance's own stream), checked with [`Trace::verify`] (completeness
/// rows excluded — streaming completeness is retirement's job, see
/// [`MonitorStats::live`]), [`Trace::verify_exclusives`] and
/// [`check_all_conformance`]. Returns the verdicts sorted by
/// `(instance, kind, relation)` — compare against a sorted concatenation
/// of [`MonitorState::ingest`] outputs.
pub fn oracle_verdicts(
    program: &MonitorProgram,
    cs: &ConstraintSet,
    conversations: &[(Conversation, ServiceBinding)],
    events: &[MonitorEvent],
) -> Vec<Verdict> {
    let _span = obs::span("monitor.oracle");
    // Group stream positions by instance, preserving per-instance order.
    let mut idx: Vec<u32> = (0..events.len() as u32).collect();
    idx.sort_by_key(|&i| events[i as usize].instance);
    let mut out = Vec::new();
    let mut trace = Trace::default();
    let mut i = 0;
    while i < idx.len() {
        let instance = events[idx[i] as usize].instance;
        trace.events.clear();
        let mut k = 0u64;
        while i < idx.len() && events[idx[i] as usize].instance == instance {
            let ev = &events[idx[i] as usize];
            trace.events.push(TraceEvent {
                time: k,
                seq: k,
                activity: program.activity_name(ev.act).to_string(),
                kind: match ev.phase {
                    MonitorPhase::Start => EventKind::Start,
                    MonitorPhase::Finish => EventKind::Finish,
                },
                value: None,
            });
            k += 1;
            i += 1;
        }
        for v in trace.verify(cs) {
            if v.relation.starts_with("completeness(") {
                continue;
            }
            out.push(Verdict {
                instance,
                kind: VerdictKind::Ordering,
                relation: v.relation,
            });
        }
        for v in trace.verify_exclusives(cs) {
            out.push(Verdict {
                instance,
                kind: VerdictKind::Exclusive,
                relation: v.relation,
            });
        }
        for v in check_all_conformance(&trace, conversations) {
            out.push(Verdict {
                instance,
                kind: VerdictKind::Conversation,
                relation: v.relation,
            });
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Origin, StateRef};

    fn chain_cs() -> ConstraintSet {
        let mut cs = ConstraintSet::new("m");
        for a in ["a", "b", "c", "p", "q"] {
            cs.add_activity(a);
        }
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("b"),
            StateRef::start("c"),
            Origin::Data,
        ));
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        cs
    }

    fn conv() -> Vec<(Conversation, ServiceBinding)> {
        vec![(
            Conversation::new("Svc")
                .receive("port1", "D1")
                .receive("port2", "D2")
                .transition("port1", "port2"),
            ServiceBinding::new().invoke("port1", "a").invoke("port2", "b"),
        )]
    }

    fn ev(p: &MonitorProgram, instance: u32, act: &str, phase: MonitorPhase) -> MonitorEvent {
        MonitorEvent {
            instance,
            act: p.act_id(act).unwrap(),
            phase,
        }
    }

    /// A well-formed instance stream with `b` started before `a` finished
    /// (ordering violation), `q` started inside `p`'s run (exclusive
    /// violation) and — since port1 occurs at F(a), port2 at F(b) —
    /// a conversation inversion (F(b) before F(a)).
    fn violating_stream(p: &MonitorProgram, instance: u32) -> Vec<MonitorEvent> {
        use MonitorPhase::*;
        [
            ("a", Start),
            ("b", Start), // F(a) -> S(b) violated at this event
            ("b", Finish), // port2 before port1
            ("a", Finish), // port1 -> port2 inversion detected here
            ("c", Start),  // F(b) -> S(c) satisfied
            ("c", Finish),
            ("p", Start),
            ("q", Start), // exclusive co-run detected here
            ("q", Finish),
            ("p", Finish),
        ]
        .iter()
        .map(|(a, ph)| ev(p, instance, a, *ph))
        .collect()
    }

    fn clean_stream(p: &MonitorProgram, instance: u32) -> Vec<MonitorEvent> {
        use MonitorPhase::*;
        [
            ("a", Start),
            ("a", Finish),
            ("b", Start),
            ("b", Finish),
            ("c", Start),
            ("c", Finish),
            ("p", Start),
            ("p", Finish),
            ("q", Start),
            ("q", Finish),
        ]
        .iter()
        .map(|(a, ph)| ev(p, instance, a, *ph))
        .collect()
    }

    #[test]
    fn clean_instance_no_verdicts_and_retires() {
        let cs = chain_cs();
        let convs = conv();
        let p = MonitorProgram::compile(&cs, &convs).unwrap();
        let mut st = MonitorState::new(&p, &MonitorConfig::default());
        let verdicts = st.ingest(&clean_stream(&p, 7));
        assert!(verdicts.is_empty(), "{verdicts:?}");
        let stats = st.stats();
        assert_eq!(stats.live, 0);
        assert_eq!(stats.retired, 1);
        assert_eq!(stats.peak_live, 1);
    }

    #[test]
    fn all_three_verdict_kinds_detected_and_match_oracle() {
        let cs = chain_cs();
        let convs = conv();
        let p = MonitorProgram::compile(&cs, &convs).unwrap();
        let stream = violating_stream(&p, 3);
        let mut st = MonitorState::new(&p, &MonitorConfig::default());
        let mut got = st.ingest(&stream);
        assert_eq!(got.len(), 3, "{got:?}");
        assert_eq!(got[0].kind, VerdictKind::Ordering);
        assert!(got[0].relation.contains("F(a)") && got[0].relation.contains("S(b)"));
        assert_eq!(got[1].kind, VerdictKind::Conversation);
        assert!(got[1].relation.contains("port1 -> port2"));
        assert_eq!(got[2].kind, VerdictKind::Exclusive);
        assert!(got[2].relation.contains("><"));
        got.sort();
        assert_eq!(got, oracle_verdicts(&p, &cs, &convs, &stream));
    }

    #[test]
    fn verdict_stream_is_batch_size_and_thread_invariant() {
        let cs = chain_cs();
        let convs = conv();
        let p = MonitorProgram::compile(&cs, &convs).unwrap();
        // Interleave 40 instances, every third violating.
        let mut stream = Vec::new();
        let per: Vec<Vec<MonitorEvent>> = (0..40u32)
            .map(|i| {
                if i % 3 == 0 {
                    violating_stream(&p, i)
                } else {
                    clean_stream(&p, i)
                }
            })
            .collect();
        for k in 0..per[0].len() {
            for s in &per {
                stream.push(s[k]);
            }
        }
        let reference: Vec<Verdict> = {
            let mut st = MonitorState::new(&p, &MonitorConfig { threads: 1, shards: 1, capacity: 0 });
            st.ingest(&stream)
        };
        assert!(!reference.is_empty());
        for threads in [1usize, 2, 4, 8] {
            for batch in [1usize, 7, 64, stream.len()] {
                let mut st = MonitorState::new(
                    &p,
                    &MonitorConfig { threads, shards: threads, capacity: 0 },
                );
                let mut got = Vec::new();
                for chunk in stream.chunks(batch) {
                    got.extend(st.ingest(chunk));
                }
                assert_eq!(got, reference, "threads={threads} batch={batch}");
                assert_eq!(st.stats().live, 0);
                assert_eq!(st.stats().retired, 40);
            }
        }
    }

    #[test]
    fn rows_are_recycled_without_verdict_leakage() {
        let cs = chain_cs();
        let convs = conv();
        let p = MonitorProgram::compile(&cs, &convs).unwrap();
        let mut st =
            MonitorState::new(&p, &MonitorConfig { threads: 1, shards: 1, capacity: 0 });
        // Cohorts of 4 instances, 12 cohorts: first cohort violates, the
        // rest are clean and reuse the violators' rows.
        for cohort in 0..12u32 {
            let mut stream = Vec::new();
            for i in 0..4u32 {
                let id = cohort * 4 + i;
                let s = if cohort == 0 {
                    violating_stream(&p, id)
                } else {
                    clean_stream(&p, id)
                };
                stream.extend(s);
            }
            let verdicts = st.ingest(&stream);
            if cohort == 0 {
                assert_eq!(verdicts.len(), 12);
            } else {
                assert!(verdicts.is_empty(), "cohort {cohort}: {verdicts:?}");
            }
        }
        let stats = st.stats();
        assert_eq!(stats.retired, 48);
        assert_eq!(stats.live, 0);
        assert!(
            stats.slab_rows <= 4,
            "rows recycled across cohorts: {}",
            stats.slab_rows
        );
    }

    #[test]
    fn duplicate_events_are_ignored() {
        let cs = chain_cs();
        let convs = conv();
        let p = MonitorProgram::compile(&cs, &convs).unwrap();
        let mut st = MonitorState::new(&p, &MonitorConfig::default());
        let mut stream = clean_stream(&p, 1);
        // Duplicate an early start mid-stream: no verdicts, no double
        // counting toward retirement.
        stream.insert(5, ev(&p, 1, "a", MonitorPhase::Start));
        let verdicts = st.ingest(&stream);
        assert!(verdicts.is_empty(), "{verdicts:?}");
        assert_eq!(st.stats().retired, 1);
    }

    #[test]
    fn conditional_and_external_relations_are_skipped() {
        let mut cs = chain_cs();
        cs.add_domain("a", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("a"),
            StateRef::start("c"),
            dscweaver_dscl::Condition::new("a", "T"),
            Origin::Control,
        ));
        cs.add_service("Ext");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("Ext"),
            Origin::Service,
        ));
        let p = MonitorProgram::compile(&cs, &[]).unwrap();
        // Same prerequisite structure as without the extra relations.
        let base = MonitorProgram::compile(&chain_cs(), &[]).unwrap();
        assert_eq!(p.ordering_pairs(), base.ordering_pairs());
    }

    #[test]
    fn program_introspection() {
        let cs = chain_cs();
        let convs = conv();
        let p = MonitorProgram::compile(&cs, &convs).unwrap();
        assert_eq!(p.n_activities(), 5);
        assert_eq!(p.events_per_instance(), 10);
        assert_eq!(p.ordering_pairs().len(), 2);
        assert_eq!(p.exclusive_pairs().len(), 1);
        assert_eq!(p.conversation_pairs().len(), 1);
        let (act, phase) = p.split_point(p.point_of(3, MonitorPhase::Finish));
        assert_eq!((act, phase), (3, MonitorPhase::Finish));
        assert_eq!(p.act_id(p.activity_name(2)), Some(2));
    }
}
