//! The dataflow scheduling engine: "dependencies are explicitly modeled to
//! guide activity scheduling" (§1). A discrete-event simulator executes a
//! (desugared, service-free) constraint set directly — an activity starts
//! the moment its incoming HappenBefore constraints are satisfied, with
//! dead-path elimination for conditional regions and dynamic checking of
//! Exclusive constraints (§4.2).
//!
//! Two engines share the event loop skeleton and produce identical traces:
//!
//! * [`simulate`] — the wavefront engine. Per-tick readiness is driven by a
//!   dependency-counting agenda (only activities whose watched states or
//!   guards changed are re-evaluated), and each agenda sweep's pure
//!   guard-evaluation batch runs on the shared worker pool
//!   (`dscweaver_graph::par_map`). The trace is bit-identical for any
//!   `SimConfig::threads` value.
//! * [`simulate_rescan_baseline`] — the original engine: every commit pass
//!   linearly rescans all activities. Kept as the measured baseline for
//!   `BENCH_scheduler.json` and the equivalence property tests.
//!
//! The engines agree on the trace and on `stuck`; they intentionally differ
//! on `constraint_checks` — the agenda is the point: unchanged activities
//! are not re-checked, so the wavefront engine performs strictly fewer
//! satisfaction checks on sparse processes.

use crate::trace::{EventKind, Time, Trace, TraceEvent};
use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ActivityState, Condition, ConstraintSet, Relation, StateRef};
use dscweaver_graph::{effective_threads, par_map};
use dscweaver_obs as obs;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};

/// Below this agenda size a parallel evaluation batch costs more than it
/// saves; sweeps smaller than this are evaluated inline.
const PAR_EVAL_MIN: usize = 8;

/// Activity durations in virtual time units.
#[derive(Clone, Debug)]
pub struct DurationModel {
    default: Time,
    per_activity: BTreeMap<String, Time>,
}

impl DurationModel {
    /// Every activity takes `d` units (coordinators introduced by
    /// desugaring always take 0).
    pub fn constant(d: Time) -> DurationModel {
        DurationModel {
            default: d,
            per_activity: BTreeMap::new(),
        }
    }

    /// Per-activity overrides on top of a default.
    pub fn with_overrides(default: Time, per_activity: BTreeMap<String, Time>) -> DurationModel {
        DurationModel {
            default,
            per_activity,
        }
    }

    /// Sets one override.
    pub fn set(&mut self, activity: &str, d: Time) {
        self.per_activity.insert(activity.into(), d);
    }

    /// The duration of `activity`.
    pub fn of(&self, activity: &str) -> Time {
        if activity.starts_with("__sync") {
            return 0;
        }
        self.per_activity
            .get(activity)
            .copied()
            .unwrap_or(self.default)
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Durations.
    pub durations: DurationModel,
    /// Branch oracle: guard → value produced. Guards not listed produce
    /// the first value of their domain.
    pub oracle: BTreeMap<String, String>,
    /// Worker limit: at most this many activities run concurrently
    /// (`None` = unbounded). Skips and zero-duration coordinators do not
    /// occupy a worker.
    pub workers: Option<usize>,
    /// Worker threads for the guard-evaluation batches of the wavefront
    /// engine: `0` = auto (one per core, capped at 8), `1` = sequential.
    /// The schedule is bit-identical regardless.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            durations: DurationModel::constant(1),
            oracle: BTreeMap::new(),
            workers: None,
            threads: 0,
        }
    }
}

/// The result of a run.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The trace.
    pub trace: Trace,
    /// Number of constraint-satisfaction checks performed — the
    /// "maintenance and computation costs" the optimization reduces
    /// (§4: "redundant constraints incur unnecessary maintenance and
    /// computation costs if added to the scheduling engine").
    pub constraint_checks: u64,
    /// Activities that could never be resolved (deadlock); empty on sound
    /// schemes.
    pub stuck: Vec<String>,
}

impl Schedule {
    /// True if every activity resolved.
    pub fn completed(&self) -> bool {
        self.stuck.is_empty()
    }
}

#[derive(Clone, Debug)]
struct Prereq {
    producer: StateRef,
    cond: Option<Condition>,
}

#[derive(Clone, Debug, PartialEq)]
enum GuardOutcome {
    Value(String),
    Skipped,
}

fn value_of_guard(g: &str, config: &SimConfig, cs: &ConstraintSet) -> String {
    config.oracle.get(g).cloned().unwrap_or_else(|| {
        cs.domains
            .get(g)
            .and_then(|d| d.first().cloned())
            .unwrap_or_else(|| "done".to_string())
    })
}

/// Prereq satisfied under the given state? Counts one check per call.
fn prereq_satisfied(
    p: &Prereq,
    resolved: &HashMap<StateRef, (Time, u64)>,
    outcome: &HashMap<&str, GuardOutcome>,
    checks: &mut u64,
) -> bool {
    *checks += 1;
    match &p.cond {
        None => resolved.contains_key(&p.producer),
        Some(c) => match outcome.get(c.on.as_str()) {
            None => false, // guard undecided: must wait
            Some(GuardOutcome::Value(v)) if *v == c.value => resolved.contains_key(&p.producer),
            // Guard mismatched or skipped: the constraint is waived.
            Some(_) => true,
        },
    }
}

/// Exec decision: Some(true/false) once all mentioned guards resolved.
fn exec_decided(a: &str, exec: &ExecConditions, outcome: &HashMap<&str, GuardOutcome>) -> Option<bool> {
    let dnf = exec.of(a);
    if dnf.is_always() {
        return Some(true);
    }
    let mut guards: HashSet<&str> = HashSet::new();
    for t in dnf.terms() {
        for c in t {
            guards.insert(&c.on);
        }
    }
    if !guards.iter().all(|g| outcome.contains_key(*g)) {
        return None;
    }
    let value = dnf.terms().iter().any(|term| {
        term.iter().all(|c| {
            matches!(outcome.get(c.on.as_str()), Some(GuardOutcome::Value(v)) if *v == c.value)
        })
    });
    Some(value)
}

/// What one agenda visit would do, plus the checks it spent deciding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Act {
    /// Cannot act under the evaluated state.
    None,
    /// Deferred finish is now satisfiable.
    Unblock,
    /// Start prereqs hold and the execution condition is true.
    Start,
    /// Execution condition is false and the skip's prereqs hold.
    Skip,
}

#[derive(Clone, Copy)]
struct Eval {
    act: Act,
    checks: u64,
}

/// The pure per-activity readiness decision — exactly the evaluation the
/// rescan engine performs per visit, against an explicit state snapshot so
/// batches of it can run on the worker pool. Exclusive partners and the
/// worker limit are *not* part of this: they read `running`, which mutates
/// during a sweep, so they are gated sequentially at commit time.
#[allow(clippy::too_many_arguments)]
fn eval_activity(
    a: &str,
    i: usize,
    start_prereqs: &[Vec<Prereq>],
    finish_prereqs: &[Vec<Prereq>],
    exec: &ExecConditions,
    resolved: &HashMap<StateRef, (Time, u64)>,
    outcome: &HashMap<&str, GuardOutcome>,
    started: &HashSet<&str>,
    done: &HashSet<&str>,
    running: &HashSet<&str>,
    finish_blocked: &HashSet<&str>,
) -> Eval {
    let mut checks = 0u64;
    if done.contains(a) || running.contains(a) && !finish_blocked.contains(a) {
        return Eval { act: Act::None, checks };
    }
    if finish_blocked.contains(a) {
        let ok = finish_prereqs[i]
            .iter()
            .all(|p| prereq_satisfied(p, resolved, outcome, &mut checks));
        let act = if ok { Act::Unblock } else { Act::None };
        return Eval { act, checks };
    }
    if started.contains(a) {
        return Eval { act: Act::None, checks };
    }
    let starts_ok = start_prereqs[i]
        .iter()
        .all(|p| prereq_satisfied(p, resolved, outcome, &mut checks));
    if !starts_ok {
        return Eval { act: Act::None, checks };
    }
    match exec_decided(a, exec, outcome) {
        None => Eval { act: Act::None, checks },
        Some(true) => Eval { act: Act::Start, checks },
        Some(false) => {
            // Skip also waits for finish-side prerequisites (skip events
            // are ordered after everything the activity would have waited
            // for).
            let fin_ok = finish_prereqs[i]
                .iter()
                .all(|p| prereq_satisfied(p, resolved, outcome, &mut checks));
            let act = if fin_ok { Act::Skip } else { Act::None };
            Eval { act, checks }
        }
    }
}

/// Re-arms every dependent in `list`: back on the agenda, and marked
/// tainted so a precomputed batch eval is not reused for it.
fn wake_all(list: Option<&Vec<usize>>, dirty: &mut BTreeSet<usize>, tainted: &mut HashSet<usize>) {
    if let Some(v) = list {
        for &i in v {
            dirty.insert(i);
            tainted.insert(i);
        }
    }
}

/// The owned, lifetime-free compile half of a [`PreparedSchedule`]: the
/// prereq buckets, exclusive-partner lists and agenda wake-lists, all
/// keyed by **activity index** (position in the constraint set's sorted
/// `activities`) instead of borrowed `&str` keys.
///
/// Because nothing here borrows the constraint set, a long-lived registry
/// (the serve daemon's warm-artifact cache) can store one `ScheduleTables`
/// per cached process next to its owned `ConstraintSet`/`ExecConditions`
/// and rebuild a borrowing [`PreparedSchedule`] per request with
/// [`PreparedSchedule::with_tables`] at zero derivation cost.
#[derive(Clone, Debug)]
pub struct ScheduleTables {
    /// Prereq buckets by activity index, relations-order within a bucket.
    start_prereqs: Vec<Vec<Prereq>>,
    finish_prereqs: Vec<Vec<Prereq>>,
    /// Who watches which state / guard (agenda wake-lists).
    dep_state: HashMap<StateRef, Vec<usize>>,
    dep_guard: HashMap<String, Vec<usize>>,
    /// Exclusive partners by activity index.
    excl_ix: Vec<Vec<usize>>,
}

impl ScheduleTables {
    /// Derives the static indexes (prereq buckets, exclusive partners,
    /// agenda wake-lists) from `cs`/`exec`. Deterministic: activities are
    /// walked in sorted order and relations in declaration order.
    pub fn derive(cs: &ConstraintSet, exec: &ExecConditions) -> Self {
        let _span = obs::span_with("scheduler.prepare", || {
            format!("activities={} relations={}", cs.activities.len(), cs.relations.len())
        });
        let acts: Vec<&str> = cs.activities.iter().map(String::as_str).collect();
        let act_ix: HashMap<&str, usize> = acts.iter().enumerate().map(|(i, a)| (*a, i)).collect();
        // Indexing.
        let mut start_prereqs: Vec<Vec<Prereq>> = vec![Vec::new(); acts.len()];
        let mut finish_prereqs: Vec<Vec<Prereq>> = vec![Vec::new(); acts.len()];
        for r in &cs.relations {
            if let Relation::HappenBefore { from, to, cond, .. } = r {
                let Some(&i) = act_ix.get(to.activity.as_str()) else {
                    continue;
                };
                let p = Prereq {
                    producer: from.clone(),
                    cond: cond.clone(),
                };
                match to.state {
                    ActivityState::Start | ActivityState::Run => start_prereqs[i].push(p),
                    ActivityState::Finish => finish_prereqs[i].push(p),
                }
            }
        }
        // Exclusive partner lists.
        let mut excl_ix: Vec<Vec<usize>> = vec![Vec::new(); acts.len()];
        for (x, y) in cs.exclusives() {
            if let (Some(&i), Some(&j)) = (
                act_ix.get(x.activity.as_str()),
                act_ix.get(y.activity.as_str()),
            ) {
                excl_ix[i].push(j);
                excl_ix[j].push(i);
            }
        }

        // Agenda bookkeeping: who watches which state / guard.
        let mut dep_state: HashMap<StateRef, Vec<usize>> = HashMap::new();
        let mut dep_guard: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, a) in acts.iter().enumerate() {
            for p in start_prereqs[i].iter().chain(finish_prereqs[i].iter()) {
                dep_state.entry(p.producer.clone()).or_default().push(i);
                if let Some(c) = &p.cond {
                    dep_guard.entry(c.on.clone()).or_default().push(i);
                }
            }
            let dnf = exec.of(a);
            if !dnf.is_always() {
                for t in dnf.terms() {
                    for c in t {
                        dep_guard.entry(c.on.clone()).or_default().push(i);
                    }
                }
            }
        }
        ScheduleTables {
            start_prereqs,
            finish_prereqs,
            dep_state,
            dep_guard,
            excl_ix,
        }
    }
}

/// A constraint set compiled for repeated simulation: the prereq indexes,
/// exclusive-partner sets and agenda wake-lists
/// (`dep_state`/`dep_guard`/`excl_ix`) derived once (see
/// [`ScheduleTables`]) and reused across runs with different branch
/// oracles, durations, worker limits and thread counts — the
/// monitoring-replay workload, where one ASC is simulated many times.
///
/// [`simulate`] is exactly `PreparedSchedule::new(cs, exec).run(config)`,
/// so every session run is bit-identical to the fresh-build path by
/// construction (and pinned by the `prepared_engines_equivalence`
/// property tests); preparing once just amortizes the index derivation.
#[derive(Debug)]
pub struct PreparedSchedule<'a> {
    cs: &'a ConstraintSet,
    exec: &'a ExecConditions,
    tables: std::borrow::Cow<'a, ScheduleTables>,
    acts: Vec<&'a str>,
    act_ix: HashMap<&'a str, usize>,
}

impl<'a> PreparedSchedule<'a> {
    /// Derives the static indexes (prereq buckets, exclusive partners,
    /// agenda wake-lists) from `cs`/`exec`.
    pub fn new(cs: &'a ConstraintSet, exec: &'a ExecConditions) -> Self {
        let tables = ScheduleTables::derive(cs, exec);
        Self::assemble(cs, exec, std::borrow::Cow::Owned(tables))
    }

    /// Wraps `cs`/`exec` and pre-derived tables without re-deriving. The
    /// tables must come from [`ScheduleTables::derive`] on this same
    /// `cs`/`exec` pair; runs are then bit-identical to the
    /// [`PreparedSchedule::new`] path.
    pub fn with_tables(
        cs: &'a ConstraintSet,
        exec: &'a ExecConditions,
        tables: &'a ScheduleTables,
    ) -> Self {
        Self::assemble(cs, exec, std::borrow::Cow::Borrowed(tables))
    }

    fn assemble(
        cs: &'a ConstraintSet,
        exec: &'a ExecConditions,
        tables: std::borrow::Cow<'a, ScheduleTables>,
    ) -> Self {
        let acts: Vec<&str> = cs.activities.iter().map(String::as_str).collect();
        let act_ix: HashMap<&str, usize> = acts.iter().enumerate().map(|(i, a)| (*a, i)).collect();
        PreparedSchedule {
            cs,
            exec,
            tables,
            acts,
            act_ix,
        }
    }

    /// The underlying constraint set.
    pub fn constraint_set(&self) -> &'a ConstraintSet {
        self.cs
    }

    /// One simulation run over the prepared indexes — the wavefront event
    /// loop of [`simulate`], minus the per-call index derivation.
    pub fn run(&self, config: &SimConfig) -> Schedule {
        let _span = obs::span("scheduler.run");
        let cs = self.cs;
        let exec = self.exec;
        let tables: &ScheduleTables = self.tables.as_ref();
        let start_prereqs = tables.start_prereqs.as_slice();
        let finish_prereqs = tables.finish_prereqs.as_slice();
        let acts = &self.acts;
        let act_ix = &self.act_ix;
        let dep_state = &tables.dep_state;
        let dep_guard = &tables.dep_guard;
        let excl_ix = &tables.excl_ix;
        let threads = effective_threads(config.threads, 8);

        // Dynamic state.
        let mut resolved: HashMap<StateRef, (Time, u64)> = HashMap::new();
        let mut outcome: HashMap<&str, GuardOutcome> = HashMap::new();
        let mut started: HashSet<&str> = HashSet::new();
        let mut done: HashSet<&str> = HashSet::new(); // finished or skipped
        let mut running: HashSet<&str> = HashSet::new();
        let mut finish_blocked: HashSet<&str> = HashSet::new();
        let mut trace = Trace::default();
        let mut seq: u64 = 0;
        let mut checks: u64 = 0;
        let mut now: Time = 0;

        // Scheduled natural finishes: Reverse-ordered min-heap.
        let mut finish_queue: BinaryHeap<std::cmp::Reverse<(Time, u64, String)>> = BinaryHeap::new();

        // The agenda. `dirty` holds activities whose readiness may have
        // changed; `worker_blocked` holds activities that were startable but
        // found no free worker (re-armed by the next finish); `tainted` marks
        // activities whose watched state changed after the current sweep's
        // batch evaluation, invalidating their precomputed entry.
        let mut dirty: BTreeSet<usize> = (0..acts.len()).collect();
        let mut worker_blocked: BTreeSet<usize> = BTreeSet::new();
        let mut tainted: HashSet<usize> = HashSet::new();

        let total = cs.activities.len();
        loop {
            // Commit phase: sweep the agenda until nothing can act at `now`.
            loop {
                if dirty.is_empty() {
                    break;
                }
                tainted.clear();
                // Pure readiness evaluation of the whole pending sweep, batched
                // on the worker pool. Advisory: commits below re-evaluate any
                // entry whose inputs a prior commit of this sweep changed.
                let batch: Vec<usize> = dirty.iter().copied().collect();
                let pre: HashMap<usize, Eval> = if threads > 1 && batch.len() >= PAR_EVAL_MIN {
                    par_map(threads, &batch, &|&i| {
                        (
                            i,
                            eval_activity(
                                acts[i], i, start_prereqs, finish_prereqs, exec, &resolved,
                                &outcome, &started, &done, &running, &finish_blocked,
                            ),
                        )
                    })
                    .into_iter()
                    .collect()
                } else {
                    HashMap::new()
                };
                let mut progressed = false;
                let mut pos = 0usize;
                // Monotone sweep: agenda insertions behind `pos` wait for the
                // next sweep, mirroring the rescan engine's pass order.
                while let Some(i) = dirty.range(pos..).next().copied() {
                    pos = i + 1;
                    let a = acts[i];
                    let ev = match pre.get(&i) {
                        Some(ev) if !tainted.contains(&i) => *ev,
                        _ => eval_activity(
                            a, i, start_prereqs, finish_prereqs, exec, &resolved, &outcome,
                            &started, &done, &running, &finish_blocked,
                        ),
                    };
                    checks += ev.checks;
                    match ev.act {
                        Act::None => {
                            dirty.remove(&i);
                        }
                        Act::Unblock => {
                            dirty.remove(&i);
                            finish_blocked.remove(a);
                            commit_finish(
                                a, now, &mut seq, cs, config, &mut trace, &mut resolved,
                                &mut outcome, &mut running, &mut done, value_of_guard,
                            );
                            wake_all(dep_state.get(&StateRef::finish(a)), &mut dirty, &mut tainted);
                            wake_all(dep_guard.get(a), &mut dirty, &mut tainted);
                            for &j in &excl_ix[i] {
                                dirty.insert(j);
                                tainted.insert(j);
                            }
                            for j in std::mem::take(&mut worker_blocked) {
                                dirty.insert(j);
                                tainted.insert(j);
                            }
                            progressed = true;
                        }
                        Act::Start => {
                            // Exclusive: defer while a partner is running; the
                            // partner's finish re-arms us.
                            if excl_ix[i].iter().any(|&j| running.contains(acts[j])) {
                                dirty.remove(&i);
                                continue;
                            }
                            // Worker limit: zero-duration activities (the
                            // desugaring coordinators) pass through freely.
                            if let Some(k) = config.workers {
                                if config.durations.of(a) > 0 && running.len() >= k {
                                    dirty.remove(&i);
                                    worker_blocked.insert(i);
                                    continue;
                                }
                            }
                            dirty.remove(&i);
                            started.insert(a);
                            running.insert(a);
                            trace.events.push(TraceEvent {
                                time: now,
                                seq,
                                activity: a.to_string(),
                                kind: EventKind::Start,
                                value: None,
                            });
                            resolved.insert(StateRef::start(a), (now, seq));
                            resolved.insert(StateRef::run(a), (now, seq));
                            seq += 1;
                            finish_queue.push(std::cmp::Reverse((
                                now + config.durations.of(a),
                                seq,
                                a.to_string(),
                            )));
                            wake_all(dep_state.get(&StateRef::start(a)), &mut dirty, &mut tainted);
                            wake_all(dep_state.get(&StateRef::run(a)), &mut dirty, &mut tainted);
                            progressed = true;
                        }
                        Act::Skip => {
                            dirty.remove(&i);
                            started.insert(a);
                            done.insert(a);
                            trace.events.push(TraceEvent {
                                time: now,
                                seq,
                                activity: a.to_string(),
                                kind: EventKind::Skip,
                                value: None,
                            });
                            for st in ActivityState::ALL {
                                let sr = StateRef {
                                    activity: a.to_string(),
                                    state: st,
                                };
                                resolved.insert(sr.clone(), (now, seq));
                                wake_all(dep_state.get(&sr), &mut dirty, &mut tainted);
                            }
                            outcome.insert(a, GuardOutcome::Skipped);
                            wake_all(dep_guard.get(a), &mut dirty, &mut tainted);
                            seq += 1;
                            progressed = true;
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }

            if done.len() == total {
                break;
            }
            // Advance to the next natural finish.
            let Some(std::cmp::Reverse((t, _, a))) = finish_queue.pop() else {
                break; // deadlock: nothing running, nothing ready
            };
            now = now.max(t);
            let a_ref: &str = cs
                .activities
                .get(&a)
                .map(String::as_str)
                .expect("finish of unknown activity");
            // Finish-side prerequisites may defer the completion.
            let ok = finish_prereqs[act_ix[a_ref]]
                .iter()
                .all(|p| prereq_satisfied(p, &resolved, &outcome, &mut checks));
            if ok {
                commit_finish(
                    a_ref, now, &mut seq, cs, config, &mut trace, &mut resolved, &mut outcome,
                    &mut running, &mut done, value_of_guard,
                );
                wake_all(dep_state.get(&StateRef::finish(a_ref)), &mut dirty, &mut tainted);
                wake_all(dep_guard.get(a_ref), &mut dirty, &mut tainted);
                for &j in &excl_ix[act_ix[a_ref]] {
                    dirty.insert(j);
                    tainted.insert(j);
                }
                for j in std::mem::take(&mut worker_blocked) {
                    dirty.insert(j);
                    tainted.insert(j);
                }
            } else {
                finish_blocked.insert(a_ref);
            }
        }

        let stuck: Vec<String> = cs
            .activities
            .iter()
            .filter(|a| !done.contains(a.as_str()))
            .cloned()
            .collect();
        obs::counter_add("scheduler.constraint_checks", checks);
        obs::counter_add("scheduler.stuck_activities", stuck.len() as u64);
        obs::gauge_set("scheduler.makespan", trace.makespan() as f64);
        Schedule {
            trace,
            constraint_checks: checks,
            stuck,
        }
    }
}

/// Runs the dataflow scheduler over `cs` — the wavefront engine.
///
/// Readiness is tracked by a dependency-counting agenda: each activity
/// leaves the agenda when an evaluation finds it unable to act, and
/// re-enters only when a state it watches changes (a prereq producer
/// resolving, a guard it mentions deciding, an exclusive partner
/// finishing, or a worker slot freeing). Each agenda sweep first evaluates
/// its pending activities as one pure batch on the worker pool
/// (`config.threads`; `0` = auto), then commits sequentially in activity
/// order, which makes the trace bit-identical to the rescan baseline and
/// independent of the thread count — only `constraint_checks` shrinks.
///
/// Convenience wrapper: derives the static indexes and runs once. Callers
/// replaying one constraint set under many configurations should build a
/// [`PreparedSchedule`] and call [`PreparedSchedule::run`] repeatedly.
pub fn simulate(cs: &ConstraintSet, exec: &ExecConditions, config: &SimConfig) -> Schedule {
    PreparedSchedule::new(cs, exec).run(config)
}

/// The original engine: every commit pass linearly rescans all activities.
///
/// Kept (unchanged in behavior) as the measured baseline for
/// `BENCH_scheduler.json` and as the reference the wavefront engine's
/// equivalence property tests compare against. Produces the same trace and
/// `stuck` as [`simulate`]; `constraint_checks` is higher because every
/// pass re-checks activities whose inputs did not change.
pub fn simulate_rescan_baseline(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    config: &SimConfig,
) -> Schedule {
    // Indexing.
    let mut start_prereqs: HashMap<&str, Vec<Prereq>> = HashMap::new();
    let mut finish_prereqs: HashMap<&str, Vec<Prereq>> = HashMap::new();
    for a in &cs.activities {
        start_prereqs.insert(a, Vec::new());
        finish_prereqs.insert(a, Vec::new());
    }
    for r in &cs.relations {
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            let p = Prereq {
                producer: from.clone(),
                cond: cond.clone(),
            };
            let bucket = match to.state {
                ActivityState::Start | ActivityState::Run => &mut start_prereqs,
                ActivityState::Finish => &mut finish_prereqs,
            };
            if let Some(v) = bucket.get_mut(to.activity.as_str()) {
                v.push(p);
            }
        }
    }
    // Exclusive partner sets.
    let mut exclusive: HashMap<&str, Vec<&str>> = HashMap::new();
    for (x, y) in cs.exclusives() {
        exclusive
            .entry(x.activity.as_str())
            .or_default()
            .push(y.activity.as_str());
        exclusive
            .entry(y.activity.as_str())
            .or_default()
            .push(x.activity.as_str());
    }

    // Dynamic state.
    let mut resolved: HashMap<StateRef, (Time, u64)> = HashMap::new();
    let mut outcome: HashMap<&str, GuardOutcome> = HashMap::new();
    let mut started: HashSet<&str> = HashSet::new();
    let mut done: HashSet<&str> = HashSet::new(); // finished or skipped
    let mut running: HashSet<&str> = HashSet::new();
    let mut finish_blocked: HashSet<&str> = HashSet::new();
    let mut trace = Trace::default();
    let mut seq: u64 = 0;
    let mut checks: u64 = 0;
    let mut now: Time = 0;

    // Scheduled natural finishes: Reverse-ordered min-heap.
    let mut finish_queue: BinaryHeap<std::cmp::Reverse<(Time, u64, String)>> = BinaryHeap::new();

    let total = cs.activities.len();
    loop {
        // Commit phase: start, skip, or unblock whatever is ready at `now`.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for a in &cs.activities {
                let a = a.as_str();
                if done.contains(a) || running.contains(a) && !finish_blocked.contains(a) {
                    continue;
                }
                if finish_blocked.contains(a) {
                    // Re-try the deferred finish.
                    let ok = finish_prereqs[a]
                        .iter()
                        .all(|p| prereq_satisfied(p, &resolved, &outcome, &mut checks));
                    if ok {
                        finish_blocked.remove(a);
                        commit_finish(
                            a, now, &mut seq, cs, config, &mut trace, &mut resolved,
                            &mut outcome, &mut running, &mut done, value_of_guard,
                        );
                        progressed = true;
                    }
                    continue;
                }
                if started.contains(a) {
                    continue;
                }
                let starts_ok = start_prereqs[a]
                    .iter()
                    .all(|p| prereq_satisfied(p, &resolved, &outcome, &mut checks));
                if !starts_ok {
                    continue;
                }
                match exec_decided(a, exec, &outcome) {
                    None => continue,
                    Some(true) => {
                        // Exclusive: defer while a partner is running.
                        if exclusive
                            .get(a)
                            .is_some_and(|ps| ps.iter().any(|p| running.contains(p)))
                        {
                            continue;
                        }
                        // Worker limit: zero-duration activities (the
                        // desugaring coordinators) pass through freely.
                        if let Some(k) = config.workers {
                            if config.durations.of(a) > 0 && running.len() >= k {
                                continue;
                            }
                        }
                        started.insert(a);
                        running.insert(a);
                        trace.events.push(TraceEvent {
                            time: now,
                            seq,
                            activity: a.to_string(),
                            kind: EventKind::Start,
                            value: None,
                        });
                        resolved.insert(StateRef::start(a), (now, seq));
                        resolved.insert(StateRef::run(a), (now, seq));
                        seq += 1;
                        finish_queue.push(std::cmp::Reverse((
                            now + config.durations.of(a),
                            seq,
                            a.to_string(),
                        )));
                        progressed = true;
                    }
                    Some(false) => {
                        // Skip also waits for finish-side prerequisites
                        // (skip events are ordered after everything the
                        // activity would have waited for).
                        let fin_ok = finish_prereqs[a]
                            .iter()
                            .all(|p| prereq_satisfied(p, &resolved, &outcome, &mut checks));
                        if !fin_ok {
                            continue;
                        }
                        started.insert(a);
                        done.insert(a);
                        trace.events.push(TraceEvent {
                            time: now,
                            seq,
                            activity: a.to_string(),
                            kind: EventKind::Skip,
                            value: None,
                        });
                        for st in ActivityState::ALL {
                            resolved.insert(
                                StateRef {
                                    activity: a.to_string(),
                                    state: st,
                                },
                                (now, seq),
                            );
                        }
                        outcome.insert(a, GuardOutcome::Skipped);
                        seq += 1;
                        progressed = true;
                    }
                }
            }
        }

        if done.len() == total {
            break;
        }
        // Advance to the next natural finish.
        let Some(std::cmp::Reverse((t, _, a))) = finish_queue.pop() else {
            break; // deadlock: nothing running, nothing ready
        };
        now = now.max(t);
        let a_ref: &str = cs
            .activities
            .get(&a)
            .map(String::as_str)
            .expect("finish of unknown activity");
        // Finish-side prerequisites may defer the completion.
        let ok = finish_prereqs[a_ref]
            .iter()
            .all(|p| prereq_satisfied(p, &resolved, &outcome, &mut checks));
        if ok {
            commit_finish(
                a_ref, now, &mut seq, cs, config, &mut trace, &mut resolved, &mut outcome,
                &mut running, &mut done, value_of_guard,
            );
        } else {
            finish_blocked.insert(a_ref);
        }
    }

    let stuck: Vec<String> = cs
        .activities
        .iter()
        .filter(|a| !done.contains(a.as_str()))
        .cloned()
        .collect();
    Schedule {
        trace,
        constraint_checks: checks,
        stuck,
    }
}

#[allow(clippy::too_many_arguments)]
fn commit_finish<'a>(
    a: &'a str,
    now: Time,
    seq: &mut u64,
    cs: &ConstraintSet,
    config: &SimConfig,
    trace: &mut Trace,
    resolved: &mut HashMap<StateRef, (Time, u64)>,
    outcome: &mut HashMap<&'a str, GuardOutcome>,
    running: &mut HashSet<&'a str>,
    done: &mut HashSet<&'a str>,
    value_of_guard: impl Fn(&str, &SimConfig, &ConstraintSet) -> String,
) {
    running.remove(a);
    done.insert(a);
    let value = if cs.domains.contains_key(a) {
        Some(value_of_guard(a, config, cs))
    } else {
        None
    };
    trace.events.push(TraceEvent {
        time: now,
        seq: *seq,
        activity: a.to_string(),
        kind: EventKind::Finish,
        value: value.clone(),
    });
    resolved.insert(StateRef::finish(a), (now, *seq));
    *seq += 1;
    outcome.insert(
        a,
        GuardOutcome::Value(value.unwrap_or_else(|| "done".to_string())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::Origin;

    fn before(a: &str, b: &str) -> Relation {
        Relation::before(StateRef::finish(a), StateRef::start(b), Origin::Data)
    }

    fn run(cs: &ConstraintSet, config: &SimConfig) -> Schedule {
        let exec = ExecConditions::derive(cs);
        simulate(cs, &exec, config)
    }

    #[test]
    fn chain_executes_in_order() {
        let mut cs = ConstraintSet::new("chain");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        cs.push(before("a", "b"));
        cs.push(before("b", "c"));
        let s = run(&cs, &SimConfig::default());
        assert!(s.completed());
        assert!(s.trace.verify(&cs).is_empty());
        assert_eq!(s.trace.makespan(), 3, "three unit activities in series");
        assert_eq!(s.trace.max_concurrency(), 1);
    }

    #[test]
    fn independent_activities_run_concurrently() {
        let mut cs = ConstraintSet::new("par");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        let s = run(&cs, &SimConfig::default());
        assert_eq!(s.trace.makespan(), 1);
        assert_eq!(s.trace.max_concurrency(), 3);
    }

    #[test]
    fn branch_skips_dead_path() {
        let mut cs = ConstraintSet::new("branch");
        for a in ["g", "x", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(before("x", "j"));
        cs.push(before("y", "j"));

        let mut cfg = SimConfig::default();
        cfg.oracle.insert("g".into(), "T".into());
        let s = run(&cs, &cfg);
        assert!(s.completed());
        assert!(s.trace.executed("x"));
        assert!(s.trace.skipped("y"));
        assert!(s.trace.executed("j"), "join runs despite the dead path");
        assert!(s.trace.verify(&cs).is_empty());

        cfg.oracle.insert("g".into(), "F".into());
        let s2 = run(&cs, &cfg);
        assert!(s2.trace.skipped("x"));
        assert!(s2.trace.executed("y"));
        assert!(s2.trace.verify(&cs).is_empty());
    }

    #[test]
    fn skip_ordered_after_prerequisites() {
        // a → x, x conditional on g=T; on F the skip of x happens no
        // earlier than finish(a) — and therefore the join j (after x)
        // starts after a.
        let mut cs = ConstraintSet::new("skiporder");
        for a in ["g", "a", "x", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(before("a", "x"));
        cs.push(before("x", "j"));
        let mut cfg = SimConfig::default();
        cfg.oracle.insert("g".into(), "F".into());
        cfg.durations.set("a", 10);
        let s = run(&cs, &cfg);
        assert!(s.completed());
        let skip_time = s
            .trace
            .events
            .iter()
            .find(|e| e.activity == "x" && e.kind == EventKind::Skip)
            .unwrap()
            .time;
        assert!(skip_time >= 10, "skip waits for finish(a) at t=10");
        let j_start = s.trace.occurrence(&StateRef::start("j")).unwrap().0;
        assert!(j_start >= 10);
    }

    #[test]
    fn finish_side_prerequisite_defers_completion() {
        // S(a) → F(b) with a starting late: b must not finish before a
        // starts.
        let mut cs = ConstraintSet::new("overlap");
        for a in ["z", "a", "b"] {
            cs.add_activity(a);
        }
        cs.push(before("z", "a")); // delays a's start
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("b"),
            Origin::Cooperation,
        ));
        let mut cfg = SimConfig::default();
        cfg.durations.set("z", 5);
        cfg.durations.set("b", 1);
        let s = run(&cs, &cfg);
        assert!(s.completed());
        let b_fin = s.trace.occurrence(&StateRef::finish("b")).unwrap().0;
        let a_start = s.trace.occurrence(&StateRef::start("a")).unwrap().0;
        assert_eq!(a_start, 5);
        assert!(b_fin >= 5, "b finished at {b_fin}, before a started");
        assert!(s.trace.verify(&cs).is_empty());
    }

    #[test]
    fn deadlock_reports_stuck_activities() {
        let mut cs = ConstraintSet::new("dead");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(before("a", "b"));
        cs.push(before("b", "a"));
        let s = run(&cs, &SimConfig::default());
        assert!(!s.completed());
        assert_eq!(s.stuck, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn exclusive_serializes() {
        let mut cs = ConstraintSet::new("excl");
        cs.add_activity("p");
        cs.add_activity("q");
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        let mut cfg = SimConfig::default();
        cfg.durations.set("p", 5);
        cfg.durations.set("q", 5);
        let s = run(&cs, &cfg);
        assert!(s.completed());
        assert!(s.trace.verify_exclusives(&cs).is_empty());
        assert_eq!(s.trace.makespan(), 10, "serialized");
        assert_eq!(s.trace.max_concurrency(), 1);
    }

    #[test]
    fn fewer_constraints_fewer_checks() {
        // Redundant constraints cost checks: a chain plus shortcuts.
        let mut full = ConstraintSet::new("full");
        for a in ["a", "b", "c", "d"] {
            full.add_activity(a);
        }
        full.push(before("a", "b"));
        full.push(before("b", "c"));
        full.push(before("c", "d"));
        let mut redundant = full.clone();
        redundant.push(before("a", "c"));
        redundant.push(before("a", "d"));
        redundant.push(before("b", "d"));
        let s_min = run(&full, &SimConfig::default());
        let s_red = run(&redundant, &SimConfig::default());
        assert_eq!(s_min.trace.makespan(), s_red.trace.makespan());
        assert!(
            s_red.constraint_checks > s_min.constraint_checks,
            "{} vs {}",
            s_red.constraint_checks,
            s_min.constraint_checks
        );
    }

    #[test]
    fn coordinator_activities_take_zero_time() {
        let mut cs = ConstraintSet::new("ht");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::HappenTogether {
            a: StateRef::start("a"),
            b: StateRef::start("b"),
            cond: None,
            origin: Origin::Cooperation,
        });
        cs.desugar_happen_together();
        let s = run(&cs, &SimConfig::default());
        assert!(s.completed(), "stuck: {:?}", s.stuck);
        let a_start = s.trace.occurrence(&StateRef::start("a")).unwrap().0;
        let b_start = s.trace.occurrence(&StateRef::start("b")).unwrap().0;
        assert_eq!(a_start, b_start, "barrier starts together");
    }

    #[test]
    fn wavefront_matches_rescan_and_spends_fewer_checks() {
        // A branching process with a deferred finish and an exclusive
        // pair exercises every commit kind; the engines must agree on the
        // trace byte-for-byte while the agenda engine spends fewer checks.
        let mut cs = ConstraintSet::new("equiv");
        for a in ["g", "a", "x", "y", "j", "p", "q"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(before("a", "x"));
        cs.push(before("x", "j"));
        cs.push(before("y", "j"));
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("p"),
            Origin::Cooperation,
        ));
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        let exec = ExecConditions::derive(&cs);
        for value in ["T", "F"] {
            let mut cfg = SimConfig::default();
            cfg.oracle.insert("g".into(), value.into());
            cfg.durations.set("a", 7);
            cfg.durations.set("p", 3);
            let base = simulate_rescan_baseline(&cs, &exec, &cfg);
            for threads in [0usize, 1, 2] {
                let mut c = cfg.clone();
                c.threads = threads;
                let wf = simulate(&cs, &exec, &c);
                assert_eq!(
                    format!("{:?}", wf.trace),
                    format!("{:?}", base.trace),
                    "trace diverged (oracle {value}, threads {threads})"
                );
                assert_eq!(wf.stuck, base.stuck);
                assert!(
                    wf.constraint_checks <= base.constraint_checks,
                    "agenda spent more checks than the rescan: {} vs {}",
                    wf.constraint_checks,
                    base.constraint_checks
                );
            }
        }
    }

    #[test]
    fn wavefront_checks_are_thread_invariant() {
        let mut cs = ConstraintSet::new("inv");
        for i in 0..20 {
            cs.add_activity(format!("a{i}"));
        }
        for i in 0..19 {
            cs.push(before(&format!("a{i}"), &format!("a{}", i + 1)));
        }
        let exec = ExecConditions::derive(&cs);
        let runs: Vec<Schedule> = [1usize, 2, 0]
            .iter()
            .map(|&threads| {
                let cfg = SimConfig {
                    threads,
                    ..Default::default()
                };
                simulate(&cs, &exec, &cfg)
            })
            .collect();
        for s in &runs[1..] {
            assert_eq!(format!("{:?}", s.trace), format!("{:?}", runs[0].trace));
            assert_eq!(s.constraint_checks, runs[0].constraint_checks);
        }
    }

    #[test]
    fn detached_tables_run_is_bit_identical() {
        // The serve registry path: derive ScheduleTables once, store them
        // detached from any borrow, and rebuild a PreparedSchedule per
        // request. Runs must match the owning path exactly.
        let mut cs = ConstraintSet::new("detached");
        for a in ["g", "x", "y", "j", "p", "q"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(before("x", "j"));
        cs.push(before("y", "j"));
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        let exec = ExecConditions::derive(&cs);
        let tables = ScheduleTables::derive(&cs, &exec);
        for value in ["T", "F"] {
            for threads in [1usize, 2] {
                let mut cfg = SimConfig::default();
                cfg.oracle.insert("g".into(), value.into());
                cfg.durations.set("p", 3);
                cfg.threads = threads;
                let owned = PreparedSchedule::new(&cs, &exec).run(&cfg);
                let detached = PreparedSchedule::with_tables(&cs, &exec, &tables).run(&cfg);
                assert_eq!(
                    format!("{:?}", detached.trace),
                    format!("{:?}", owned.trace),
                    "trace diverged (oracle {value}, threads {threads})"
                );
                assert_eq!(detached.constraint_checks, owned.constraint_checks);
                assert_eq!(detached.stuck, owned.stuck);
            }
        }
    }
}

#[cfg(test)]
mod worker_tests {
    use super::*;
    use dscweaver_dscl::Origin;

    fn independent(n: usize) -> ConstraintSet {
        let mut cs = ConstraintSet::new("workers");
        for i in 0..n {
            cs.add_activity(format!("a{i}"));
        }
        cs
    }

    fn run_with(cs: &ConstraintSet, workers: Option<usize>) -> Schedule {
        let exec = ExecConditions::derive(cs);
        let config = SimConfig {
            workers,
            ..Default::default()
        };
        simulate(cs, &exec, &config)
    }

    #[test]
    fn single_worker_serializes() {
        let cs = independent(5);
        let s = run_with(&cs, Some(1));
        assert!(s.completed());
        assert_eq!(s.trace.max_concurrency(), 1);
        assert_eq!(s.trace.makespan(), 5);
    }

    #[test]
    fn worker_pool_caps_concurrency() {
        let cs = independent(6);
        let s = run_with(&cs, Some(2));
        assert!(s.completed());
        assert_eq!(s.trace.max_concurrency(), 2);
        assert_eq!(s.trace.makespan(), 3, "6 unit tasks on 2 workers");
        let unbounded = run_with(&cs, None);
        assert_eq!(unbounded.trace.makespan(), 1);
        assert_eq!(unbounded.trace.max_concurrency(), 6);
    }

    #[test]
    fn constraints_still_hold_under_worker_limit() {
        let mut cs = independent(4);
        cs.push(Relation::before(
            StateRef::finish("a0"),
            StateRef::start("a3"),
            Origin::Data,
        ));
        let s = run_with(&cs, Some(2));
        assert!(s.completed());
        assert!(s.trace.verify(&cs).is_empty());
    }

    #[test]
    fn coordinators_bypass_the_pool() {
        // A barrier between two activities with a single worker must not
        // deadlock: the zero-duration coordinator does not occupy it.
        let mut cs = independent(2);
        cs.push(Relation::HappenTogether {
            a: StateRef::start("a0"),
            b: StateRef::start("a1"),
            cond: None,
            origin: Origin::Cooperation,
        });
        cs.desugar_happen_together();
        let s = run_with(&cs, Some(2));
        assert!(s.completed(), "{:?}", s.stuck);
    }

    #[test]
    fn worker_limit_matches_rescan_baseline() {
        let mut cs = independent(8);
        cs.push(Relation::before(
            StateRef::finish("a0"),
            StateRef::start("a5"),
            Origin::Data,
        ));
        let exec = ExecConditions::derive(&cs);
        let config = SimConfig {
            workers: Some(3),
            ..Default::default()
        };
        let base = simulate_rescan_baseline(&cs, &exec, &config);
        let wf = simulate(&cs, &exec, &config);
        assert_eq!(format!("{:?}", wf.trace), format!("{:?}", base.trace));
    }
}
