//! The dataflow scheduling engine: "dependencies are explicitly modeled to
//! guide activity scheduling" (§1). A discrete-event simulator executes a
//! (desugared, service-free) constraint set directly — an activity starts
//! the moment its incoming HappenBefore constraints are satisfied, with
//! dead-path elimination for conditional regions and dynamic checking of
//! Exclusive constraints (§4.2).

use crate::trace::{EventKind, Time, Trace, TraceEvent};
use dscweaver_core::ExecConditions;
use dscweaver_dscl::{ActivityState, Condition, ConstraintSet, Relation, StateRef};
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// Activity durations in virtual time units.
#[derive(Clone, Debug)]
pub struct DurationModel {
    default: Time,
    per_activity: BTreeMap<String, Time>,
}

impl DurationModel {
    /// Every activity takes `d` units (coordinators introduced by
    /// desugaring always take 0).
    pub fn constant(d: Time) -> DurationModel {
        DurationModel {
            default: d,
            per_activity: BTreeMap::new(),
        }
    }

    /// Per-activity overrides on top of a default.
    pub fn with_overrides(default: Time, per_activity: BTreeMap<String, Time>) -> DurationModel {
        DurationModel {
            default,
            per_activity,
        }
    }

    /// Sets one override.
    pub fn set(&mut self, activity: &str, d: Time) {
        self.per_activity.insert(activity.into(), d);
    }

    /// The duration of `activity`.
    pub fn of(&self, activity: &str) -> Time {
        if activity.starts_with("__sync") {
            return 0;
        }
        self.per_activity
            .get(activity)
            .copied()
            .unwrap_or(self.default)
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Durations.
    pub durations: DurationModel,
    /// Branch oracle: guard → value produced. Guards not listed produce
    /// the first value of their domain.
    pub oracle: BTreeMap<String, String>,
    /// Worker limit: at most this many activities run concurrently
    /// (`None` = unbounded). Skips and zero-duration coordinators do not
    /// occupy a worker.
    pub workers: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            durations: DurationModel::constant(1),
            oracle: BTreeMap::new(),
            workers: None,
        }
    }
}

/// The result of a run.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The trace.
    pub trace: Trace,
    /// Number of constraint-satisfaction checks performed — the
    /// "maintenance and computation costs" the optimization reduces
    /// (§4: "redundant constraints incur unnecessary maintenance and
    /// computation costs if added to the scheduling engine").
    pub constraint_checks: u64,
    /// Activities that could never be resolved (deadlock); empty on sound
    /// schemes.
    pub stuck: Vec<String>,
}

impl Schedule {
    /// True if every activity resolved.
    pub fn completed(&self) -> bool {
        self.stuck.is_empty()
    }
}

#[derive(Clone, Debug)]
struct Prereq {
    producer: StateRef,
    cond: Option<Condition>,
}

#[derive(Clone, Debug, PartialEq)]
enum GuardOutcome {
    Value(String),
    Skipped,
}

/// Runs the dataflow scheduler over `cs`.
pub fn simulate(cs: &ConstraintSet, exec: &ExecConditions, config: &SimConfig) -> Schedule {
    // Indexing.
    let mut start_prereqs: HashMap<&str, Vec<Prereq>> = HashMap::new();
    let mut finish_prereqs: HashMap<&str, Vec<Prereq>> = HashMap::new();
    for a in &cs.activities {
        start_prereqs.insert(a, Vec::new());
        finish_prereqs.insert(a, Vec::new());
    }
    for r in &cs.relations {
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            let p = Prereq {
                producer: from.clone(),
                cond: cond.clone(),
            };
            let bucket = match to.state {
                ActivityState::Start | ActivityState::Run => &mut start_prereqs,
                ActivityState::Finish => &mut finish_prereqs,
            };
            if let Some(v) = bucket.get_mut(to.activity.as_str()) {
                v.push(p);
            }
        }
    }
    // Exclusive partner sets.
    let mut exclusive: HashMap<&str, Vec<&str>> = HashMap::new();
    for (x, y) in cs.exclusives() {
        exclusive
            .entry(x.activity.as_str())
            .or_default()
            .push(y.activity.as_str());
        exclusive
            .entry(y.activity.as_str())
            .or_default()
            .push(x.activity.as_str());
    }

    // Dynamic state.
    let mut resolved: HashMap<StateRef, (Time, u64)> = HashMap::new();
    let mut outcome: HashMap<&str, GuardOutcome> = HashMap::new();
    let mut started: HashSet<&str> = HashSet::new();
    let mut done: HashSet<&str> = HashSet::new(); // finished or skipped
    let mut running: HashSet<&str> = HashSet::new();
    let mut finish_blocked: HashSet<&str> = HashSet::new();
    let mut trace = Trace::default();
    let mut seq: u64 = 0;
    let mut checks: u64 = 0;
    let mut now: Time = 0;

    // Scheduled natural finishes: Reverse-ordered min-heap.
    let mut finish_queue: BinaryHeap<std::cmp::Reverse<(Time, u64, String)>> = BinaryHeap::new();

    let value_of_guard = |g: &str, config: &SimConfig, cs: &ConstraintSet| -> String {
        config.oracle.get(g).cloned().unwrap_or_else(|| {
            cs.domains
                .get(g)
                .and_then(|d| d.first().cloned())
                .unwrap_or_else(|| "done".to_string())
        })
    };

    // Prereq satisfied under current state?
    let satisfied = |p: &Prereq,
                     resolved: &HashMap<StateRef, (Time, u64)>,
                     outcome: &HashMap<&str, GuardOutcome>,
                     checks: &mut u64|
     -> bool {
        *checks += 1;
        match &p.cond {
            None => resolved.contains_key(&p.producer),
            Some(c) => match outcome.get(c.on.as_str()) {
                None => false, // guard undecided: must wait
                Some(GuardOutcome::Value(v)) if *v == c.value => {
                    resolved.contains_key(&p.producer)
                }
                // Guard mismatched or skipped: the constraint is waived.
                Some(_) => true,
            },
        }
    };

    // Exec decision: Some(true/false) once all mentioned guards resolved.
    let exec_known = |a: &str,
                      exec: &ExecConditions,
                      outcome: &HashMap<&str, GuardOutcome>|
     -> Option<bool> {
        let dnf = exec.of(a);
        if dnf.is_always() {
            return Some(true);
        }
        let mut guards: HashSet<&str> = HashSet::new();
        for t in dnf.terms() {
            for c in t {
                guards.insert(&c.on);
            }
        }
        if !guards.iter().all(|g| outcome.contains_key(*g)) {
            return None;
        }
        let value = dnf.terms().iter().any(|term| {
            term.iter().all(|c| {
                matches!(outcome.get(c.on.as_str()), Some(GuardOutcome::Value(v)) if *v == c.value)
            })
        });
        Some(value)
    };

    let total = cs.activities.len();
    loop {
        // Commit phase: start, skip, or unblock whatever is ready at `now`.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for a in &cs.activities {
                let a = a.as_str();
                if done.contains(a) || running.contains(a) && !finish_blocked.contains(a) {
                    continue;
                }
                if finish_blocked.contains(a) {
                    // Re-try the deferred finish.
                    let ok = finish_prereqs[a]
                        .iter()
                        .all(|p| satisfied(p, &resolved, &outcome, &mut checks));
                    if ok {
                        finish_blocked.remove(a);
                        commit_finish(
                            a, now, &mut seq, cs, config, &mut trace, &mut resolved,
                            &mut outcome, &mut running, &mut done, value_of_guard,
                        );
                        progressed = true;
                    }
                    continue;
                }
                if started.contains(a) {
                    continue;
                }
                let starts_ok = start_prereqs[a]
                    .iter()
                    .all(|p| satisfied(p, &resolved, &outcome, &mut checks));
                if !starts_ok {
                    continue;
                }
                match exec_known(a, exec, &outcome) {
                    None => continue,
                    Some(true) => {
                        // Exclusive: defer while a partner is running.
                        if exclusive
                            .get(a)
                            .is_some_and(|ps| ps.iter().any(|p| running.contains(p)))
                        {
                            continue;
                        }
                        // Worker limit: zero-duration activities (the
                        // desugaring coordinators) pass through freely.
                        if let Some(k) = config.workers {
                            if config.durations.of(a) > 0 && running.len() >= k {
                                continue;
                            }
                        }
                        started.insert(a);
                        running.insert(a);
                        trace.events.push(TraceEvent {
                            time: now,
                            seq,
                            activity: a.to_string(),
                            kind: EventKind::Start,
                            value: None,
                        });
                        resolved.insert(StateRef::start(a), (now, seq));
                        resolved.insert(StateRef::run(a), (now, seq));
                        seq += 1;
                        finish_queue.push(std::cmp::Reverse((
                            now + config.durations.of(a),
                            seq,
                            a.to_string(),
                        )));
                        progressed = true;
                    }
                    Some(false) => {
                        // Skip also waits for finish-side prerequisites
                        // (skip events are ordered after everything the
                        // activity would have waited for).
                        let fin_ok = finish_prereqs[a]
                            .iter()
                            .all(|p| satisfied(p, &resolved, &outcome, &mut checks));
                        if !fin_ok {
                            continue;
                        }
                        started.insert(a);
                        done.insert(a);
                        trace.events.push(TraceEvent {
                            time: now,
                            seq,
                            activity: a.to_string(),
                            kind: EventKind::Skip,
                            value: None,
                        });
                        for st in ActivityState::ALL {
                            resolved.insert(
                                StateRef {
                                    activity: a.to_string(),
                                    state: st,
                                },
                                (now, seq),
                            );
                        }
                        outcome.insert(a, GuardOutcome::Skipped);
                        seq += 1;
                        progressed = true;
                    }
                }
            }
        }

        if done.len() == total {
            break;
        }
        // Advance to the next natural finish.
        let Some(std::cmp::Reverse((t, _, a))) = finish_queue.pop() else {
            break; // deadlock: nothing running, nothing ready
        };
        now = now.max(t);
        let a_ref: &str = cs
            .activities
            .get(&a)
            .map(String::as_str)
            .expect("finish of unknown activity");
        // Finish-side prerequisites may defer the completion.
        let ok = finish_prereqs[a_ref]
            .iter()
            .all(|p| satisfied(p, &resolved, &outcome, &mut checks));
        if ok {
            commit_finish(
                a_ref, now, &mut seq, cs, config, &mut trace, &mut resolved, &mut outcome,
                &mut running, &mut done, value_of_guard,
            );
        } else {
            finish_blocked.insert(a_ref);
        }
    }

    let stuck: Vec<String> = cs
        .activities
        .iter()
        .filter(|a| !done.contains(a.as_str()))
        .cloned()
        .collect();
    Schedule {
        trace,
        constraint_checks: checks,
        stuck,
    }
}

#[allow(clippy::too_many_arguments)]
fn commit_finish<'a>(
    a: &'a str,
    now: Time,
    seq: &mut u64,
    cs: &ConstraintSet,
    config: &SimConfig,
    trace: &mut Trace,
    resolved: &mut HashMap<StateRef, (Time, u64)>,
    outcome: &mut HashMap<&'a str, GuardOutcome>,
    running: &mut HashSet<&'a str>,
    done: &mut HashSet<&'a str>,
    value_of_guard: impl Fn(&str, &SimConfig, &ConstraintSet) -> String,
) {
    running.remove(a);
    done.insert(a);
    let value = if cs.domains.contains_key(a) {
        Some(value_of_guard(a, config, cs))
    } else {
        None
    };
    trace.events.push(TraceEvent {
        time: now,
        seq: *seq,
        activity: a.to_string(),
        kind: EventKind::Finish,
        value: value.clone(),
    });
    resolved.insert(StateRef::finish(a), (now, *seq));
    *seq += 1;
    outcome.insert(
        a,
        GuardOutcome::Value(value.unwrap_or_else(|| "done".to_string())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::Origin;

    fn before(a: &str, b: &str) -> Relation {
        Relation::before(StateRef::finish(a), StateRef::start(b), Origin::Data)
    }

    fn run(cs: &ConstraintSet, config: &SimConfig) -> Schedule {
        let exec = ExecConditions::derive(cs);
        simulate(cs, &exec, config)
    }

    #[test]
    fn chain_executes_in_order() {
        let mut cs = ConstraintSet::new("chain");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        cs.push(before("a", "b"));
        cs.push(before("b", "c"));
        let s = run(&cs, &SimConfig::default());
        assert!(s.completed());
        assert!(s.trace.verify(&cs).is_empty());
        assert_eq!(s.trace.makespan(), 3, "three unit activities in series");
        assert_eq!(s.trace.max_concurrency(), 1);
    }

    #[test]
    fn independent_activities_run_concurrently() {
        let mut cs = ConstraintSet::new("par");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        let s = run(&cs, &SimConfig::default());
        assert_eq!(s.trace.makespan(), 1);
        assert_eq!(s.trace.max_concurrency(), 3);
    }

    #[test]
    fn branch_skips_dead_path() {
        let mut cs = ConstraintSet::new("branch");
        for a in ["g", "x", "y", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("y"),
            Condition::new("g", "F"),
            Origin::Control,
        ));
        cs.push(before("x", "j"));
        cs.push(before("y", "j"));

        let mut cfg = SimConfig::default();
        cfg.oracle.insert("g".into(), "T".into());
        let s = run(&cs, &cfg);
        assert!(s.completed());
        assert!(s.trace.executed("x"));
        assert!(s.trace.skipped("y"));
        assert!(s.trace.executed("j"), "join runs despite the dead path");
        assert!(s.trace.verify(&cs).is_empty());

        cfg.oracle.insert("g".into(), "F".into());
        let s2 = run(&cs, &cfg);
        assert!(s2.trace.skipped("x"));
        assert!(s2.trace.executed("y"));
        assert!(s2.trace.verify(&cs).is_empty());
    }

    #[test]
    fn skip_ordered_after_prerequisites() {
        // a → x, x conditional on g=T; on F the skip of x happens no
        // earlier than finish(a) — and therefore the join j (after x)
        // starts after a.
        let mut cs = ConstraintSet::new("skiporder");
        for a in ["g", "a", "x", "j"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        cs.push(before("a", "x"));
        cs.push(before("x", "j"));
        let mut cfg = SimConfig::default();
        cfg.oracle.insert("g".into(), "F".into());
        cfg.durations.set("a", 10);
        let s = run(&cs, &cfg);
        assert!(s.completed());
        let skip_time = s
            .trace
            .events
            .iter()
            .find(|e| e.activity == "x" && e.kind == EventKind::Skip)
            .unwrap()
            .time;
        assert!(skip_time >= 10, "skip waits for finish(a) at t=10");
        let j_start = s.trace.occurrence(&StateRef::start("j")).unwrap().0;
        assert!(j_start >= 10);
    }

    #[test]
    fn finish_side_prerequisite_defers_completion() {
        // S(a) → F(b) with a starting late: b must not finish before a
        // starts.
        let mut cs = ConstraintSet::new("overlap");
        for a in ["z", "a", "b"] {
            cs.add_activity(a);
        }
        cs.push(before("z", "a")); // delays a's start
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("b"),
            Origin::Cooperation,
        ));
        let mut cfg = SimConfig::default();
        cfg.durations.set("z", 5);
        cfg.durations.set("b", 1);
        let s = run(&cs, &cfg);
        assert!(s.completed());
        let b_fin = s.trace.occurrence(&StateRef::finish("b")).unwrap().0;
        let a_start = s.trace.occurrence(&StateRef::start("a")).unwrap().0;
        assert_eq!(a_start, 5);
        assert!(b_fin >= 5, "b finished at {b_fin}, before a started");
        assert!(s.trace.verify(&cs).is_empty());
    }

    #[test]
    fn deadlock_reports_stuck_activities() {
        let mut cs = ConstraintSet::new("dead");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(before("a", "b"));
        cs.push(before("b", "a"));
        let s = run(&cs, &SimConfig::default());
        assert!(!s.completed());
        assert_eq!(s.stuck, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn exclusive_serializes() {
        let mut cs = ConstraintSet::new("excl");
        cs.add_activity("p");
        cs.add_activity("q");
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        let mut cfg = SimConfig::default();
        cfg.durations.set("p", 5);
        cfg.durations.set("q", 5);
        let s = run(&cs, &cfg);
        assert!(s.completed());
        assert!(s.trace.verify_exclusives(&cs).is_empty());
        assert_eq!(s.trace.makespan(), 10, "serialized");
        assert_eq!(s.trace.max_concurrency(), 1);
    }

    #[test]
    fn fewer_constraints_fewer_checks() {
        // Redundant constraints cost checks: a chain plus shortcuts.
        let mut full = ConstraintSet::new("full");
        for a in ["a", "b", "c", "d"] {
            full.add_activity(a);
        }
        full.push(before("a", "b"));
        full.push(before("b", "c"));
        full.push(before("c", "d"));
        let mut redundant = full.clone();
        redundant.push(before("a", "c"));
        redundant.push(before("a", "d"));
        redundant.push(before("b", "d"));
        let s_min = run(&full, &SimConfig::default());
        let s_red = run(&redundant, &SimConfig::default());
        assert_eq!(s_min.trace.makespan(), s_red.trace.makespan());
        assert!(
            s_red.constraint_checks > s_min.constraint_checks,
            "{} vs {}",
            s_red.constraint_checks,
            s_min.constraint_checks
        );
    }

    #[test]
    fn coordinator_activities_take_zero_time() {
        let mut cs = ConstraintSet::new("ht");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::HappenTogether {
            a: StateRef::start("a"),
            b: StateRef::start("b"),
            cond: None,
            origin: Origin::Cooperation,
        });
        cs.desugar_happen_together();
        let s = run(&cs, &SimConfig::default());
        assert!(s.completed(), "stuck: {:?}", s.stuck);
        let a_start = s.trace.occurrence(&StateRef::start("a")).unwrap().0;
        let b_start = s.trace.occurrence(&StateRef::start("b")).unwrap().0;
        assert_eq!(a_start, b_start, "barrier starts together");
    }
}

#[cfg(test)]
mod worker_tests {
    use super::*;
    use dscweaver_dscl::Origin;

    fn independent(n: usize) -> ConstraintSet {
        let mut cs = ConstraintSet::new("workers");
        for i in 0..n {
            cs.add_activity(format!("a{i}"));
        }
        cs
    }

    fn run_with(cs: &ConstraintSet, workers: Option<usize>) -> Schedule {
        let exec = ExecConditions::derive(cs);
        let config = SimConfig {
            workers,
            ..Default::default()
        };
        simulate(cs, &exec, &config)
    }

    #[test]
    fn single_worker_serializes() {
        let cs = independent(5);
        let s = run_with(&cs, Some(1));
        assert!(s.completed());
        assert_eq!(s.trace.max_concurrency(), 1);
        assert_eq!(s.trace.makespan(), 5);
    }

    #[test]
    fn worker_pool_caps_concurrency() {
        let cs = independent(6);
        let s = run_with(&cs, Some(2));
        assert!(s.completed());
        assert_eq!(s.trace.max_concurrency(), 2);
        assert_eq!(s.trace.makespan(), 3, "6 unit tasks on 2 workers");
        let unbounded = run_with(&cs, None);
        assert_eq!(unbounded.trace.makespan(), 1);
        assert_eq!(unbounded.trace.max_concurrency(), 6);
    }

    #[test]
    fn constraints_still_hold_under_worker_limit() {
        let mut cs = independent(4);
        cs.push(Relation::before(
            StateRef::finish("a0"),
            StateRef::start("a3"),
            Origin::Data,
        ));
        let s = run_with(&cs, Some(2));
        assert!(s.completed());
        assert!(s.trace.verify(&cs).is_empty());
    }

    #[test]
    fn coordinators_bypass_the_pool() {
        // A barrier between two activities with a single worker must not
        // deadlock: the zero-duration coordinator does not occupy it.
        let mut cs = independent(2);
        cs.push(Relation::HappenTogether {
            a: StateRef::start("a0"),
            b: StateRef::start("a1"),
            cond: None,
            origin: Origin::Cooperation,
        });
        cs.desugar_happen_together();
        let s = run_with(&cs, Some(2));
        assert!(s.completed(), "{:?}", s.stuck);
    }
}
