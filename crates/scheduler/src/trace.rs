//! Execution traces and post-hoc constraint verification.
//!
//! The central correctness claim of the optimization (§4.4) is that
//! scheduling with only the minimal set `P*` still satisfies every
//! constraint of the original `P`. The verifier checks exactly that: given
//! any trace, does every HappenBefore relation of a (possibly much larger)
//! constraint set hold?

use dscweaver_dscl::{ActivityState, ConstraintSet, Relation, StateRef};

/// Virtual time.
pub type Time = u64;

/// What happened to an activity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// The activity started.
    Start,
    /// The activity finished, with its branch value if it is a guard.
    Finish,
    /// The activity was skipped (dead path).
    Skip,
}

/// One trace event. Events at equal times carry a sequence number giving
/// the engine's commit order.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual time.
    pub time: Time,
    /// Commit order within equal times.
    pub seq: u64,
    /// The activity.
    pub activity: String,
    /// What happened.
    pub kind: EventKind,
    /// Branch value produced (guards only, on Finish).
    pub value: Option<String>,
}

/// A completed run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in commit order.
    pub events: Vec<TraceEvent>,
}

/// A violated constraint.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The relation that failed.
    pub relation: String,
    /// Why.
    pub reason: String,
}

impl Trace {
    /// `(time, seq)` of a state's occurrence: `Start` events resolve
    /// `S` and `R`, `Finish` resolves `F`. A skipped activity resolves all
    /// three states at its skip event (dead-path semantics: the skip *is*
    /// the resolution).
    pub fn occurrence(&self, s: &StateRef) -> Option<(Time, u64)> {
        self.occurrence_of(&s.activity, s.state)
    }

    /// [`Trace::occurrence`] without the `StateRef`: callers that resolve
    /// many states of borrowed activity names (conformance checking, the
    /// streaming monitor's oracle) avoid cloning a `String` per lookup.
    pub fn occurrence_of(&self, activity: &str, state: ActivityState) -> Option<(Time, u64)> {
        self.events.iter().find_map(|e| {
            if e.activity != activity {
                return None;
            }
            let hit = matches!(
                (e.kind, state),
                (EventKind::Start, ActivityState::Start | ActivityState::Run)
                    | (EventKind::Finish, ActivityState::Finish)
                    | (EventKind::Skip, _)
            );
            hit.then_some((e.time, e.seq))
        })
    }

    /// True if the activity ran (started) rather than being skipped.
    pub fn executed(&self, activity: &str) -> bool {
        self.events
            .iter()
            .any(|e| e.activity == activity && e.kind == EventKind::Start)
    }

    /// True if the activity was skipped.
    pub fn skipped(&self, activity: &str) -> bool {
        self.events
            .iter()
            .any(|e| e.activity == activity && e.kind == EventKind::Skip)
    }

    /// The branch value a guard produced, if it finished.
    pub fn value_of(&self, guard: &str) -> Option<&str> {
        self.events.iter().find_map(|e| {
            (e.activity == guard && e.kind == EventKind::Finish)
                .then_some(e.value.as_deref())
                .flatten()
        })
    }

    /// Total makespan (time of the last event).
    pub fn makespan(&self) -> Time {
        self.events.iter().map(|e| e.time).max().unwrap_or(0)
    }

    /// Peak number of simultaneously running activities.
    pub fn max_concurrency(&self) -> usize {
        // Sweep start/finish events in (time, seq) order.
        let mut points: Vec<(Time, u64, i64)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Start => Some((e.time, e.seq, 1)),
                EventKind::Finish => Some((e.time, e.seq, -1)),
                EventKind::Skip => None,
            })
            .collect();
        points.sort();
        let mut cur = 0i64;
        let mut best = 0i64;
        for (_, _, d) in points {
            cur += d;
            best = best.max(cur);
        }
        best as usize
    }

    /// Verifies every HappenBefore constraint of `cs` against this trace.
    ///
    /// * A conditional constraint is enforced only when its guard produced
    ///   the required value.
    /// * A constraint is vacuous if either endpoint activity was skipped —
    ///   ordering obligations bind *executions*; skip ordering is a
    ///   scheduler-internal matter (see `EquivalenceMode::Reachability`).
    /// * An endpoint that never occurred at all (neither ran nor skipped)
    ///   is itself a violation of completeness.
    pub fn verify(&self, cs: &ConstraintSet) -> Vec<Violation> {
        let mut violations = Vec::new();
        // Completeness: every activity resolved.
        for a in &cs.activities {
            if !self.executed(a) && !self.skipped(a) {
                violations.push(Violation {
                    relation: format!("completeness({a})"),
                    reason: format!("activity '{a}' neither executed nor skipped"),
                });
            }
        }
        for r in cs.happen_befores() {
            let Relation::HappenBefore { from, to, cond, .. } = r else {
                unreachable!("filtered to HappenBefore");
            };
            if let Some(c) = cond {
                match self.value_of(&c.on) {
                    Some(v) if v == c.value => {}
                    _ => continue, // guard mismatched or skipped: not enforced
                }
            }
            if self.skipped(&from.activity) || self.skipped(&to.activity) {
                continue;
            }
            let (Some(tf), Some(tt)) = (self.occurrence(from), self.occurrence(to)) else {
                continue; // completeness already reported
            };
            if tf > tt {
                violations.push(Violation {
                    relation: r.to_string(),
                    reason: format!(
                        "{from} at t={},#{} but {to} at t={},#{}",
                        tf.0, tf.1, tt.0, tt.1
                    ),
                });
            }
        }
        violations
    }

    /// Verifies Exclusive relations: the two activities' run intervals must
    /// not overlap.
    pub fn verify_exclusives(&self, cs: &ConstraintSet) -> Vec<Violation> {
        let mut out = Vec::new();
        let interval = |a: &str| -> Option<(Time, Time)> {
            let start = self
                .events
                .iter()
                .find(|e| e.activity == a && e.kind == EventKind::Start)?
                .time;
            let finish = self
                .events
                .iter()
                .find(|e| e.activity == a && e.kind == EventKind::Finish)?
                .time;
            Some((start, finish))
        };
        for (x, y) in cs.exclusives() {
            if let (Some((s1, f1)), Some((s2, f2))) =
                (interval(&x.activity), interval(&y.activity))
            {
                // Overlap of open intervals.
                if s1 < f2 && s2 < f1 {
                    out.push(Violation {
                        relation: format!("{x} >< {y}"),
                        reason: format!("intervals [{s1},{f1}) and [{s2},{f2}) overlap"),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Condition, Origin};

    fn ev(time: Time, seq: u64, activity: &str, kind: EventKind, value: Option<&str>) -> TraceEvent {
        TraceEvent {
            time,
            seq,
            activity: activity.into(),
            kind,
            value: value.map(String::from),
        }
    }

    fn cs_ab() -> ConstraintSet {
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs
    }

    #[test]
    fn ordered_trace_verifies() {
        let t = Trace {
            events: vec![
                ev(0, 0, "a", EventKind::Start, None),
                ev(5, 1, "a", EventKind::Finish, None),
                ev(5, 2, "b", EventKind::Start, None),
                ev(9, 3, "b", EventKind::Finish, None),
            ],
        };
        assert!(t.verify(&cs_ab()).is_empty());
        assert_eq!(t.makespan(), 9);
        assert_eq!(t.max_concurrency(), 1);
    }

    #[test]
    fn reversed_trace_violates() {
        let t = Trace {
            events: vec![
                ev(0, 0, "b", EventKind::Start, None),
                ev(1, 1, "a", EventKind::Start, None),
                ev(2, 2, "a", EventKind::Finish, None),
                ev(3, 3, "b", EventKind::Finish, None),
            ],
        };
        let v = t.verify(&cs_ab());
        assert_eq!(v.len(), 1);
        assert!(v[0].relation.contains("F(a) -> S(b)"));
    }

    #[test]
    fn missing_activity_is_incomplete() {
        let t = Trace {
            events: vec![
                ev(0, 0, "a", EventKind::Start, None),
                ev(1, 1, "a", EventKind::Finish, None),
            ],
        };
        let v = t.verify(&cs_ab());
        assert!(v.iter().any(|x| x.relation.contains("completeness(b)")));
    }

    #[test]
    fn skipped_endpoint_waives_constraint() {
        let t = Trace {
            events: vec![
                ev(0, 0, "b", EventKind::Start, None),
                ev(1, 1, "b", EventKind::Finish, None),
                ev(2, 2, "a", EventKind::Skip, None),
            ],
        };
        assert!(t.verify(&cs_ab()).is_empty());
    }

    #[test]
    fn conditional_constraint_only_when_guard_matches() {
        let mut cs = ConstraintSet::new("t");
        for a in ["g", "x"] {
            cs.add_activity(a);
        }
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            Condition::new("g", "T"),
            Origin::Control,
        ));
        // g produced F: x starting before g's finish is fine.
        let t = Trace {
            events: vec![
                ev(0, 0, "x", EventKind::Start, None),
                ev(1, 1, "g", EventKind::Start, None),
                ev(2, 2, "g", EventKind::Finish, Some("F")),
                ev(3, 3, "x", EventKind::Finish, None),
            ],
        };
        assert!(t.verify(&cs).is_empty());
        // g produced T: now it is a violation.
        let t2 = Trace {
            events: vec![
                ev(0, 0, "x", EventKind::Start, None),
                ev(1, 1, "g", EventKind::Start, None),
                ev(2, 2, "g", EventKind::Finish, Some("T")),
                ev(3, 3, "x", EventKind::Finish, None),
            ],
        };
        assert_eq!(t2.verify(&cs).len(), 1);
    }

    #[test]
    fn tie_broken_by_seq() {
        // Same virtual time, commit order decides.
        let t = Trace {
            events: vec![
                ev(0, 0, "a", EventKind::Start, None),
                ev(3, 1, "a", EventKind::Finish, None),
                ev(3, 2, "b", EventKind::Start, None),
                ev(3, 3, "b", EventKind::Finish, None),
            ],
        };
        assert!(t.verify(&cs_ab()).is_empty());
        let t2 = Trace {
            events: vec![
                ev(3, 0, "b", EventKind::Start, None),
                ev(0, 1, "a", EventKind::Start, None),
                ev(3, 2, "a", EventKind::Finish, None),
                ev(3, 3, "b", EventKind::Finish, None),
            ],
        };
        assert_eq!(t2.verify(&cs_ab()).len(), 1, "seq 2 after seq 0");
    }

    #[test]
    fn exclusive_overlap_detected() {
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("p");
        cs.add_activity("q");
        cs.push(Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        });
        let overlapping = Trace {
            events: vec![
                ev(0, 0, "p", EventKind::Start, None),
                ev(1, 1, "q", EventKind::Start, None),
                ev(2, 2, "p", EventKind::Finish, None),
                ev(3, 3, "q", EventKind::Finish, None),
            ],
        };
        assert_eq!(overlapping.verify_exclusives(&cs).len(), 1);
        let serial = Trace {
            events: vec![
                ev(0, 0, "p", EventKind::Start, None),
                ev(2, 1, "p", EventKind::Finish, None),
                ev(2, 2, "q", EventKind::Start, None),
                ev(3, 3, "q", EventKind::Finish, None),
            ],
        };
        assert!(serial.verify_exclusives(&cs).is_empty());
    }

    #[test]
    fn concurrency_metric() {
        let t = Trace {
            events: vec![
                ev(0, 0, "a", EventKind::Start, None),
                ev(0, 1, "b", EventKind::Start, None),
                ev(0, 2, "c", EventKind::Start, None),
                ev(5, 3, "a", EventKind::Finish, None),
                ev(5, 4, "b", EventKind::Finish, None),
                ev(5, 5, "c", EventKind::Finish, None),
            ],
        };
        assert_eq!(t.max_concurrency(), 3);
    }
}
