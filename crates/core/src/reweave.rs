//! Delta-aware re-weave (§4.4 under evolution): carry the interned
//! closure, the per-candidate greedy verdicts, and the [`DnfPool`] across
//! pipeline runs, and after a small specification edit recompute only
//! what the edit can actually reach.
//!
//! [`WeaveSession`] wraps a [`Weaver`] configuration with persistent
//! state. The first [`WeaveSession::weave`] call runs the full pipeline
//! while recording a memo (topo levels, pre-greedy closure rows, pool,
//! decision classes); subsequent calls diff the translated ASC against
//! the previous one ([`crate::diff`]), update the closure incrementally
//! ([`interned_closure_delta`] — cost proportional to the edit's
//! propagation cone), and re-screen only the candidates whose decision
//! inputs changed, replaying every other recorded verdict. Edits that
//! perturb the level structure, the activity/service sets, or the guard
//! domains fall back to a full rebuild — same results, full price.
//!
//! The kept/removed sets are pinned equal to a from-scratch
//! [`Weaver::run`] (property-tested across random edit bursts), and the
//! session's own artifacts — rows, pool numbering, fingerprint — are
//! bit-identical across thread counts.
//!
//! ## Replay soundness (why reusing a verdict is exact, not heuristic)
//!
//! A candidate `u → v` the prefilters leave undecided is decided by a
//! pure function of: `u`'s live out-edges (guards plus removed-so-far
//! status), the *initial* rows of `u` and its live out-neighbors (rows
//! mutate only through rare slow-path commits, which are tracked), the
//! interned execution conditions, and the guard domains. The bitset
//! prefilters are functions of the same inputs (the reachability
//! skeletons are exactly the supports of the interned rows). A recorded
//! row-level verdict (`AcceptRowUnchanged` / `RejectNotCovered`) is
//! therefore replayed only when:
//!
//! * the candidate matches its record positionally at its tail (same
//!   structural key, same per-tail order) and no earlier decision at
//!   that tail diverged,
//! * the tail's out-edge signature did not change in the edit,
//! * neither `u` nor any live out-neighbor had its row changed — by the
//!   delta closure update or by a slow-path commit in either run,
//! * for execution-aware coverage verdicts, no execution condition
//!   changed (ids compared under the shared pool).
//!
//! Everything else — including every prefilter-decided and every
//! slow-path candidate — is re-executed against the live engine.
//! Prefilter decisions are as cheap to redo as to match, and slow-path
//! commits mutate state, so neither class is worth replaying.

use crate::dependency::DependencySet;
use crate::diff::{diff_constraint_sets, ConstraintDiff};
use crate::exec::ExecConditions;
use crate::minimize::{
    order_candidates, Decision, Engine, EquivalenceMode, MinimizeError, MinimizeOptions,
};
use crate::pipeline::{Weaver, WeaverError, WeaverOutput};
use crate::translate::TranslationReport;
use dscweaver_dscl::sync_graph::{SyncEdge, SyncGraph, SyncNode};
use dscweaver_dscl::{Condition, ConstraintSet, Origin};
use dscweaver_graph::{
    find_cycle, interned_closure, interned_closure_delta, BitSet, DiGraph, DnfId, DnfPool,
    FxHashMap, IRow, NodeId,
};
use dscweaver_graph::topo_sort;
use dscweaver_obs as obs;
use std::collections::{HashMap, VecDeque};

/// Structural identity of a removal candidate: tail, head, guard,
/// dimension. Stable across rebuilds of the same activity/service sets
/// (node ids are deterministic), insensitive to relation re-indexing.
type CandKey = (u32, u32, Option<Condition>, Origin);

/// Sorted out-edge signature of one node — the unit of "did this tail's
/// edges change" between two builds.
type OutSig = Vec<(u32, Option<Condition>, Origin, bool)>;

/// Persistent minimizer state carried between weaves of one session.
#[derive(Clone)]
struct WeaveMemo {
    /// The shared hash-consing pool — append-only, so ids recorded in
    /// `rows0` stay valid across delta updates.
    pool: DnfPool<Condition>,
    /// Pre-greedy interned closure rows of the last build (slow-path
    /// overwrites undone), the input the next delta update edits.
    rows0: Vec<IRow>,
    /// Longest-path-to-sink level per node.
    levels: Vec<usize>,
    /// Interned execution condition per node.
    exec_ids: Vec<DnfId>,
    /// Reachability bitset skeleton per node — the support of `rows0`.
    closure: Vec<BitSet>,
    /// Unconditional-reachability skeleton per node.
    uncond: Vec<BitSet>,
    /// Per-candidate decisions of the last run, in candidate order.
    records: Vec<(CandKey, Decision)>,
    /// Nodes whose rows a slow-path commit touched in the last run.
    slow_touched: Vec<u32>,
    /// Out-edge signature per node of the last graph.
    out_sigs: Vec<OutSig>,
}

#[derive(Clone)]
struct SessionState {
    memo: WeaveMemo,
    output: WeaverOutput,
}

/// A weaver with memory: weave once, then re-weave cheap deltas. See the
/// module docs for the incremental contract.
#[derive(Clone)]
pub struct WeaveSession {
    weaver: Weaver,
    state: Option<SessionState>,
}

/// How one [`WeaveSession::weave`] call was served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReweavePath {
    /// First successful weave of the session — full build, memo recorded.
    Initial,
    /// Incremental: delta closure update plus record replay.
    Delta,
    /// The diff could not be applied incrementally (reason attached);
    /// full rebuild, memo re-recorded.
    Fallback(String),
}

/// Telemetry for one weave through a session.
#[derive(Clone, Debug)]
pub struct ReweaveReport {
    /// Which path served the call.
    pub path: ReweavePath,
    /// ASC-level diff against the previous weave (empty on the first).
    pub diff: ConstraintDiff,
    /// Closure rows the delta wavefront recomposed (full node count on
    /// the non-incremental paths).
    pub rows_recomputed: usize,
    /// Closure rows that actually changed.
    pub rows_changed: usize,
    /// Levels the delta wavefront visited.
    pub delta_levels: usize,
    /// Total removal candidates examined.
    pub candidates_total: usize,
    /// Candidates re-executed against the live engine.
    pub candidates_rescreened: usize,
    /// Candidates whose recorded verdict was replayed.
    pub candidates_reused: usize,
    /// Order-sensitive fingerprint of the session state after this weave
    /// (initial rows, pool size, kept set). Bit-stable across thread
    /// counts; tests pin this.
    pub fingerprint: u64,
}

impl ReweaveReport {
    fn new(path: ReweavePath, diff: ConstraintDiff) -> ReweaveReport {
        ReweaveReport {
            path,
            diff,
            rows_recomputed: 0,
            rows_changed: 0,
            delta_levels: 0,
            candidates_total: 0,
            candidates_rescreened: 0,
            candidates_reused: 0,
            fingerprint: 0,
        }
    }
}

/// Carries the pipeline front half back out of a failed delta attempt so
/// the fallback rebuild does not redo it.
struct DeltaAbort {
    reason: String,
    sc: ConstraintSet,
    exec: ExecConditions,
    asc: ConstraintSet,
    translation: TranslationReport,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, x: u64) {
    *h ^= x;
    *h = h.wrapping_mul(FNV_PRIME);
}

/// Fingerprint over the bit-stable session artifacts.
fn fingerprint(memo: &WeaveMemo, removed_rels: &[usize]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv(&mut h, memo.rows0.len() as u64);
    for row in &memo.rows0 {
        fnv(&mut h, row.len() as u64);
        for &(t, d) in row {
            fnv(&mut h, (t as u64) << 32 | d.0 as u64);
        }
    }
    fnv(&mut h, memo.pool.dnf_count() as u64);
    fnv(&mut h, memo.pool.term_count() as u64);
    for &id in &memo.exec_ids {
        fnv(&mut h, id.0 as u64);
    }
    for &i in removed_rels {
        fnv(&mut h, i as u64);
    }
    h
}

/// Longest-path-to-sink levels — the same schedule `iclosure` computes.
fn levels_of(g: &DiGraph<SyncNode, SyncEdge>, topo: &[NodeId]) -> Vec<usize> {
    let mut level = vec![0usize; g.node_bound()];
    for &n in topo.iter().rev() {
        let l = g
            .successors(n)
            .map(|m| level[m.index()] + 1)
            .max()
            .unwrap_or(0);
        level[n.index()] = l;
    }
    level
}

/// Sorted out-edge signatures of every node.
fn out_sigs(g: &DiGraph<SyncNode, SyncEdge>) -> Vec<OutSig> {
    let mut sigs: Vec<OutSig> = vec![Vec::new(); g.node_bound()];
    for n in g.node_ids() {
        let sig = &mut sigs[n.index()];
        for e in g.out_edges(n) {
            let (_, m) = g.endpoints(e);
            let w = g.edge_weight(e);
            sig.push((m.0, w.cond.clone(), w.origin, w.is_lifecycle()));
        }
        sig.sort();
    }
    sigs
}

fn cand_key(g: &DiGraph<SyncNode, SyncEdge>, e: dscweaver_graph::EdgeId) -> CandKey {
    let (u, v) = g.endpoints(e);
    let w = g.edge_weight(e);
    (u.0, v.0, w.cond.clone(), w.origin)
}

fn conflict_err(g: &DiGraph<SyncNode, SyncEdge>, cycle: &[NodeId]) -> WeaverError {
    WeaverError::Conflict(MinimizeError::Conflict {
        cycle: cycle.iter().map(|&n| g.weight(n).label()).collect(),
    })
}

impl WeaveSession {
    /// A fresh session around the given pipeline configuration.
    pub fn new(weaver: Weaver) -> WeaveSession {
        WeaveSession {
            weaver,
            state: None,
        }
    }

    /// The configuration this session weaves with.
    pub fn config(&self) -> &Weaver {
        &self.weaver
    }

    /// The output of the last successful weave, if any. Failed weaves
    /// (validation errors, conflicts) leave the previous output — and the
    /// incremental state — intact.
    pub fn output(&self) -> Option<&WeaverOutput> {
        self.state.as_ref().map(|s| &s.output)
    }

    /// A shareable frozen snapshot of the session's hash-consing pool
    /// after the last successful weave (`None` before the first). The
    /// snapshot is immutable and cheap to clone across threads; the
    /// session keeps its own live pool, so later re-weaves do not
    /// invalidate handed-out snapshots.
    pub fn frozen_pool(&self) -> Option<dscweaver_graph::FrozenDnfPool<Condition>> {
        self.state
            .as_ref()
            .map(|s| s.memo.pool.clone().freeze())
    }

    /// Weaves `ds`, reusing the previous weave's state when the diff
    /// allows. Results are always identical to a fresh [`Weaver::run`];
    /// the report says which path produced them and what it cost.
    pub fn weave(&mut self, ds: &DependencySet) -> Result<ReweaveReport, WeaverError> {
        let _span = obs::span_with("reweave", || ds.name.clone());
        let (sc, exec, asc, translation) = self.weaver.prepare(ds)?;
        let threads = MinimizeOptions {
            threads: self.weaver.threads,
            ..Default::default()
        }
        .effective_threads();

        // Classify the edit against the previous ASC.
        let mut fallback_reason: Option<String> = None;
        let (path, diff) = match &self.state {
            None => (ReweavePath::Initial, ConstraintDiff::default()),
            Some(prev) => {
                let diff_span = obs::span("reweave.diff");
                let old = &prev.output.asc;
                let diff = diff_constraint_sets(old, &asc);
                drop(diff_span);
                if old.activities != asc.activities || old.services != asc.services {
                    fallback_reason = Some("activity or service set changed".into());
                } else if old.domains != asc.domains {
                    // Domains parameterize every branch-completeness
                    // verdict, so no recorded decision survives.
                    fallback_reason = Some("guard domains changed".into());
                }
                match fallback_reason.clone() {
                    Some(r) => (ReweavePath::Fallback(r), diff),
                    None => (ReweavePath::Delta, diff),
                }
            }
        };
        let mut report = ReweaveReport::new(path, diff);

        if report.path == ReweavePath::Delta {
            // Cycle check before consuming any session state: a bad edit
            // must report the same conflict as a fresh run and leave the
            // previous weave available.
            let sg = SyncGraph::build(&asc);
            if let Some(cycle) = find_cycle(&sg.graph) {
                return Err(conflict_err(&sg.graph, &cycle));
            }
            let prev = self.state.take().expect("delta path requires state");
            match Self::delta_build(
                &self.weaver,
                threads,
                ds,
                sc,
                exec,
                asc,
                translation,
                sg,
                prev.memo,
                &mut report,
            ) {
                Ok(state) => {
                    self.state = Some(state);
                    return Ok(report);
                }
                Err(abort) => {
                    obs::counter_add("reweave.fallbacks", 1);
                    report.path = ReweavePath::Fallback(abort.reason);
                    let state = Self::full_build(
                        &self.weaver,
                        threads,
                        ds,
                        abort.sc,
                        abort.exec,
                        abort.asc,
                        abort.translation,
                        &mut report,
                    )?;
                    self.state = Some(state);
                    return Ok(report);
                }
            }
        }

        if fallback_reason.is_some() {
            obs::counter_add("reweave.fallbacks", 1);
        }
        let state =
            Self::full_build(&self.weaver, threads, ds, sc, exec, asc, translation, &mut report)?;
        self.state = Some(state);
        Ok(report)
    }

    /// From-scratch build that records a fresh memo. Serves the initial
    /// weave and every fallback.
    #[allow(clippy::too_many_arguments)]
    fn full_build(
        weaver: &Weaver,
        threads: usize,
        ds: &DependencySet,
        sc: ConstraintSet,
        exec: ExecConditions,
        asc: ConstraintSet,
        translation: TranslationReport,
        report: &mut ReweaveReport,
    ) -> Result<SessionState, WeaverError> {
        let sg = SyncGraph::build(&asc);
        let g = &sg.graph;
        if let Some(cycle) = find_cycle(g) {
            return Err(conflict_err(g, &cycle));
        }
        let topo = topo_sort(g).expect("cycle-free graph must sort");
        let levels = levels_of(g, &topo);

        let mut pool = DnfPool::new();
        let closure_span = obs::span("reweave.closure");
        let (irows, cstats) =
            interned_closure(g, &|_, w: &SyncEdge| w.cond.clone(), &mut pool, threads)
                .expect("cycle-free graph must close");
        drop(closure_span);
        report.rows_recomputed = cstats.rows;
        report.rows_changed = cstats.rows;

        let eng = Engine::with_closure(
            g,
            &asc,
            &exec,
            weaver.mode,
            // Sequential greedy phase: the engine's parallel slow path is
            // result-identical but pool-numbering-dependent on thread
            // count, and the session fingerprints its pool.
            1,
            MinimizeOptions::default().pool_cache_limit,
            &topo,
            pool,
            irows,
            None,
        );
        let (removed_rels, memo) = Self::screen_all(eng, g, &sg, weaver, levels, None, report);

        Self::finish(ds, sc, exec, asc, translation, &sg, memo, removed_rels, report)
    }

    /// The delta path: incremental closure update plus record replay.
    /// Errors carry the front half back out so the fallback rebuild can
    /// reuse it.
    #[allow(clippy::too_many_arguments)]
    fn delta_build(
        weaver: &Weaver,
        threads: usize,
        ds: &DependencySet,
        sc: ConstraintSet,
        exec: ExecConditions,
        asc: ConstraintSet,
        translation: TranslationReport,
        sg: SyncGraph,
        memo: WeaveMemo,
        report: &mut ReweaveReport,
    ) -> Result<SessionState, Box<DeltaAbort>> {
        let abort = |reason: &str, sc, exec, asc, translation| {
            Box::new(DeltaAbort {
                reason: reason.to_string(),
                sc,
                exec,
                asc,
                translation,
            })
        };
        let g = &sg.graph;
        if g.node_bound() != memo.levels.len() {
            return Err(abort("node structure changed", sc, exec, asc, translation));
        }
        // Tails whose out-edge signature changed: the only places the
        // closure — or a candidate list — can differ.
        let sigs_span = obs::span("reweave.sigs");
        let sigs2 = out_sigs(g);
        let changed_tails: Vec<u32> = (0..g.node_bound() as u32)
            .filter(|&n| memo.out_sigs[n as usize] != sigs2[n as usize])
            .collect();
        drop(sigs_span);

        let WeaveMemo {
            mut pool,
            mut rows0,
            levels,
            exec_ids: old_exec_ids,
            closure,
            uncond,
            records,
            slow_touched,
            out_sigs: _,
        } = memo;

        let delta_span = obs::span_with("reweave.closure.delta", || {
            format!("changed_tails={}", changed_tails.len())
        });
        let delta = interned_closure_delta(
            g,
            &|_, w: &SyncEdge| w.cond.clone(),
            &mut pool,
            threads,
            &mut rows0,
            &levels,
            &changed_tails,
        );
        drop(delta_span);
        let Some((changed_rows, dstats)) = delta else {
            return Err(abort(
                "edit perturbs the level structure",
                sc,
                exec,
                asc,
                translation,
            ));
        };
        report.rows_recomputed = dstats.recomputed;
        report.rows_changed = dstats.changed;
        report.delta_levels = dstats.levels_touched;
        obs::counter_add("reweave.delta.levels", dstats.levels_touched as u64);
        obs::counter_add("reweave.rows_recomputed", dstats.recomputed as u64);

        let topo = topo_sort(g).expect("cycle-free graph must sort");
        // The bitset skeletons are supports of the rows: only changed
        // rows need their skeleton rows rebuilt.
        let engine_span = obs::span("reweave.engine");
        let eng = Engine::with_closure(
            g,
            &asc,
            &exec,
            weaver.mode,
            1,
            MinimizeOptions::default().pool_cache_limit,
            &topo,
            pool,
            rows0,
            Some((
                closure,
                uncond,
                changed_rows.iter().map(|&n| n as usize).collect(),
            )),
        );
        drop(engine_span);
        // Execution conditions are structural formulas interned into the
        // *shared* pool, so id equality is exact structural equality.
        let exec_dirty = eng.exec_ids != old_exec_ids;

        let mut unclean = vec![false; g.node_bound()];
        for &n in &changed_rows {
            unclean[n as usize] = true;
        }
        for &n in &slow_touched {
            unclean[n as usize] = true;
        }
        let mut tail_ok = vec![true; g.node_bound()];
        for &n in &changed_tails {
            tail_ok[n as usize] = false;
        }
        // Recorded verdicts, positionally per tail.
        let mut queues: FxHashMap<u32, VecDeque<(CandKey, Decision)>> = FxHashMap::default();
        for (key, d) in records {
            queues.entry(key.0).or_default().push_back((key, d));
        }

        let replay = ReplayCtx {
            queues,
            tail_ok,
            unclean,
            exec_dirty,
            mode: weaver.mode,
        };
        let (removed_rels, memo) =
            Self::screen_all(eng, g, &sg, weaver, levels, Some(replay), report);
        obs::counter_add("reweave.candidates_rescreened", report.candidates_rescreened as u64);
        obs::counter_add("reweave.candidates_reused", report.candidates_reused as u64);

        Ok(Self::finish(ds, sc, exec, asc, translation, &sg, memo, removed_rels, report)
            .expect("cycle already excluded"))
    }

    /// The recording greedy loop, shared by both paths: decide every
    /// candidate (replaying where the context allows), then dismantle the
    /// engine into the next memo.
    fn screen_all(
        mut eng: Engine<'_>,
        g: &DiGraph<SyncNode, SyncEdge>,
        sg: &SyncGraph,
        weaver: &Weaver,
        levels: Vec<usize>,
        mut replay: Option<ReplayCtx>,
        report: &mut ReweaveReport,
    ) -> (Vec<usize>, WeaveMemo) {
        eng.row_undo = Some(HashMap::new());
        eng.skeleton_undo = Some(HashMap::new());
        let candidates = order_candidates(g, sg, &weaver.order);
        report.candidates_total = candidates.len();
        let screen_span =
            obs::span_with("reweave.screen", || format!("candidates={}", candidates.len()));
        let mut records: Vec<(CandKey, Decision)> = Vec::with_capacity(candidates.len());
        let mut removed_rels: Vec<usize> = Vec::new();
        for &(cand, rel_idx) in &candidates {
            let key = cand_key(g, cand);
            let decision = match &mut replay {
                Some(ctx) => ctx.decide(&mut eng, g, cand, &key, report),
                None => {
                    report.candidates_rescreened += 1;
                    eng.try_remove_classified(cand, None)
                }
            };
            if decision.removed() {
                removed_rels.push(rel_idx);
            }
            records.push((key, decision));
        }
        drop(screen_span);

        // Dismantle: undo slow-path row and skeleton swaps so the memo
        // keeps the pre-greedy closure (the delta update's expected
        // input) with skeletons that match it.
        let Engine {
            pool,
            irows,
            exec_ids,
            closure,
            uncond,
            dirty_rows,
            row_undo,
            skeleton_undo,
            ..
        } = eng;
        let mut rows0 = irows;
        if let Some(undo) = row_undo {
            for (ni, old) in undo {
                rows0[ni] = old;
            }
        }
        let (mut closure, mut uncond) = (closure, uncond);
        if let Some(undo) = skeleton_undo {
            for (ni, (c, u)) in undo {
                closure[ni] = c;
                uncond[ni] = u;
            }
        }
        let mut slow_touched: Vec<u32> = dirty_rows.iter().map(|&i| i as u32).collect();
        slow_touched.sort_unstable();
        let memo = WeaveMemo {
            pool,
            rows0,
            levels,
            exec_ids,
            closure,
            uncond,
            records,
            slow_touched,
            out_sigs: out_sigs(g),
        };
        (removed_rels, memo)
    }

    /// Assembles the output and the session state.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        ds: &DependencySet,
        sc: ConstraintSet,
        exec: ExecConditions,
        asc: ConstraintSet,
        translation: TranslationReport,
        _sg: &SyncGraph,
        memo: WeaveMemo,
        removed_rels: Vec<usize>,
        report: &mut ReweaveReport,
    ) -> Result<SessionState, WeaverError> {
        let _span = obs::span("reweave.finish");
        report.fingerprint = fingerprint(&memo, &removed_rels);
        let mut is_removed = vec![false; asc.relations.len()];
        for &i in &removed_rels {
            is_removed[i] = true;
        }
        // The three output pieces are independent read-only clones of the
        // inputs; on large processes they dominate the post-screening cost,
        // so build them on separate threads. Clones are deterministic, so
        // this cannot perturb the bit-identical-to-fresh guarantee.
        let (minimal, removed, dependencies) = if asc.relations.len() >= 4096 {
            std::thread::scope(|s| {
                let minimal = s.spawn(|| SyncGraph::subset(&asc, &|i| !is_removed[i]));
                let removed = s.spawn(|| {
                    removed_rels
                        .iter()
                        .map(|&i| asc.relations[i].clone())
                        .collect::<Vec<_>>()
                });
                let dependencies = ds.clone();
                (minimal.join().unwrap(), removed.join().unwrap(), dependencies)
            })
        } else {
            (
                SyncGraph::subset(&asc, &|i| !is_removed[i]),
                removed_rels
                    .iter()
                    .map(|&i| asc.relations[i].clone())
                    .collect(),
                ds.clone(),
            )
        };
        let output = WeaverOutput {
            dependencies,
            sc,
            exec,
            asc,
            translation,
            minimal,
            removed,
        };
        Ok(SessionState { memo, output })
    }
}

/// Replay context for the delta path's screening loop.
struct ReplayCtx {
    queues: FxHashMap<u32, VecDeque<(CandKey, Decision)>>,
    tail_ok: Vec<bool>,
    unclean: Vec<bool>,
    exec_dirty: bool,
    mode: EquivalenceMode,
}

impl ReplayCtx {
    /// Decide one candidate: replay the recorded verdict when every
    /// soundness condition holds, else re-execute and track divergence.
    fn decide(
        &mut self,
        eng: &mut Engine<'_>,
        g: &DiGraph<SyncNode, SyncEdge>,
        cand: dscweaver_graph::EdgeId,
        key: &CandKey,
        report: &mut ReweaveReport,
    ) -> Decision {
        let (u, v) = g.endpoints(cand);
        let ui = u.index();
        let rec = self
            .queues
            .get_mut(&key.0)
            .and_then(|q| q.pop_front());
        let rec = match rec {
            Some((rkey, d)) if rkey == *key => Some(d),
            Some(_) => {
                // Positional mismatch: the tail's candidate sequence
                // changed in a way the signature diff did not flag
                // (e.g. relations reordered). Stop replaying this tail.
                self.tail_ok[ui] = false;
                None
            }
            None => None,
        };

        if let Some(d) = rec {
            if self.replayable(eng, g, cand, u, v, d) {
                if d.removed() {
                    eng.removed.insert(cand);
                    eng.dirty_tails.insert(ui);
                }
                report.candidates_reused += 1;
                return d;
            }
            report.candidates_rescreened += 1;
            let fresh = eng.try_remove_classified(cand, None);
            if fresh.removed() != d.removed() {
                // The verdict flipped: later records at this tail assumed
                // a different live-edge history.
                self.tail_ok[ui] = false;
            }
            fresh
        } else {
            report.candidates_rescreened += 1;
            eng.try_remove_classified(cand, None)
        }
    }

    /// The full eligibility check from the module docs.
    fn replayable(
        &self,
        eng: &Engine<'_>,
        g: &DiGraph<SyncNode, SyncEdge>,
        cand: dscweaver_graph::EdgeId,
        u: NodeId,
        v: NodeId,
        d: Decision,
    ) -> bool {
        let ui = u.index();
        if !self.tail_ok[ui] {
            return false;
        }
        // Only row-level verdicts are worth replaying; everything else is
        // re-executed (prefilter classes are as cheap to redo, slow-path
        // classes mutate state).
        let row_class = matches!(d, Decision::AcceptRowUnchanged | Decision::RejectNotCovered);
        if !row_class {
            return false;
        }
        // Coverage verdicts consult execution conditions only in
        // execution-aware mode; row-identity never does.
        if self.exec_dirty
            && d == Decision::RejectNotCovered
            && self.mode == EquivalenceMode::ExecutionAware
        {
            return false;
        }
        // The record applies only to the prefilter-undecided route.
        if eng.prefilter_accept(cand, u, v) || !eng.has_alternate_path(cand, u, v) {
            return false;
        }
        // Row inputs must be untouched in both runs: the tail itself and
        // every live out-neighbor.
        let clean = |ni: usize| !self.unclean[ni] && !eng.dirty_rows.contains(&ni);
        if !clean(ui) {
            return false;
        }
        g.out_edges(u).all(|oe| {
            oe == cand || eng.removed.contains(&oe) || {
                let (_, m) = g.endpoints(oe);
                clean(m.index())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;

    fn base() -> DependencySet {
        let mut ds = DependencySet::new("evolve");
        for a in ["a", "g", "b", "c", "d"] {
            ds.add_activity(a);
        }
        ds.add_domain("g", vec!["T".into(), "F".into()]);
        ds.push(Dependency::data("a", "g"));
        ds.push(Dependency::control("g", "b", "T"));
        ds.push(Dependency::control("g", "c", "F"));
        ds.push(Dependency::data("b", "d"));
        ds.push(Dependency::data("c", "d"));
        ds.push(Dependency::data("a", "b")); // redundant under exec-awareness
        ds.push(Dependency::cooperation("a", "d")); // shortcut
        ds
    }

    fn rendered(out: &WeaverOutput) -> (String, Vec<String>) {
        let mut kept: Vec<String> = out
            .minimal
            .happen_befores()
            .map(|r| format!("{r} [{}]", r.origin()))
            .collect();
        kept.sort();
        (
            kept.join("\n"),
            out.removed.iter().map(|r| r.to_string()).collect(),
        )
    }

    fn assert_matches_fresh(session: &WeaveSession, ds: &DependencySet) {
        let fresh = session.weaver.run(ds).expect("fresh weave");
        let out = session.output().expect("session output");
        assert_eq!(rendered(out), rendered(&fresh));
    }

    #[test]
    fn initial_weave_matches_run() {
        let mut s = Weaver::new().session();
        let rep = s.weave(&base()).unwrap();
        assert_eq!(rep.path, ReweavePath::Initial);
        assert!(rep.diff.is_empty());
        assert_matches_fresh(&s, &base());
    }

    #[test]
    fn identity_reweave_is_pure_replay() {
        let mut s = Weaver::new().session();
        let rep0 = s.weave(&base()).unwrap();
        let rep1 = s.weave(&base()).unwrap();
        assert_eq!(rep1.path, ReweavePath::Delta);
        assert!(rep1.diff.is_empty());
        assert_eq!(rep1.rows_recomputed, 0);
        assert_eq!(rep1.rows_changed, 0);
        assert_eq!(rep1.fingerprint, rep0.fingerprint);
        assert_matches_fresh(&s, &base());
    }

    #[test]
    fn edit_takes_delta_path_and_matches_fresh() {
        let mut s = Weaver::new().session();
        s.weave(&base()).unwrap();
        // Level-stable edit: another redundant shortcut along a → b → d.
        let mut v2 = base();
        v2.push(Dependency::cooperation("b", "d"));
        let rep = s.weave(&v2).unwrap();
        assert_eq!(rep.path, ReweavePath::Delta, "{:?}", rep.diff);
        assert!(rep.rows_recomputed < 15, "cone should be small");
        assert_matches_fresh(&s, &v2);
        // And back to v1 (edge delete).
        let rep = s.weave(&base()).unwrap();
        assert_eq!(rep.path, ReweavePath::Delta);
        assert_matches_fresh(&s, &base());
    }

    #[test]
    fn cycle_edit_errors_and_preserves_state() {
        let mut s = Weaver::new().session();
        s.weave(&base()).unwrap();
        let fp = s.weave(&base()).unwrap().fingerprint;
        let mut bad = base();
        bad.push(Dependency::cooperation("d", "a"));
        let err = s.weave(&bad).unwrap_err();
        let fresh_err = Weaver::new().run(&bad).unwrap_err();
        assert_eq!(err.to_string(), fresh_err.to_string());
        // Session survives and still serves the last good revision.
        assert!(s.output().is_some());
        let rep = s.weave(&base()).unwrap();
        assert_eq!(rep.path, ReweavePath::Delta);
        assert_eq!(rep.fingerprint, fp);
    }

    #[test]
    fn activity_change_falls_back() {
        let mut s = Weaver::new().session();
        s.weave(&base()).unwrap();
        let mut v2 = base();
        v2.add_activity("z");
        v2.push(Dependency::data("d", "z"));
        let rep = s.weave(&v2).unwrap();
        assert!(matches!(rep.path, ReweavePath::Fallback(_)), "{:?}", rep.path);
        assert_matches_fresh(&s, &v2);
        // The rebuilt memo serves deltas again.
        let mut v3 = v2.clone();
        v3.push(Dependency::cooperation("b", "d"));
        let rep = s.weave(&v3).unwrap();
        assert_eq!(rep.path, ReweavePath::Delta);
        assert_matches_fresh(&s, &v3);
    }

    #[test]
    fn guard_flip_reweaves_and_matches() {
        let mut s = Weaver::new().session();
        s.weave(&base()).unwrap();
        // Flip the g → c guard: changes exec conditions AND an edge guard.
        let mut v2 = base();
        for d in &mut v2.deps {
            if d.from.name == "g" && d.to.name == "c" {
                d.kind = crate::dependency::DependencyKind::Control {
                    value: Some("T".into()),
                };
            }
        }
        let rep = s.weave(&v2).unwrap();
        assert_eq!(rep.path, ReweavePath::Delta, "{:?}", rep.diff);
        assert!(!rep.diff.annotation_changed.is_empty(), "{:?}", rep.diff);
        assert_matches_fresh(&s, &v2);
    }
}
