//! Execution conditions and semantic implication of guard DNFs.
//!
//! The paper's Definition 4 compares condition-annotated closures, and its
//! Figure 9 / Table 2 results rely on two pieces of reasoning the text
//! leaves implicit:
//!
//! 1. **Execution-awareness** — `recClient_po → invPurchase_po` is removed
//!    although the remaining path runs through `if_au = T`: that is sound
//!    precisely because `invPurchase_po` *executes only when* `if_au = T`
//!    (its control dependency), so the conditional path covers every
//!    execution in which the constraint matters.
//! 2. **Branch completeness** — `if_au → replyClient_oi` is removed because
//!    a `T` path and an `F` path both exist and `{T, F}` exhausts `if_au`'s
//!    domain.
//!
//! This module makes both precise. [`ExecConditions`] derives, for every
//! activity, the DNF of branch conditions under which it executes at all
//! (from the control-dependency relations, transitively). [`implies_under`]
//! decides `exec ∧ old ⟹ new` by enumerating assignments of the involved
//! guards over their declared domains — which subsumes absorption *and*
//! resolution/branch-completeness without any ad-hoc rewriting.

use dscweaver_dscl::{Condition, ConstraintSet, Origin, Relation};
use dscweaver_graph::annotated::Dnf;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Per-activity execution conditions, derived from control dependencies.
///
/// Derived **before** optimization and carried alongside the constraint set
/// from then on: the optimizer may remove control *constraints* (monitoring
/// obligations) without changing the fact of when an activity executes.
#[derive(Clone, Debug, Default)]
pub struct ExecConditions {
    map: HashMap<String, Dnf<Condition>>,
}

impl ExecConditions {
    /// Derives execution conditions from `cs`'s Control-origin relations:
    /// `exec(b) = ⋁ over control parents (g, v) of (exec(g) ⊗ {g=v})`,
    /// activities without control parents executing unconditionally.
    /// Cycles through control dependencies (loop bodies) conservatively
    /// yield *always* — using a weaker assumption can only make the
    /// optimizer keep more constraints, never remove a needed one.
    pub fn derive(cs: &ConstraintSet) -> ExecConditions {
        // Direct control parents: target activity → [(guard, Some(value))].
        let mut parents: HashMap<&str, Vec<(&str, Option<&Condition>)>> = HashMap::new();
        for r in &cs.relations {
            if let Relation::HappenBefore {
                from,
                to,
                cond,
                origin: Origin::Control,
            } = r
            {
                parents
                    .entry(to.activity.as_str())
                    .or_default()
                    .push((from.activity.as_str(), cond.as_ref()));
            }
        }

        fn compute<'a>(
            act: &'a str,
            parents: &HashMap<&'a str, Vec<(&'a str, Option<&'a Condition>)>>,
            memo: &mut HashMap<&'a str, Dnf<Condition>>,
            visiting: &mut BTreeSet<&'a str>,
        ) -> Dnf<Condition> {
            if let Some(d) = memo.get(act) {
                return d.clone();
            }
            if !visiting.insert(act) {
                return Dnf::always(); // cycle: conservative
            }
            let result = match parents.get(act) {
                None => Dnf::always(),
                Some(ps) => {
                    let mut acc: Dnf<Condition> = Dnf::empty();
                    for (g, cond) in ps {
                        let parent_exec = compute(g, parents, memo, visiting);
                        parent_exec.compose_into(*cond, &mut acc);
                    }
                    if acc.is_empty() {
                        Dnf::always()
                    } else {
                        acc
                    }
                }
            };
            visiting.remove(act);
            memo.insert(act, result.clone());
            result
        }

        let mut memo: HashMap<&str, Dnf<Condition>> = HashMap::new();
        let mut visiting = BTreeSet::new();
        for a in &cs.activities {
            compute(a.as_str(), &parents, &mut memo, &mut visiting);
        }
        ExecConditions {
            map: memo
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// The execution condition of `activity` (*always* if unknown).
    pub fn of(&self, activity: &str) -> Dnf<Condition> {
        self.map
            .get(activity)
            .cloned()
            .unwrap_or_else(Dnf::always)
    }

    /// True if `activity` executes unconditionally.
    pub fn is_unconditional(&self, activity: &str) -> bool {
        self.of(activity).is_always()
    }
}

/// Conjunction of two DNFs (cross product of terms, minimized).
pub fn dnf_and(a: &Dnf<Condition>, b: &Dnf<Condition>) -> Dnf<Condition> {
    let mut out = Dnf::empty();
    for ta in a.terms() {
        for tb in b.terms() {
            let mut t = ta.clone();
            t.extend(tb.iter().cloned());
            out.insert(t);
        }
    }
    out
}

/// Evaluates a DNF under a guard assignment, given as a name-sorted slice
/// (a handful of guards at most, so lookup is a linear scan — no per-step
/// map allocation on the Definition-4 hot path).
fn eval(d: &Dnf<Condition>, assignment: &[(&str, &str)]) -> bool {
    d.terms().iter().any(|term| {
        term.iter().all(|c| {
            assignment
                .iter()
                .find(|&&(g, _)| g == c.on.as_str())
                .is_some_and(|&(_, v)| v == c.value.as_str())
        })
    })
}

/// Decides `context ∧ old ⟹ new` semantically, enumerating assignments of
/// every guard mentioned in the three DNFs over its domain.
///
/// Guards missing from `domains` get a synthetic domain: the values seen in
/// the formulas plus one fresh "anything else" value — sound, because all
/// conditions on that guard are false under the fresh value.
///
/// Returns `false` (conservative: not implied) if the assignment space
/// exceeds `2^16` — never observed on realistic processes, where at most a
/// handful of guards interact.
pub fn implies_under(
    context: &Dnf<Condition>,
    old: &Dnf<Condition>,
    new: &Dnf<Condition>,
    domains: &BTreeMap<String, Vec<String>>,
) -> bool {
    // Collect involved guards.
    let mut guards: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for d in [context, old, new] {
        for term in d.terms() {
            for c in term {
                guards.entry(&c.on).or_default().insert(&c.value);
            }
        }
    }
    if guards.is_empty() {
        // Propositional: truth independent of assignment.
        let c = context.terms().iter().any(|t| t.is_empty());
        let o = old.terms().iter().any(|t| t.is_empty());
        let n = new.terms().iter().any(|t| t.is_empty());
        return !(c && o) || n;
    }

    const OTHER: &str = "\u{1}other";
    let guard_values: Vec<(&str, Vec<&str>)> = guards
        .iter()
        .map(|(&g, seen)| {
            let vals: Vec<&str> = match domains.get(g) {
                Some(dom) => dom.iter().map(String::as_str).collect(),
                None => {
                    let mut v: Vec<&str> = seen.iter().copied().collect();
                    v.push(OTHER);
                    v
                }
            };
            (g, vals)
        })
        .collect();

    let space: usize = guard_values
        .iter()
        .map(|(_, v)| v.len().max(1))
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .unwrap_or(usize::MAX);
    if space > 1 << 16 {
        return false;
    }

    // Odometer enumeration over one in-place assignment vector — each
    // step rewrites only the positions that ticked, instead of
    // re-collecting a fresh map per assignment.
    let mut idx = vec![0usize; guard_values.len()];
    let mut assignment: Vec<(&str, &str)> = guard_values
        .iter()
        .map(|(g, vals)| (*g, vals[0]))
        .collect();
    loop {
        if eval(context, &assignment) && eval(old, &assignment) && !eval(new, &assignment) {
            return false;
        }
        // Increment.
        let mut pos = 0;
        loop {
            if pos == idx.len() {
                return true;
            }
            idx[pos] += 1;
            if idx[pos] < guard_values[pos].1.len() {
                assignment[pos].1 = guard_values[pos].1[idx[pos]];
                break;
            }
            idx[pos] = 0;
            assignment[pos].1 = guard_values[pos].1[0];
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Origin, Relation, StateRef};

    fn cond(g: &str, v: &str) -> Condition {
        Condition::new(g, v)
    }

    fn purchasing_like() -> ConstraintSet {
        let mut cs = ConstraintSet::new("t");
        for a in ["if_au", "invPurchase_po", "set_oi", "reply", "nested_if", "deep"] {
            cs.add_activity(a);
        }
        cs.add_domain("if_au", vec!["T".into(), "F".into()]);
        cs.add_domain("nested_if", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("if_au"),
            StateRef::start("invPurchase_po"),
            cond("if_au", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("if_au"),
            StateRef::start("set_oi"),
            cond("if_au", "F"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("if_au"),
            StateRef::start("reply"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("if_au"),
            StateRef::start("nested_if"),
            cond("if_au", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("nested_if"),
            StateRef::start("deep"),
            cond("nested_if", "F"),
            Origin::Control,
        ));
        cs
    }

    #[test]
    fn exec_conditions_derived() {
        let cs = purchasing_like();
        let exec = ExecConditions::derive(&cs);
        assert!(exec.is_unconditional("if_au"));
        assert!(exec.is_unconditional("reply"), "unconditional control dep");
        assert_eq!(
            exec.of("invPurchase_po").terms(),
            &[vec![cond("if_au", "T")]]
        );
        assert_eq!(exec.of("set_oi").terms(), &[vec![cond("if_au", "F")]]);
        // Nested: deep executes iff if_au=T ∧ nested_if=F.
        assert_eq!(
            exec.of("deep").terms(),
            &[vec![cond("if_au", "T"), cond("nested_if", "F")]]
        );
        // Unknown activity defaults to always.
        assert!(exec.is_unconditional("ghost"));
    }

    #[test]
    fn exec_cycle_is_conservative() {
        let mut cs = ConstraintSet::new("c");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.add_domain("a", vec!["T".into(), "F".into()]);
        cs.add_domain("b", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("a"),
            StateRef::start("b"),
            cond("a", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("b"),
            StateRef::start("a"),
            cond("b", "T"),
            Origin::Control,
        ));
        let exec = ExecConditions::derive(&cs);
        // The cycle collapses to `always` somewhere; derivation terminates
        // and stays sound (weaker assumptions only).
        let _ = exec.of("a");
        let _ = exec.of("b");
    }

    #[test]
    fn implies_execution_awareness() {
        // old = always, new = {if_au=T}, context = exec(invPurchase_po) =
        // {if_au=T}: implied — the paper's recClient_po → invPurchase_po
        // removal.
        let domains: BTreeMap<String, Vec<String>> =
            [("if_au".to_string(), vec!["T".into(), "F".into()])].into();
        let ctx = Dnf::term(vec![cond("if_au", "T")]);
        let old = Dnf::always();
        let new = Dnf::term(vec![cond("if_au", "T")]);
        assert!(implies_under(&ctx, &old, &new, &domains));
        // Without the execution context it is NOT implied.
        assert!(!implies_under(&Dnf::always(), &old, &new, &domains));
    }

    #[test]
    fn implies_branch_completeness() {
        // old = always; new = {if_au=T} ∨ {if_au=F} with domain {T,F}:
        // implied — the paper's if_au → replyClient_oi removal.
        let domains: BTreeMap<String, Vec<String>> =
            [("if_au".to_string(), vec!["T".into(), "F".into()])].into();
        let mut new = Dnf::term(vec![cond("if_au", "T")]);
        new.insert(vec![cond("if_au", "F")]);
        assert!(implies_under(&Dnf::always(), &Dnf::always(), &new, &domains));
        // With a three-valued domain {T, F, E} it is not.
        let domains3: BTreeMap<String, Vec<String>> = [(
            "if_au".to_string(),
            vec!["T".into(), "F".into(), "E".into()],
        )]
        .into();
        assert!(!implies_under(&Dnf::always(), &Dnf::always(), &new, &domains3));
    }

    #[test]
    fn implies_undeclared_guard_gets_other_value() {
        // Guard without a domain: {g=T} ∨ {g=F} must NOT cover always,
        // because g could take a third, unseen value.
        let domains = BTreeMap::new();
        let mut new = Dnf::term(vec![cond("g", "T")]);
        new.insert(vec![cond("g", "F")]);
        assert!(!implies_under(&Dnf::always(), &Dnf::always(), &new, &domains));
        // But {g=T} still covers {g=T}.
        let t = Dnf::term(vec![cond("g", "T")]);
        assert!(implies_under(&Dnf::always(), &t, &t, &domains));
    }

    #[test]
    fn implies_propositional_base_cases() {
        let domains = BTreeMap::new();
        let always: Dnf<Condition> = Dnf::always();
        let never: Dnf<Condition> = Dnf::empty();
        assert!(implies_under(&always, &never, &never, &domains));
        assert!(implies_under(&always, &always, &always, &domains));
        assert!(!implies_under(&always, &always, &never, &domains));
        assert!(implies_under(&never, &always, &never, &domains), "false context");
    }

    #[test]
    fn dnf_and_distributes() {
        let a = {
            let mut d = Dnf::term(vec![cond("x", "T")]);
            d.insert(vec![cond("y", "T")]);
            d
        };
        let b = Dnf::term(vec![cond("z", "F")]);
        let both = dnf_and(&a, &b);
        assert_eq!(both.terms().len(), 2);
        assert!(both
            .terms()
            .iter()
            .all(|t| t.contains(&cond("z", "F"))));
    }

    #[test]
    fn multi_guard_interaction() {
        // context: {a=T}; old: {b=T}; new: {a=T, b=T} — implied.
        let domains: BTreeMap<String, Vec<String>> = [
            ("a".to_string(), vec!["T".into(), "F".into()]),
            ("b".to_string(), vec!["T".into(), "F".into()]),
        ]
        .into();
        let ctx = Dnf::term(vec![cond("a", "T")]);
        let old = Dnf::term(vec![cond("b", "T")]);
        let new = Dnf::term(vec![cond("a", "T"), cond("b", "T")]);
        assert!(implies_under(&ctx, &old, &new, &domains));
        assert!(!implies_under(&Dnf::always(), &old, &new, &domains));
    }
}
