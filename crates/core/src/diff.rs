//! Diffing constraint sets and pipeline outputs — the tooling face of the
//! paper's adaptability claim (§1: with dependencies as first-class
//! citizens, adding or deleting a constraint is a set edit, and its global
//! effect on the synchronization scheme is *computable*).

use crate::pipeline::WeaverOutput;
use dscweaver_dscl::{Condition, ConstraintSet, Relation, StateRef};
use dscweaver_graph::FxHashMap;
use std::collections::{BTreeMap, BTreeSet};

/// The difference between two constraint sets: HappenBefore relations
/// compared structurally (endpoints, condition; provenance ignored), plus
/// Exclusive pairs, annotation-only edge changes, and guard-domain edits.
/// The extra axes let the re-weave session classify an edit as
/// closure-relevant (the synchronization graph changed) versus
/// screen-only (only dynamic checking or guard semantics changed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintDiff {
    /// Relations only in the new set (rendered).
    pub added: Vec<String>,
    /// Relations only in the old set (rendered).
    pub removed: Vec<String>,
    /// Activities only in the new set.
    pub added_activities: Vec<String>,
    /// Activities only in the old set.
    pub removed_activities: Vec<String>,
    /// Exclusive pairs only in the new set (rendered `a >< b`). Exclusive
    /// relations add no edges to the synchronization graph — they are
    /// checked dynamically — so these never affect the closure.
    pub exclusive_added: Vec<String>,
    /// Exclusive pairs only in the old set.
    pub exclusive_removed: Vec<String>,
    /// Endpoint pairs present in *both* sets whose branch-condition
    /// multiset differs (rendered `from -> to: [old conds] => [new
    /// conds]`). These edits are already counted in `added`/`removed`
    /// key-wise; this view groups them as guard edits on a surviving
    /// edge.
    pub annotation_changed: Vec<String>,
    /// Guard variables whose declared domain differs (rendered
    /// `var: [old] => [new]`). Domains never alter the closure rows, but
    /// they change branch-completeness verdicts during screening.
    pub domain_changed: Vec<String>,
}

impl ConstraintDiff {
    /// True if the sets coincide on every compared axis.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.added_activities.is_empty()
            && self.removed_activities.is_empty()
            && self.exclusive_added.is_empty()
            && self.exclusive_removed.is_empty()
            && self.domain_changed.is_empty()
    }

    /// True if the edit changes the synchronization graph itself —
    /// HappenBefore edges (including pure guard edits) or the activity
    /// set — and therefore the condition-annotated closure.
    pub fn closure_relevant(&self) -> bool {
        !self.added.is_empty()
            || !self.removed.is_empty()
            || !self.added_activities.is_empty()
            || !self.removed_activities.is_empty()
    }

    /// True if the edit leaves the closure untouched but still changes
    /// what screening or dynamic checking sees: Exclusive pairs or guard
    /// domains.
    pub fn screen_only(&self) -> bool {
        !self.is_empty() && !self.closure_relevant()
    }
}

impl std::fmt::Display for ConstraintDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for a in &self.added_activities {
            writeln!(f, "+ activity {a}")?;
        }
        for a in &self.removed_activities {
            writeln!(f, "- activity {a}")?;
        }
        for r in &self.added {
            writeln!(f, "+ {r}")?;
        }
        for r in &self.removed {
            writeln!(f, "- {r}")?;
        }
        for r in &self.exclusive_added {
            writeln!(f, "+ {r}")?;
        }
        for r in &self.exclusive_removed {
            writeln!(f, "- {r}")?;
        }
        for r in &self.annotation_changed {
            writeln!(f, "~ {r}")?;
        }
        for d in &self.domain_changed {
            writeln!(f, "~ domain {d}")?;
        }
        Ok(())
    }
}

/// Structural key of a HappenBefore relation, ignoring provenance —
/// borrowed, so building the comparison sets allocates nothing. Rendering
/// happens only for keys that end up in the diff.
type HbKey<'a> = (&'a StateRef, &'a StateRef, Option<&'a Condition>);

fn render_hb((from, to, cond): &HbKey<'_>) -> String {
    match cond {
        Some(c) => format!("{from} ->[{c}] {to}"),
        None => format!("{from} -> {to}"),
    }
}

/// Structural key of an Exclusive relation, order- and
/// provenance-insensitive.
fn exclusive_key(r: &Relation) -> Option<String> {
    match r {
        Relation::Exclusive { a, b, .. } => {
            let (a, b) = (a.to_string(), b.to_string());
            Some(if a <= b {
                format!("{a} >< {b}")
            } else {
                format!("{b} >< {a}")
            })
        }
        _ => None,
    }
}

/// Renders one annotation-changed entry (`from -> to: [old] => [new]`,
/// condition lists string-sorted, `""` = unconditional).
fn render_annotation(
    pair: (&StateRef, &StateRef),
    old_conds: &[Option<&Condition>],
    new_conds: &[Option<&Condition>],
) -> String {
    let fmt = |conds: &[Option<&Condition>]| {
        let mut v: Vec<String> = conds
            .iter()
            .map(|c| c.map(|c| c.to_string()).unwrap_or_default())
            .collect();
        v.sort();
        v.join(", ")
    };
    format!(
        "{} -> {}: [{}] => [{}]",
        pair.0,
        pair.1,
        fmt(old_conds),
        fmt(new_conds)
    )
}

/// Guard-domain edits, rendered `var: [old] => [new]`.
fn domain_diff(old: &ConstraintSet, new: &ConstraintSet) -> Vec<String> {
    old.domains
        .iter()
        .map(|(var, vals)| (var, Some(vals), new.domains.get(var)))
        .chain(
            new.domains
                .iter()
                .filter(|(var, _)| !old.domains.contains_key(*var))
                .map(|(var, vals)| (var, None, Some(vals))),
        )
        .filter(|(_, old_vals, new_vals)| old_vals != new_vals)
        .map(|(var, old_vals, new_vals)| {
            let fmt = |v: Option<&Vec<String>>| v.map(|v| v.join(", ")).unwrap_or_default();
            format!("{var}: [{}] => [{}]", fmt(old_vals), fmt(new_vals))
        })
        .collect()
}

/// Computes the diff `old → new`.
pub fn diff_constraint_sets(old: &ConstraintSet, new: &ConstraintSet) -> ConstraintDiff {
    // Fast path for the incremental re-weave session: an edit burst leaves
    // the relation lists positionally identical outside a small window, so
    // trim the common prefix and suffix (plain `PartialEq`, no ordering
    // structure) and diff only the window against the full sets. Falls
    // back to the symmetric full diff when the window is large — e.g. the
    // sets come from unrelated processes or everything was reordered.
    let (o, n) = (&old.relations, &new.relations);
    let mut lo = 0;
    while lo < o.len().min(n.len()) && o[lo] == n[lo] {
        lo += 1;
    }
    let (mut oe, mut ne) = (o.len(), n.len());
    while oe > lo && ne > lo && o[oe - 1] == n[ne - 1] {
        oe -= 1;
        ne -= 1;
    }
    if (oe - lo) + (ne - lo) <= 64 {
        return diff_windowed(old, new, &o[lo..oe], &n[lo..ne]);
    }
    diff_full(old, new)
}

/// HappenBefore keys of a changed window's relations.
fn window_keys(mid: &[Relation]) -> BTreeSet<HbKey<'_>> {
    mid.iter()
        .filter_map(|r| match r {
            Relation::HappenBefore { from, to, cond, .. } => Some((from, to, cond.as_ref())),
            _ => None,
        })
        .collect()
}

/// Drops every candidate key that appears anywhere in `other` (a window
/// key can have a positional twin elsewhere in the set).
fn subtract_present<'a>(cands: &mut BTreeSet<HbKey<'a>>, other: &'a ConstraintSet) {
    for r in &other.relations {
        if cands.is_empty() {
            break;
        }
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            cands.remove(&(from, to, cond.as_ref()));
        }
    }
}

/// Condition multisets of `cs` for the given endpoint pairs only.
#[allow(clippy::type_complexity)]
fn collect_conds<'a>(
    cs: &'a ConstraintSet,
    touched: &BTreeSet<(&'a StateRef, &'a StateRef)>,
) -> BTreeMap<(&'a StateRef, &'a StateRef), Vec<Option<&'a Condition>>> {
    let mut map: BTreeMap<(&StateRef, &StateRef), Vec<Option<&Condition>>> =
        touched.iter().map(|&p| (p, Vec::new())).collect();
    for r in &cs.relations {
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            if let Some(v) = map.get_mut(&(from, to)) {
                v.push(cond.as_ref());
            }
        }
    }
    for v in map.values_mut() {
        v.sort();
    }
    map
}

/// Diff restricted to a small changed window: every difference involves a
/// relation in `mid_old`/`mid_new`, so candidates come from the windows
/// and only membership checks touch the full sets (single linear scans).
fn diff_windowed<'a>(
    old: &'a ConstraintSet,
    new: &'a ConstraintSet,
    mid_old: &'a [Relation],
    mid_new: &'a [Relation],
) -> ConstraintDiff {
    let mut added_keys = window_keys(mid_new);
    subtract_present(&mut added_keys, old);
    let mut removed_keys = window_keys(mid_old);
    subtract_present(&mut removed_keys, new);
    let mut added: Vec<String> = added_keys.iter().map(render_hb).collect();
    let mut removed: Vec<String> = removed_keys.iter().map(render_hb).collect();
    added.sort();
    removed.sort();

    // Exclusive pairs never appear in the synthetic edit bursts and are
    // rare in general; when the window touches one, compare the (small)
    // full Exclusive sets the way the full diff does.
    let window_has_excl = mid_old
        .iter()
        .chain(mid_new)
        .any(|r| matches!(r, Relation::Exclusive { .. }));
    let (exclusive_added, exclusive_removed) = if window_has_excl {
        let old_excl: BTreeSet<String> = old.relations.iter().filter_map(exclusive_key).collect();
        let new_excl: BTreeSet<String> = new.relations.iter().filter_map(exclusive_key).collect();
        (
            new_excl.difference(&old_excl).cloned().collect(),
            old_excl.difference(&new_excl).cloned().collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    // Annotation view: only endpoint pairs named in the window can have a
    // changed condition multiset; collect their conditions from both full
    // sets in one scan each.
    let touched: BTreeSet<(&StateRef, &StateRef)> = mid_old
        .iter()
        .chain(mid_new)
        .filter_map(|r| match r {
            Relation::HappenBefore { from, to, .. } => Some((from, to)),
            _ => None,
        })
        .collect();
    let old_pairs = collect_conds(old, &touched);
    let new_pairs = collect_conds(new, &touched);
    let mut annotation_changed: Vec<String> = touched
        .iter()
        .filter_map(|pair| {
            let old_conds = &old_pairs[pair];
            let new_conds = &new_pairs[pair];
            // Present in both sets (the full diff only reports pairs that
            // survive the edit) and with differing condition multisets.
            (!old_conds.is_empty() && !new_conds.is_empty() && old_conds != new_conds)
                .then(|| render_annotation(*pair, old_conds, new_conds))
        })
        .collect();
    annotation_changed.sort();

    ConstraintDiff {
        added,
        removed,
        added_activities: new.activities.difference(&old.activities).cloned().collect(),
        removed_activities: old.activities.difference(&new.activities).cloned().collect(),
        exclusive_added,
        exclusive_removed,
        annotation_changed,
        domain_changed: domain_diff(old, new),
    }
}

/// The symmetric full diff: one hash-counting pass per set (borrowed
/// keys, no ordering structure), strings rendered only for entries that
/// differ. Linear in the set sizes regardless of how the edit is shaped,
/// so scattered multi-site bursts cost the same as a single insertion.
fn diff_full(old: &ConstraintSet, new: &ConstraintSet) -> ConstraintDiff {
    // Per-key multiset counts `(in old, in new)`.
    let mut counts: FxHashMap<HbKey<'_>, (u32, u32)> = FxHashMap::default();
    for r in &old.relations {
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            counts.entry((from, to, cond.as_ref())).or_default().0 += 1;
        }
    }
    for r in &new.relations {
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            counts.entry((from, to, cond.as_ref())).or_default().1 += 1;
        }
    }
    let mut added: Vec<String> = Vec::new();
    let mut removed: Vec<String> = Vec::new();
    // A changed pair condition-multiset always shows as a changed count on
    // one of its keys, so the touched pairs fall out of the same pass.
    let mut touched: BTreeSet<(&StateRef, &StateRef)> = BTreeSet::new();
    for (key, &(o, n)) in &counts {
        if o == n {
            continue;
        }
        touched.insert((key.0, key.1));
        if o == 0 {
            added.push(render_hb(key));
        }
        if n == 0 {
            removed.push(render_hb(key));
        }
    }
    added.sort();
    removed.sort();
    let has_excl = old
        .relations
        .iter()
        .chain(&new.relations)
        .any(|r| matches!(r, Relation::Exclusive { .. }));
    let (old_excl, new_excl): (BTreeSet<String>, BTreeSet<String>) = if has_excl {
        (
            old.relations.iter().filter_map(exclusive_key).collect(),
            new.relations.iter().filter_map(exclusive_key).collect(),
        )
    } else {
        Default::default()
    };
    let old_pairs = collect_conds(old, &touched);
    let new_pairs = collect_conds(new, &touched);
    let mut annotation_changed: Vec<String> = touched
        .iter()
        .filter_map(|pair| {
            let old_conds = &old_pairs[pair];
            let new_conds = &new_pairs[pair];
            (!old_conds.is_empty() && !new_conds.is_empty() && old_conds != new_conds)
                .then(|| render_annotation(*pair, old_conds, new_conds))
        })
        .collect();
    annotation_changed.sort();
    ConstraintDiff {
        added,
        removed,
        added_activities: new
            .activities
            .difference(&old.activities)
            .cloned()
            .collect(),
        removed_activities: old
            .activities
            .difference(&new.activities)
            .cloned()
            .collect(),
        exclusive_added: new_excl.difference(&old_excl).cloned().collect(),
        exclusive_removed: old_excl.difference(&new_excl).cloned().collect(),
        annotation_changed,
        domain_changed: domain_diff(old, new),
    }
}

/// Diffs two pipeline runs at the minimal-set level: the scheme-level
/// impact of a specification edit.
pub fn diff_outputs(old: &WeaverOutput, new: &WeaverOutput) -> ConstraintDiff {
    diff_constraint_sets(&old.minimal, &new.minimal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{Dependency, DependencySet};
    use crate::pipeline::Weaver;

    fn base() -> DependencySet {
        let mut ds = DependencySet::new("d");
        for a in ["a", "b", "c"] {
            ds.add_activity(a);
        }
        ds.push(Dependency::data("a", "b"));
        ds.push(Dependency::data("b", "c"));
        ds
    }

    #[test]
    fn identical_sets_empty_diff() {
        let out = Weaver::new().run(&base()).unwrap();
        let d = diff_outputs(&out, &out);
        assert!(d.is_empty());
        assert_eq!(d.to_string(), "");
    }

    #[test]
    fn added_constraint_shows_up() {
        let out1 = Weaver::new().run(&base()).unwrap();
        let mut ds2 = base();
        ds2.add_activity("d");
        ds2.push(Dependency::cooperation("c", "d"));
        let out2 = Weaver::new().run(&ds2).unwrap();
        let d = diff_outputs(&out1, &out2);
        assert_eq!(d.added, vec!["F(c) -> S(d)"]);
        assert_eq!(d.added_activities, vec!["d"]);
        assert!(d.removed.is_empty());
        assert!(d.to_string().contains("+ F(c) -> S(d)"));
    }

    #[test]
    fn edit_with_ripple_effects() {
        // Adding a shortcut-making constraint can *remove* another from the
        // minimal scheme: a→b→c plus new direct path pieces.
        let mut ds1 = base();
        ds1.push(Dependency::cooperation("a", "c")); // redundant, optimized away
        let out1 = Weaver::new().run(&ds1).unwrap();
        // Drop b entirely: a→c becomes load-bearing.
        let mut ds2 = DependencySet::new("d");
        for a in ["a", "c"] {
            ds2.add_activity(a);
        }
        ds2.push(Dependency::cooperation("a", "c"));
        let out2 = Weaver::new().run(&ds2).unwrap();
        let d = diff_outputs(&out1, &out2);
        assert!(d.added.contains(&"F(a) -> S(c)".to_string()));
        assert!(d.removed.contains(&"F(a) -> S(b)".to_string()));
        assert_eq!(d.removed_activities, vec!["b"]);
    }

    #[test]
    fn exclusive_and_domain_changes_are_screen_only() {
        use dscweaver_dscl::{Origin, Relation, StateRef};
        let mut a = ConstraintSet::new("a");
        for x in ["x", "y"] {
            a.add_activity(x);
        }
        a.domains.insert("g".into(), vec!["T".into(), "F".into()]);
        let mut b = a.clone();
        b.push(Relation::Exclusive {
            a: StateRef::start("x"),
            b: StateRef::start("y"),
            origin: Origin::Other,
        });
        b.domains.insert("g".into(), vec!["T".into(), "F".into(), "U".into()]);
        let d = diff_constraint_sets(&a, &b);
        assert!(!d.is_empty());
        assert!(d.screen_only());
        assert!(!d.closure_relevant());
        assert_eq!(d.exclusive_added, vec!["S(x) >< S(y)"]);
        assert_eq!(d.domain_changed, vec!["g: [T, F] => [T, F, U]"]);
        assert!(d.to_string().contains("+ S(x) >< S(y)"), "{d}");
        assert!(d.to_string().contains("~ domain g"), "{d}");
        // Reverse direction reports the removal.
        let rd = diff_constraint_sets(&b, &a);
        assert_eq!(rd.exclusive_removed, vec!["S(x) >< S(y)"]);
    }

    #[test]
    fn annotation_only_edit_is_classified() {
        use dscweaver_dscl::{Condition, Origin, Relation, StateRef};
        let mut a = ConstraintSet::new("a");
        for x in ["g", "b"] {
            a.add_activity(x);
        }
        a.push(Relation::HappenBefore {
            from: StateRef::finish("g"),
            to: StateRef::start("b"),
            cond: Some(Condition::new("g", "T")),
            origin: Origin::Control,
        });
        let mut b = a.clone();
        if let Relation::HappenBefore { cond, .. } = &mut b.relations[0] {
            *cond = Some(Condition::new("g", "F"));
        }
        let d = diff_constraint_sets(&a, &b);
        // The guard edit shows up key-wise (added + removed) AND as an
        // annotation-only change on the surviving endpoint pair.
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.annotation_changed.len(), 1, "{d:?}");
        assert!(d.annotation_changed[0].contains("F(g) -> S(b)"), "{d:?}");
        assert!(d.closure_relevant());
        assert!(!d.screen_only());
    }

    #[test]
    fn provenance_is_ignored() {
        use dscweaver_dscl::{Origin, Relation, StateRef};
        let mut a = ConstraintSet::new("a");
        a.add_activity("x");
        a.add_activity("y");
        a.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("y"),
            Origin::Data,
        ));
        let mut b = a.clone();
        b.relations[0] = Relation::before(
            StateRef::finish("x"),
            StateRef::start("y"),
            Origin::Cooperation,
        );
        assert!(diff_constraint_sets(&a, &b).is_empty());
    }
}
