//! Diffing constraint sets and pipeline outputs — the tooling face of the
//! paper's adaptability claim (§1: with dependencies as first-class
//! citizens, adding or deleting a constraint is a set edit, and its global
//! effect on the synchronization scheme is *computable*).

use crate::pipeline::WeaverOutput;
use dscweaver_dscl::{ConstraintSet, Relation};
use std::collections::BTreeSet;

/// The difference between two constraint sets (HappenBefore relations,
/// compared structurally — endpoints, condition; provenance ignored).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintDiff {
    /// Relations only in the new set (rendered).
    pub added: Vec<String>,
    /// Relations only in the old set (rendered).
    pub removed: Vec<String>,
    /// Activities only in the new set.
    pub added_activities: Vec<String>,
    /// Activities only in the old set.
    pub removed_activities: Vec<String>,
}

impl ConstraintDiff {
    /// True if the sets coincide.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.added_activities.is_empty()
            && self.removed_activities.is_empty()
    }
}

impl std::fmt::Display for ConstraintDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for a in &self.added_activities {
            writeln!(f, "+ activity {a}")?;
        }
        for a in &self.removed_activities {
            writeln!(f, "- activity {a}")?;
        }
        for r in &self.added {
            writeln!(f, "+ {r}")?;
        }
        for r in &self.removed {
            writeln!(f, "- {r}")?;
        }
        Ok(())
    }
}

/// Structural key of a relation, ignoring provenance.
fn key(r: &Relation) -> Option<String> {
    match r {
        Relation::HappenBefore { from, to, cond, .. } => Some(match cond {
            Some(c) => format!("{from} ->[{c}] {to}"),
            None => format!("{from} -> {to}"),
        }),
        _ => None,
    }
}

/// Computes the diff `old → new`.
pub fn diff_constraint_sets(old: &ConstraintSet, new: &ConstraintSet) -> ConstraintDiff {
    let old_keys: BTreeSet<String> = old.relations.iter().filter_map(key).collect();
    let new_keys: BTreeSet<String> = new.relations.iter().filter_map(key).collect();
    ConstraintDiff {
        added: new_keys.difference(&old_keys).cloned().collect(),
        removed: old_keys.difference(&new_keys).cloned().collect(),
        added_activities: new
            .activities
            .difference(&old.activities)
            .cloned()
            .collect(),
        removed_activities: old
            .activities
            .difference(&new.activities)
            .cloned()
            .collect(),
    }
}

/// Diffs two pipeline runs at the minimal-set level: the scheme-level
/// impact of a specification edit.
pub fn diff_outputs(old: &WeaverOutput, new: &WeaverOutput) -> ConstraintDiff {
    diff_constraint_sets(&old.minimal, &new.minimal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{Dependency, DependencySet};
    use crate::pipeline::Weaver;

    fn base() -> DependencySet {
        let mut ds = DependencySet::new("d");
        for a in ["a", "b", "c"] {
            ds.add_activity(a);
        }
        ds.push(Dependency::data("a", "b"));
        ds.push(Dependency::data("b", "c"));
        ds
    }

    #[test]
    fn identical_sets_empty_diff() {
        let out = Weaver::new().run(&base()).unwrap();
        let d = diff_outputs(&out, &out);
        assert!(d.is_empty());
        assert_eq!(d.to_string(), "");
    }

    #[test]
    fn added_constraint_shows_up() {
        let out1 = Weaver::new().run(&base()).unwrap();
        let mut ds2 = base();
        ds2.add_activity("d");
        ds2.push(Dependency::cooperation("c", "d"));
        let out2 = Weaver::new().run(&ds2).unwrap();
        let d = diff_outputs(&out1, &out2);
        assert_eq!(d.added, vec!["F(c) -> S(d)"]);
        assert_eq!(d.added_activities, vec!["d"]);
        assert!(d.removed.is_empty());
        assert!(d.to_string().contains("+ F(c) -> S(d)"));
    }

    #[test]
    fn edit_with_ripple_effects() {
        // Adding a shortcut-making constraint can *remove* another from the
        // minimal scheme: a→b→c plus new direct path pieces.
        let mut ds1 = base();
        ds1.push(Dependency::cooperation("a", "c")); // redundant, optimized away
        let out1 = Weaver::new().run(&ds1).unwrap();
        // Drop b entirely: a→c becomes load-bearing.
        let mut ds2 = DependencySet::new("d");
        for a in ["a", "c"] {
            ds2.add_activity(a);
        }
        ds2.push(Dependency::cooperation("a", "c"));
        let out2 = Weaver::new().run(&ds2).unwrap();
        let d = diff_outputs(&out1, &out2);
        assert!(d.added.contains(&"F(a) -> S(c)".to_string()));
        assert!(d.removed.contains(&"F(a) -> S(b)".to_string()));
        assert_eq!(d.removed_activities, vec!["b"]);
    }

    #[test]
    fn provenance_is_ignored() {
        use dscweaver_dscl::{Origin, Relation, StateRef};
        let mut a = ConstraintSet::new("a");
        a.add_activity("x");
        a.add_activity("y");
        a.push(Relation::before(
            StateRef::finish("x"),
            StateRef::start("y"),
            Origin::Data,
        ));
        let mut b = a.clone();
        b.relations[0] = Relation::before(
            StateRef::finish("x"),
            StateRef::start("y"),
            Origin::Cooperation,
        );
        assert!(diff_constraint_sets(&a, &b).is_empty());
    }
}
