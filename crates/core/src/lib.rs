//! # dscweaver-core
//!
//! The paper's primary contribution (Wu, Pu, Sahai, Barga — ICDE 2007):
//! categorization of synchronization dependencies into four dimensions
//! (§3), merging them into one DSCL constraint set (§4.2), service
//! dependency translation (§4.3) and minimal dependency set extraction
//! (§4.4).

#![warn(missing_docs)]

pub mod dependency;
pub mod diff;
pub mod exec;
pub mod merge;
pub mod minimize;
pub mod pipeline;
pub mod reweave;
pub mod translate;
pub mod witness;

pub use dependency::{Dependency, DependencyKind, DependencySet, Endpoint};
pub use diff::{diff_constraint_sets, diff_outputs, ConstraintDiff};
pub use exec::ExecConditions;
pub use merge::{lower, merge};
pub use minimize::{
    minimize, minimize_generic, minimize_generic_baseline, minimize_generic_with,
    minimize_unconditional_fast, minimize_with, EdgeOrder, EquivalenceMode, MinimizeError,
    MinimizeOptions, MinimizeResult, MinimizeStats,
};
pub use pipeline::{Weaver, WeaverError, WeaverOutput};
pub use reweave::{ReweavePath, ReweaveReport, WeaveSession};
pub use translate::{translate_services, TranslationReport};
pub use witness::{explain_removals, RemovalWitness};
