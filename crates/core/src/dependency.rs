//! The paper's §3 contribution: a systematic categorization of
//! synchronization dependencies into four dimensions — **data**, **control**,
//! **service** and **cooperation** — each modeling synchronization from its
//! own point of view:
//!
//! * *data* and *control* describe constraints **within** the process and
//!   are extractable from design products (dataflow diagrams, PDGs, UML);
//! * *service* describes constraints **between the process and remote
//!   services, and within remote services** (port orderings, asynchronous
//!   callbacks) — found in WSCL-style service descriptions;
//! * *cooperation* describes analyst-supplied business constraints that
//!   none of the other dimensions capture (§3.2's "invoice only after
//!   production" example).

use dscweaver_dscl::{ActivityState, StateRef};
use std::collections::{BTreeMap, BTreeSet};

/// The four dependency dimensions (§3). `Control` carries the branch value
/// subscript of the paper's `→_T` / `→_F` arrows (`None` for the
/// unconditional control dependency the paper writes as a bare `→`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DependencyKind {
    /// Definition-use data dependency (`→_d`).
    Data,
    /// Control dependency (`→_c` with an optional branch value).
    Control {
        /// The branch value (case label) under which the target executes,
        /// or `None` for an unconditional control dependency.
        value: Option<String>,
    },
    /// Service dependency (`→_s`).
    Service,
    /// Cooperation dependency (`→_o`).
    Cooperation,
}

impl DependencyKind {
    /// The paper's arrow for this dimension (`→_d`, `→_T`, ...).
    pub fn arrow(&self) -> String {
        match self {
            DependencyKind::Data => "->d".into(),
            DependencyKind::Control { value: Some(v) } => format!("->{v}"),
            DependencyKind::Control { value: None } => "->".into(),
            DependencyKind::Service => "->s".into(),
            DependencyKind::Cooperation => "->o".into(),
        }
    }

    /// The dimension name used as a Table 1 row header.
    pub fn dimension(&self) -> &'static str {
        match self {
            DependencyKind::Data => "data",
            DependencyKind::Control { .. } => "control",
            DependencyKind::Service => "service",
            DependencyKind::Cooperation => "cooperative",
        }
    }
}

/// One endpoint of a dependency: an activity or external service node,
/// optionally pinned to a specific life-cycle state. When `state` is
/// `None`, the §4.2 default applies at merge time: sources synchronize on
/// their *Finish*, targets on their *Start*.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// Activity or service node name.
    pub name: String,
    /// Explicit life-cycle state, for the fine-granularity cooperation
    /// dependencies of §3.2 (`S(collectSurvey) → F(closeOrder)`).
    pub state: Option<ActivityState>,
}

impl Endpoint {
    /// An endpoint with the default state.
    pub fn new(name: impl Into<String>) -> Self {
        Endpoint {
            name: name.into(),
            state: None,
        }
    }

    /// An endpoint pinned to a state.
    pub fn at(name: impl Into<String>, state: ActivityState) -> Self {
        Endpoint {
            name: name.into(),
            state: Some(state),
        }
    }

    /// Resolves to a [`StateRef`] using `default` when unpinned.
    pub fn resolve(&self, default: ActivityState) -> StateRef {
        StateRef {
            activity: self.name.clone(),
            state: self.state.unwrap_or(default),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.state {
            Some(s) => write!(f, "{}({})", s, self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// One dependency: `from →_kind to`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Dependency {
    /// The earlier endpoint.
    pub from: Endpoint,
    /// The later endpoint.
    pub to: Endpoint,
    /// The dimension.
    pub kind: DependencyKind,
}

impl Dependency {
    /// A data dependency.
    pub fn data(from: &str, to: &str) -> Self {
        Dependency {
            from: Endpoint::new(from),
            to: Endpoint::new(to),
            kind: DependencyKind::Data,
        }
    }

    /// A control dependency with a branch value.
    pub fn control(from: &str, to: &str, value: &str) -> Self {
        Dependency {
            from: Endpoint::new(from),
            to: Endpoint::new(to),
            kind: DependencyKind::Control {
                value: Some(value.into()),
            },
        }
    }

    /// An unconditional control dependency (the paper's bare
    /// `if_au → replyClient_oi` entry in Table 1).
    pub fn control_unconditional(from: &str, to: &str) -> Self {
        Dependency {
            from: Endpoint::new(from),
            to: Endpoint::new(to),
            kind: DependencyKind::Control { value: None },
        }
    }

    /// A service dependency.
    pub fn service(from: &str, to: &str) -> Self {
        Dependency {
            from: Endpoint::new(from),
            to: Endpoint::new(to),
            kind: DependencyKind::Service,
        }
    }

    /// A cooperation dependency with default states.
    pub fn cooperation(from: &str, to: &str) -> Self {
        Dependency {
            from: Endpoint::new(from),
            to: Endpoint::new(to),
            kind: DependencyKind::Cooperation,
        }
    }

    /// A cooperation dependency between explicit states (fine granularity,
    /// §3.2).
    pub fn cooperation_states(from: StateRef, to: StateRef) -> Self {
        Dependency {
            from: Endpoint::at(from.activity, from.state),
            to: Endpoint::at(to.activity, to.state),
            kind: DependencyKind::Cooperation,
        }
    }
}

impl std::fmt::Display for Dependency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.from, self.kind.arrow(), self.to)
    }
}

/// All dependencies of a process, plus the node declarations needed to
/// merge them (the input to the §4 pipeline).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DependencySet {
    /// Process name (report label).
    pub name: String,
    /// Internal activities (`A`).
    pub activities: BTreeSet<String>,
    /// External service nodes (`S`), in §3.3 naming (`Purchase_1`,
    /// `Purchase_d`, ...).
    pub services: BTreeSet<String>,
    /// Guard activity → its possible branch values (needed to reason about
    /// branch-complete coverage during optimization).
    pub domains: BTreeMap<String, Vec<String>>,
    /// The dependencies.
    pub deps: Vec<Dependency>,
}

impl DependencySet {
    /// An empty set.
    pub fn new(name: impl Into<String>) -> Self {
        DependencySet {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an internal activity.
    pub fn add_activity(&mut self, name: impl Into<String>) {
        self.activities.insert(name.into());
    }

    /// Declares an external service node.
    pub fn add_service(&mut self, name: impl Into<String>) {
        self.services.insert(name.into());
    }

    /// Declares a guard domain.
    pub fn add_domain(&mut self, guard: impl Into<String>, values: Vec<String>) {
        self.domains.insert(guard.into(), values);
    }

    /// Appends a dependency.
    pub fn push(&mut self, d: Dependency) {
        self.deps.push(d);
    }

    /// Dependencies of one dimension, in insertion order.
    pub fn of_dimension(&self, dim: &str) -> Vec<&Dependency> {
        self.deps
            .iter()
            .filter(|d| d.kind.dimension() == dim)
            .collect()
    }

    /// Counts per dimension, Table-1 style.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for d in &self.deps {
            *out.entry(d.kind.dimension()).or_insert(0) += 1;
        }
        out
    }

    /// Renders the set as the paper's Table 1: one row block per
    /// dimension, dependencies listed with their dimension arrows.
    pub fn render_table1(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table 1. The {} process dependencies\n",
            self.name
        ));
        out.push_str(&format!("{:-<64}\n", ""));
        for dim in ["data", "control", "cooperative", "service"] {
            let deps = self.of_dimension(dim);
            if deps.is_empty() {
                continue;
            }
            out.push_str(&format!("{dim} ({}):\n", deps.len()));
            for d in deps {
                out.push_str(&format!("    {d}\n"));
            }
        }
        let total = self.deps.len();
        out.push_str(&format!("{:-<64}\ntotal: {total}\n", ""));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrows_match_paper_notation() {
        assert_eq!(Dependency::data("a", "b").to_string(), "a ->d b");
        assert_eq!(Dependency::control("if_au", "x", "T").to_string(), "if_au ->T x");
        assert_eq!(
            Dependency::control_unconditional("if_au", "r").to_string(),
            "if_au -> r"
        );
        assert_eq!(Dependency::service("a", "Credit").to_string(), "a ->s Credit");
        assert_eq!(Dependency::cooperation("a", "b").to_string(), "a ->o b");
    }

    #[test]
    fn state_pinned_cooperation() {
        let d = Dependency::cooperation_states(
            StateRef::start("collectSurvey"),
            StateRef::finish("closeOrder"),
        );
        assert_eq!(d.to_string(), "S(collectSurvey) ->o F(closeOrder)");
        assert_eq!(
            d.from.resolve(ActivityState::Finish),
            StateRef::start("collectSurvey"),
            "explicit state wins over the default"
        );
    }

    #[test]
    fn endpoint_default_resolution() {
        let e = Endpoint::new("a");
        assert_eq!(e.resolve(ActivityState::Finish), StateRef::finish("a"));
        assert_eq!(e.resolve(ActivityState::Start), StateRef::start("a"));
    }

    #[test]
    fn counts_and_dimension_filter() {
        let mut ds = DependencySet::new("t");
        ds.push(Dependency::data("a", "b"));
        ds.push(Dependency::data("b", "c"));
        ds.push(Dependency::control("g", "b", "T"));
        ds.push(Dependency::cooperation("a", "c"));
        let counts = ds.counts();
        assert_eq!(counts["data"], 2);
        assert_eq!(counts["control"], 1);
        assert_eq!(counts["cooperative"], 1);
        assert_eq!(ds.of_dimension("data").len(), 2);
        assert_eq!(ds.of_dimension("service").len(), 0);
    }

    #[test]
    fn table1_rendering() {
        let mut ds = DependencySet::new("Purchasing");
        ds.push(Dependency::data("recClient_po", "invCredit_po"));
        ds.push(Dependency::service("invCredit_po", "Credit"));
        let t = ds.render_table1();
        assert!(t.contains("Table 1. The Purchasing process dependencies"));
        assert!(t.contains("recClient_po ->d invCredit_po"));
        assert!(t.contains("invCredit_po ->s Credit"));
        assert!(t.contains("total: 2"));
    }
}
