//! The DSCWeaver specification-and-optimization pipeline (§1, §4):
//! dependencies → merge (§4.2) → desugar → conflict check → service
//! translation (§4.3) → minimal set (§4.4), with per-stage artifacts kept
//! for reporting (Figures 7–9, Table 2). Petri-net validation and BPEL
//! generation — the execution half of the vertical solution — live in the
//! `dscweaver-petri` and `dscweaver-bpel` crates and are composed by the
//! root `dscweaver` facade.

use crate::dependency::DependencySet;
use crate::exec::ExecConditions;
use crate::merge::merge;
use crate::minimize::{
    minimize_with, EdgeOrder, EquivalenceMode, MinimizeError, MinimizeOptions, MinimizeResult,
};
use crate::translate::{translate_services, TranslationReport};
use dscweaver_dscl::{ConstraintError, ConstraintSet, Origin, Relation};
use dscweaver_obs as obs;

/// Pipeline configuration.
#[derive(Clone, Debug, Default)]
pub struct Weaver {
    /// Closure-comparison mode for minimization.
    pub mode: EquivalenceMode,
    /// Removal-candidate ordering.
    pub order: EdgeOrder,
    /// Minimizer worker threads (`0` = auto, `1` = sequential). Thread
    /// count never changes the result, only the wall time.
    pub threads: usize,
}

/// Pipeline failure.
#[derive(Clone, Debug)]
pub enum WeaverError {
    /// The merged constraint set fails structural validation.
    Validation(Vec<ConstraintError>),
    /// Conflicting constraints (a synchronization cycle).
    Conflict(MinimizeError),
}

impl std::fmt::Display for WeaverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeaverError::Validation(errs) => {
                writeln!(f, "constraint set failed validation:")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            WeaverError::Conflict(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WeaverError {}

/// Every artifact the pipeline produces.
#[derive(Clone, Debug)]
pub struct WeaverOutput {
    /// The input dependencies (Table 1).
    pub dependencies: DependencySet,
    /// The merged synchronization constraint set `SC` (Figure 7).
    pub sc: ConstraintSet,
    /// Execution conditions derived from `SC`'s control dependencies —
    /// needed by the scheduler (dead-path elimination) and the Petri-net
    /// lowering, and carried unchanged through optimization.
    pub exec: ExecConditions,
    /// The activity synchronization constraint set `ASC` after service
    /// translation (Figure 8).
    pub asc: ConstraintSet,
    /// What translation did (bridges = Figure 8's bold edges).
    pub translation: TranslationReport,
    /// The minimal constraint set `P*` (Figure 9).
    pub minimal: ConstraintSet,
    /// Constraints removed by minimization.
    pub removed: Vec<Relation>,
}

impl Weaver {
    /// A pipeline with the paper-reproducing defaults
    /// (execution-aware equivalence, cooperation-first removal order).
    pub fn new() -> Weaver {
        Weaver::default()
    }

    /// The specification front half of [`Weaver::run`] — merge,
    /// validation, desugaring, execution conditions, service translation.
    /// Shared with the re-weave session ([`crate::reweave`]), which diffs
    /// the resulting ASC against its previous one before minimizing.
    pub(crate) fn prepare(
        &self,
        ds: &DependencySet,
    ) -> Result<(ConstraintSet, ExecConditions, ConstraintSet, TranslationReport), WeaverError>
    {
        let merge_span = obs::span_with("weaver.merge", || {
            format!("dependencies={}", ds.deps.len())
        });
        let mut sc = merge(ds);
        let errors = sc.validate();
        if !errors.is_empty() {
            return Err(WeaverError::Validation(errors));
        }
        sc.desugar_happen_together();
        drop(merge_span);
        let exec = {
            let _span = obs::span("weaver.exec_conditions");
            ExecConditions::derive(&sc)
        };
        let (asc, translation) = {
            let _span = obs::span("weaver.translate");
            translate_services(&sc)
        };
        Ok((sc, exec, asc, translation))
    }

    /// Opens a re-weave session around this configuration: the first
    /// [`crate::reweave::WeaveSession::weave`] call runs the full
    /// pipeline, subsequent calls re-weave incrementally.
    pub fn session(&self) -> crate::reweave::WeaveSession {
        crate::reweave::WeaveSession::new(self.clone())
    }

    /// Runs the full specification-and-optimization pipeline.
    pub fn run(&self, ds: &DependencySet) -> Result<WeaverOutput, WeaverError> {
        let _span = obs::span("weaver.run");
        let (sc, exec, asc, translation) = self.prepare(ds)?;
        let MinimizeResult {
            minimal, removed, ..
        } = minimize_with(
            &asc,
            &exec,
            self.mode,
            &self.order,
            &MinimizeOptions {
                threads: self.threads,
                ..Default::default()
            },
        )
        .map_err(WeaverError::Conflict)?;
        Ok(WeaverOutput {
            dependencies: ds.clone(),
            sc,
            exec,
            asc,
            translation,
            minimal,
            removed,
        })
    }
}

impl WeaverOutput {
    /// Total constraints removed relative to the original merged set —
    /// the headline number of Table 2 ("23 constraints removed").
    pub fn total_removed(&self) -> usize {
        self.sc.constraint_count() - self.minimal.constraint_count()
    }

    /// A witness per removed constraint: the surviving path that covers
    /// it (see [`crate::witness`]).
    pub fn explain_removals(&self) -> Vec<crate::witness::RemovalWitness> {
        crate::witness::explain_removals(&self.minimal, &self.removed, &self.exec)
    }

    /// Renders the paper's Table 2: constraint counts per dimension before
    /// (the merged SC of Table 1) and after optimization.
    pub fn render_table2(&self) -> String {
        let before = self.sc.counts_by_origin();
        let after = self.minimal.counts_by_origin();
        let mut out = String::new();
        out.push_str(&format!(
            "Table 2. Constraints before and after dependency inference ({})\n",
            self.sc.name
        ));
        out.push_str(&format!("{:-<52}\n", ""));
        out.push_str(&format!("{:<14}{:>10}{:>10}\n", "dimension", "before", "after"));
        let dims = [
            Origin::Data,
            Origin::Control,
            Origin::Cooperation,
            Origin::Service,
            Origin::Translated,
            Origin::Coordinator,
            Origin::Other,
        ];
        for o in dims {
            let b = before.get(&o).copied().unwrap_or(0);
            let a = after.get(&o).copied().unwrap_or(0);
            if b == 0 && a == 0 {
                continue;
            }
            out.push_str(&format!("{:<14}{:>10}{:>10}\n", o.to_string(), b, a));
        }
        out.push_str(&format!("{:-<52}\n", ""));
        out.push_str(&format!(
            "{:<14}{:>10}{:>10}   ({} removed)\n",
            "total",
            self.sc.constraint_count(),
            self.minimal.constraint_count(),
            self.total_removed()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Dependency;

    fn small_ds() -> DependencySet {
        let mut ds = DependencySet::new("Small");
        for a in ["a", "g", "b", "rec"] {
            ds.add_activity(a);
        }
        ds.add_service("Svc");
        ds.add_service("Svc_d");
        ds.add_domain("g", vec!["T".into(), "F".into()]);
        ds.push(Dependency::data("a", "g"));
        ds.push(Dependency::control("g", "b", "T"));
        ds.push(Dependency::data("a", "b")); // redundant under exec-awareness
        ds.push(Dependency::service("b", "Svc"));
        ds.push(Dependency::service("Svc", "Svc_d"));
        ds.push(Dependency::service("Svc_d", "rec"));
        ds.push(Dependency::cooperation("b", "rec")); // dup of the bridge
        ds
    }

    #[test]
    fn full_pipeline_stages() {
        let out = Weaver::new().run(&small_ds()).unwrap();
        assert_eq!(out.sc.constraint_count(), 7);
        // Translation drops 3 service relations, adds 1 bridge (b → rec)
        // ... which duplicates the cooperation dep, so the bridge is
        // skipped and the cooperation relation remains.
        assert_eq!(out.asc.constraint_count(), 4);
        // Execution-aware minimization keeps a → b: removing it would leave
        // only the T-guarded path a → g →[T] b, but `rec` (downstream of b)
        // executes unconditionally, so the ordering a-before-rec would be
        // lost in g=F runs unless the scheduler totally orders skip events
        // (see EquivalenceMode::Reachability).
        assert_eq!(out.minimal.constraint_count(), 4);
        assert_eq!(out.total_removed(), 3);
        assert!(out.minimal.validate().is_empty());
    }

    #[test]
    fn reachability_mode_removes_more() {
        let weaver = Weaver {
            mode: EquivalenceMode::Reachability,
            ..Weaver::default()
        };
        let out = weaver.run(&small_ds()).unwrap();
        // Under full dead-path elimination, a → b is covered by the guarded
        // path (skip events propagate in order).
        assert_eq!(out.minimal.constraint_count(), 3);
    }

    #[test]
    fn table2_rendering() {
        let out = Weaver::new().run(&small_ds()).unwrap();
        let t2 = out.render_table2();
        assert!(t2.contains("before"));
        assert!(t2.contains("(3 removed)"), "{t2}");
        assert!(t2.contains("service"), "{t2}");
    }

    #[test]
    fn validation_failure_reported() {
        let mut ds = DependencySet::new("bad");
        ds.add_activity("a");
        ds.push(Dependency::data("a", "ghost"));
        let err = Weaver::new().run(&ds).unwrap_err();
        assert!(matches!(err, WeaverError::Validation(_)));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn conflict_reported() {
        let mut ds = DependencySet::new("cyc");
        ds.add_activity("a");
        ds.add_activity("b");
        ds.push(Dependency::data("a", "b"));
        ds.push(Dependency::cooperation("b", "a"));
        let err = Weaver::new().run(&ds).unwrap_err();
        assert!(matches!(err, WeaverError::Conflict(_)));
    }

    #[test]
    fn strict_mode_keeps_more() {
        let weaver_strict = Weaver {
            mode: EquivalenceMode::Strict,
            ..Weaver::default()
        };
        let strict = weaver_strict.run(&small_ds()).unwrap();
        let aware = Weaver::new().run(&small_ds()).unwrap();
        assert!(strict.minimal.constraint_count() >= aware.minimal.constraint_count());
    }
}
