//! §4.3 — service dependency translation.
//!
//! Service dependencies mention external service nodes (`Purchase_1`,
//! `Ship_d`, ...), but activity scheduling only orders *internal*
//! activities. Two rules realize the paper's Figure 8:
//!
//! 1. **Chain exit** — for every transitive path `a → e_1 → ... → e_k → b`
//!    whose interior consists of external nodes only, add `a → b`
//!    (`invCredit_po → recCredit_au` through `Credit → Credit_d`).
//! 2. **Invoker pull-back** — a constraint *into* a service port `s_j`
//!    that is invoked by an internal activity `a_j` can only be guaranteed
//!    by the process ordering the *send*: for every constraint `w → s_j`
//!    (with `w` not itself the invoker), bridge every closest internal
//!    ancestor of `w` to `S(a_j)`. This is how the paper's
//!    `Purchase_1 →_s Purchase_2` becomes
//!    `invPurchase_po → invPurchase_si` — the state-aware *Purchase*
//!    service requires sequential arrival at its two ports, and with
//!    ordered message delivery, sequencing the invocations enforces it.
//!
//! External chains with no internal offspring and no invoked ports (the
//! paper's `Production_1`/`Production_2`) are simply dropped — they cannot
//! affect scheduling inside the process. The result is the *activity
//! synchronization constraint set* `ASC = {A, P}`.

use dscweaver_dscl::sync_graph::{SyncGraph, SyncNode};
use dscweaver_dscl::{Condition, ConstraintSet, Origin, Relation, StateRef};
use dscweaver_graph::NodeId;
use std::collections::BTreeSet;

/// What the translation did, for reporting.
#[derive(Clone, Debug, Default)]
pub struct TranslationReport {
    /// The bridging constraints added (Figure 8's bold edges).
    pub bridges: Vec<Relation>,
    /// How many service-node-touching relations were dropped.
    pub dropped: usize,
    /// Service nodes whose chains had no internal offspring and were
    /// removed without a bridge.
    pub dead_ends: Vec<String>,
    /// Non-fatal oddities (e.g. two different conditions met on one
    /// external path; the entering condition wins).
    pub warnings: Vec<String>,
}

/// Translates `cs` into an ASC: external nodes spliced out, bridging
/// constraints added. HappenTogether sugar must be desugared first.
pub fn translate_services(cs: &ConstraintSet) -> (ConstraintSet, TranslationReport) {
    // No external services ⇒ no service chains to splice, no relations to
    // drop, no bridges: the ASC is the SC verbatim. Skipping the graph
    // build here keeps pure-activity processes (the common case for the
    // synthetic workloads and for incremental re-weaves) from paying for
    // a translation pass that cannot do anything.
    if cs.services.is_empty() {
        return (cs.clone(), TranslationReport::default());
    }
    let sg = SyncGraph::build(cs);
    let mut report = TranslationReport::default();

    let is_external =
        |n: NodeId| -> bool { matches!(sg.graph.weight(n), SyncNode::Service(_)) };

    // For each internal → external edge, walk the external-only chain
    // forward and bridge to every internal node the chain exits into.
    let mut bridges: BTreeSet<(StateRef, StateRef, Option<Condition>)> = BTreeSet::new();
    for e in sg.graph.edge_ids() {
        let (u, first_ext) = sg.graph.endpoints(e);
        if is_external(u) || !is_external(first_ext) {
            continue;
        }
        let w = sg.graph.edge_weight(e);
        let cond_in = w.cond.clone();
        let from_ref = match sg.graph.weight(u) {
            SyncNode::State(s) => s.clone(),
            SyncNode::Service(_) => unreachable!("u checked internal"),
        };
        // Forward BFS over external nodes only.
        let mut frontier = vec![first_ext];
        let mut seen: BTreeSet<NodeId> = frontier.iter().copied().collect();
        while let Some(x) = frontier.pop() {
            for oe in sg.graph.out_edges(x) {
                let (_, t) = sg.graph.endpoints(oe);
                let ow = sg.graph.edge_weight(oe);
                if is_external(t) {
                    if seen.insert(t) {
                        frontier.push(t);
                    }
                    if let Some(c) = &ow.cond {
                        report.warnings.push(format!(
                            "condition '{c}' on external edge inside a service chain is ignored"
                        ));
                    }
                } else {
                    // Exits the chain into an internal node: bridge.
                    let to_ref = match sg.graph.weight(t) {
                        SyncNode::State(s) => s.clone(),
                        SyncNode::Service(_) => unreachable!("t checked internal"),
                    };
                    let cond = match (&cond_in, &ow.cond) {
                        (None, c) => c.clone(),
                        (Some(c), None) => Some(c.clone()),
                        (Some(c1), Some(c2)) => {
                            if c1 != c2 {
                                report.warnings.push(format!(
                                    "conflicting conditions '{c1}' and '{c2}' on a service \
                                     chain from {from_ref}; keeping '{c1}'"
                                ));
                            }
                            Some(c1.clone())
                        }
                    };
                    bridges.insert((from_ref.clone(), to_ref, cond));
                }
            }
        }
    }

    // Rule 2: invoker pull-back. For each service node s_j with internal
    // invokers, every *other* constraint into s_j transfers to the
    // invokers: closest internal ancestors of the constraint's source must
    // precede the invoking activity's Start.
    for (_, sj) in sg.service_nodes() {
        // Internal invokers of s_j: internal nodes with a direct edge to it.
        let invokers: Vec<(NodeId, String)> = sg
            .graph
            .predecessors(sj)
            .filter_map(|p| match sg.graph.weight(p) {
                SyncNode::State(s) => Some((p, s.activity.clone())),
                SyncNode::Service(_) => None,
            })
            .collect();
        if invokers.is_empty() {
            continue;
        }
        let invoker_acts: BTreeSet<&str> =
            invokers.iter().map(|(_, a)| a.as_str()).collect();
        for e in sg.graph.in_edges(sj).collect::<Vec<_>>() {
            let (w, _) = sg.graph.endpoints(e);
            let entering_cond = sg.graph.edge_weight(e).cond.clone();
            // Skip the invoker edges themselves.
            if let SyncNode::State(s) = sg.graph.weight(w) {
                if invoker_acts.contains(s.activity.as_str()) {
                    continue;
                }
            }
            // Closest internal ancestors of w (w itself if internal;
            // otherwise backward through external nodes).
            let mut ancestors: Vec<(StateRef, Option<Condition>)> = Vec::new();
            match sg.graph.weight(w) {
                SyncNode::State(s) => ancestors.push((s.clone(), entering_cond.clone())),
                SyncNode::Service(_) => {
                    let mut frontier = vec![w];
                    let mut seen: BTreeSet<NodeId> = frontier.iter().copied().collect();
                    while let Some(x) = frontier.pop() {
                        for ie in sg.graph.in_edges(x) {
                            let (p, _) = sg.graph.endpoints(ie);
                            match sg.graph.weight(p) {
                                SyncNode::State(s) => ancestors.push((
                                    s.clone(),
                                    sg.graph.edge_weight(ie).cond.clone(),
                                )),
                                SyncNode::Service(_) => {
                                    if seen.insert(p) {
                                        frontier.push(p);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            for (anc, cond) in ancestors {
                for (_, inv_act) in &invokers {
                    if *inv_act == anc.activity {
                        continue; // no self-ordering
                    }
                    bridges.insert((anc.clone(), StateRef::start(inv_act.clone()), cond.clone()));
                }
            }
        }
    }

    // External nodes whose chains never reach an internal node.
    for (name, n) in sg.service_nodes() {
        let exits_internally = {
            let mut frontier = vec![n];
            let mut seen: BTreeSet<NodeId> = frontier.iter().copied().collect();
            let mut found = false;
            while let Some(x) = frontier.pop() {
                for t in sg.graph.successors(x) {
                    if is_external(t) {
                        if seen.insert(t) {
                            frontier.push(t);
                        }
                    } else {
                        found = true;
                    }
                }
            }
            found
        };
        if !exits_internally {
            report.dead_ends.push(name.to_string());
        }
    }
    report.dead_ends.sort();

    // Assemble the ASC: keep relations not touching service nodes, add the
    // bridges (skipping bridges that duplicate an existing identical
    // relation — the minimizer would drop them anyway, but Figure 8 draws
    // each edge once).
    let mut out = ConstraintSet::new(cs.name.clone());
    out.activities = cs.activities.clone();
    out.domains = cs.domains.clone();
    let mut existing: BTreeSet<(StateRef, StateRef, Option<Condition>)> = BTreeSet::new();
    for r in &cs.relations {
        let touches_external = r.activities().iter().any(|a| cs.is_external(a));
        if touches_external {
            report.dropped += 1;
            continue;
        }
        if let Relation::HappenBefore { from, to, cond, .. } = r {
            existing.insert((from.clone(), to.clone(), cond.clone()));
        }
        out.push(r.clone());
    }
    for (from, to, cond) in bridges {
        if existing.contains(&(from.clone(), to.clone(), cond.clone())) {
            continue;
        }
        let rel = Relation::HappenBefore {
            from,
            to,
            cond,
            origin: Origin::Translated,
        };
        report.bridges.push(rel.clone());
        out.push(rel);
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::StateRef;

    /// The paper's §4.3 example: a1 → a2 → ws1_1 → ws1_d → a3 → a4
    /// translates to a1 → a2 → a3 → a4.
    #[test]
    fn paper_section43_example() {
        let mut cs = ConstraintSet::new("t");
        for a in ["a1", "a2", "a3", "a4"] {
            cs.add_activity(a);
        }
        cs.add_service("ws1_1");
        cs.add_service("ws1_d");
        cs.push(Relation::before(
            StateRef::finish("a1"),
            StateRef::start("a2"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("a2"),
            StateRef::start("ws1_1"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::start("ws1_1"),
            StateRef::start("ws1_d"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::start("ws1_d"),
            StateRef::start("a3"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::finish("a3"),
            StateRef::start("a4"),
            Origin::Data,
        ));
        let (asc, report) = translate_services(&cs);
        assert!(asc.services.is_empty());
        assert_eq!(report.dropped, 3);
        assert_eq!(report.bridges.len(), 1);
        assert_eq!(report.bridges[0].to_string(), "F(a2) -> S(a3)");
        assert_eq!(asc.constraint_count(), 3); // a1→a2, a3→a4, bridge
        assert!(asc.validate().is_empty());
    }

    /// Purchase_1 →s Purchase_2 becomes invPurchase_po → invPurchase_si
    /// (Figure 8's highlighted translation).
    #[test]
    fn port_ordering_translates_to_invocations() {
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("invPurchase_po");
        cs.add_activity("invPurchase_si");
        cs.add_service("Purchase_1");
        cs.add_service("Purchase_2");
        cs.push(Relation::before(
            StateRef::finish("invPurchase_po"),
            StateRef::start("Purchase_1"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::finish("invPurchase_si"),
            StateRef::start("Purchase_2"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::start("Purchase_1"),
            StateRef::start("Purchase_2"),
            Origin::Service,
        ));
        let (asc, report) = translate_services(&cs);
        // Rule 2 (invoker pull-back): Purchase_1 →_s Purchase_2 with
        // invokers invPurchase_po / invPurchase_si yields
        // invPurchase_po → invPurchase_si — the paper's Figure 8 bold edge.
        assert_eq!(report.bridges.len(), 1);
        assert_eq!(
            report.bridges[0].to_string(),
            "F(invPurchase_po) -> S(invPurchase_si)"
        );
        assert_eq!(report.dead_ends, vec!["Purchase_1", "Purchase_2"]);
        assert_eq!(asc.constraint_count(), 1);
    }

    /// With the callback port present, each invocation bridges to the
    /// callback receive (rule 1), alongside the rule-2 port ordering.
    #[test]
    fn callback_bridges() {
        let mut cs = ConstraintSet::new("t");
        for a in ["invPurchase_po", "invPurchase_si", "recPurchase_oi"] {
            cs.add_activity(a);
        }
        for s in ["Purchase_1", "Purchase_2", "Purchase_d"] {
            cs.add_service(s);
        }
        for (f, t) in [
            ("invPurchase_po", "Purchase_1"),
            ("invPurchase_si", "Purchase_2"),
            ("Purchase_1", "Purchase_d"),
            ("Purchase_2", "Purchase_d"),
            ("Purchase_1", "Purchase_2"),
        ] {
            cs.push(Relation::before(
                StateRef::finish(f),
                StateRef::start(t),
                Origin::Service,
            ));
        }
        cs.push(Relation::before(
            StateRef::start("Purchase_d"),
            StateRef::start("recPurchase_oi"),
            Origin::Service,
        ));
        let (asc, report) = translate_services(&cs);
        let bridge_strs: Vec<String> =
            report.bridges.iter().map(|r| r.to_string()).collect();
        assert!(bridge_strs.contains(&"F(invPurchase_po) -> S(recPurchase_oi)".to_string()));
        assert!(bridge_strs.contains(&"F(invPurchase_si) -> S(recPurchase_oi)".to_string()));
        assert!(bridge_strs.contains(&"F(invPurchase_po) -> S(invPurchase_si)".to_string()));
        assert_eq!(asc.constraint_count(), 3);
        assert!(report.dead_ends.is_empty());
    }

    #[test]
    fn conditions_propagate_from_entering_edge() {
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("g");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.add_service("Svc");
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("a"),
            StateRef::start("Svc"),
            Condition::new("g", "T"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::start("Svc"),
            StateRef::start("b"),
            Origin::Service,
        ));
        let (asc, report) = translate_services(&cs);
        assert_eq!(report.bridges.len(), 1);
        assert_eq!(report.bridges[0].to_string(), "F(a) ->[g=T] S(b)");
        assert!(asc.validate().is_empty());
    }

    #[test]
    fn duplicate_bridges_not_added_twice() {
        // Two parallel chains a → Svc1 → b and a → Svc2 → b produce one
        // bridge.
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.add_service("Svc1");
        cs.add_service("Svc2");
        for s in ["Svc1", "Svc2"] {
            cs.push(Relation::before(
                StateRef::finish("a"),
                StateRef::start(s),
                Origin::Service,
            ));
            cs.push(Relation::before(
                StateRef::start(s),
                StateRef::start("b"),
                Origin::Service,
            ));
        }
        let (asc, report) = translate_services(&cs);
        assert_eq!(report.bridges.len(), 1);
        assert_eq!(asc.constraint_count(), 1);
    }

    #[test]
    fn bridge_matching_existing_relation_skipped() {
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.add_service("Svc");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("Svc"),
            Origin::Service,
        ));
        cs.push(Relation::before(
            StateRef::start("Svc"),
            StateRef::start("b"),
            Origin::Service,
        ));
        let (asc, report) = translate_services(&cs);
        assert!(report.bridges.is_empty(), "identical data dep already present");
        assert_eq!(asc.constraint_count(), 1);
    }

    #[test]
    fn internal_only_relations_untouched() {
        let mut cs = ConstraintSet::new("t");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Cooperation,
        ));
        let (asc, report) = translate_services(&cs);
        assert_eq!(asc.constraint_count(), 1);
        assert_eq!(report.dropped, 0);
        assert_eq!(asc.relations[0].origin(), Origin::Cooperation);
    }
}
