//! Removal witnesses: for every constraint the optimizer removed, a
//! concrete justification — the surviving path that covers it, with the
//! branch conditions along the way.
//!
//! This is the maintainability story of §1/§2 made operational: where
//! sequencing constructs "obfuscate the sources of dependencies", the
//! dependency pipeline can answer *why is this ordering still guaranteed?*
//! for every edge it dropped.

use crate::exec::ExecConditions;
use dscweaver_dscl::sync_graph::SyncGraph;
use dscweaver_dscl::{Condition, ConstraintSet, Relation};
use dscweaver_graph::shortest_path;

/// Why one removed constraint is still guaranteed.
#[derive(Clone, Debug)]
pub struct RemovalWitness {
    /// The removed relation.
    pub relation: Relation,
    /// Node labels of one surviving path realizing the ordering (state
    /// granularity, lifecycle steps included).
    pub path: Vec<String>,
    /// Branch conditions encountered along that path.
    pub conditions: Vec<Condition>,
    /// The target's execution condition, when it is what licenses a
    /// conditional path covering an unconditional constraint.
    pub target_exec: Option<String>,
    /// True when no single path covers the constraint — coverage is split
    /// across branch values (branch completeness); `path` then shows one
    /// representative branch.
    pub branch_split: bool,
}

impl std::fmt::Display for RemovalWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}  ⇒ covered via {}", self.relation, self.path.join(" -> "))?;
        if !self.conditions.is_empty() {
            let cs: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
            write!(f, "  [under {}]", cs.join(" ∧ "))?;
        }
        if let Some(e) = &self.target_exec {
            write!(f, "  (target executes only when {e})")?;
        }
        if self.branch_split {
            write!(f, "  (one branch shown; every branch value has its own path)")?;
        }
        Ok(())
    }
}

/// Builds a witness for each removed relation against the surviving
/// (minimal) constraint set.
pub fn explain_removals(
    minimal: &ConstraintSet,
    removed: &[Relation],
    exec: &ExecConditions,
) -> Vec<RemovalWitness> {
    let sg = SyncGraph::build(minimal);
    removed
        .iter()
        .filter_map(|r| {
            let Relation::HappenBefore { from, to, .. } = r else {
                return None;
            };
            let (s, t) = (sg.resolve(from)?, sg.resolve(to)?);
            let path = shortest_path(&sg.graph, s, t)?;
            // Collect edge conditions along the path.
            let mut conditions = Vec::new();
            for w in path.windows(2) {
                if let Some(e) = sg.graph.find_edge(w[0], w[1]) {
                    if let Some(c) = &sg.graph.edge_weight(e).cond {
                        conditions.push(c.clone());
                    }
                }
            }
            let labels: Vec<String> =
                path.iter().map(|&n| sg.graph.weight(n).label()).collect();
            let target_dnf = exec.of(&to.activity);
            let target_exec = (!target_dnf.is_always() && !conditions.is_empty()).then(|| {
                target_dnf
                    .terms()
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(" ∧ ")
                    })
                    .collect::<Vec<_>>()
                    .join(" ∨ ")
            });
            // Branch split: the path is conditional but the target runs
            // unconditionally — the other branch values must have their
            // own covering paths (that is what the optimizer proved).
            let branch_split =
                !conditions.is_empty() && exec.is_unconditional(&to.activity);
            Some(RemovalWitness {
                relation: r.clone(),
                path: labels,
                conditions,
                target_exec,
                branch_split,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{Dependency, DependencySet};
    use crate::pipeline::Weaver;

    fn purchasing_like() -> DependencySet {
        // a → g →[T] x → j, g →[F] y → j, plus redundant a → x (exec-aware)
        // and g → j (branch complete).
        let mut ds = DependencySet::new("w");
        for a in ["a", "g", "x", "y", "j"] {
            ds.add_activity(a);
        }
        ds.add_domain("g", vec!["T".into(), "F".into()]);
        ds.push(Dependency::data("a", "g"));
        ds.push(Dependency::control("g", "x", "T"));
        ds.push(Dependency::control("g", "y", "F"));
        ds.push(Dependency::data("x", "j"));
        ds.push(Dependency::data("y", "j"));
        ds.push(Dependency::data("a", "x")); // exec-aware redundant
        ds.push(Dependency::control_unconditional("g", "j")); // branch complete
        ds
    }

    #[test]
    fn witnesses_for_every_removal() {
        let out = Weaver::new().run(&purchasing_like()).unwrap();
        assert_eq!(out.removed.len(), 2);
        let witnesses = explain_removals(&out.minimal, &out.removed, &out.exec);
        assert_eq!(witnesses.len(), 2);
        for w in &witnesses {
            assert!(w.path.len() >= 2, "{w}");
            let expected = format!("F({})", w.relation.activities()[0]);
            assert_eq!(w.path.first(), Some(&expected));
        }
    }

    #[test]
    fn exec_aware_witness_names_the_execution_condition() {
        let out = Weaver::new().run(&purchasing_like()).unwrap();
        let witnesses = explain_removals(&out.minimal, &out.removed, &out.exec);
        let w = witnesses
            .iter()
            .find(|w| w.relation.to_string() == "F(a) -> S(x)")
            .expect("a → x was removed");
        assert_eq!(w.conditions, vec![Condition::new("g", "T")]);
        assert_eq!(w.target_exec.as_deref(), Some("g=T"));
        assert!(!w.branch_split);
        let text = w.to_string();
        assert!(text.contains("target executes only when g=T"), "{text}");
    }

    #[test]
    fn branch_complete_witness_flags_the_split() {
        let out = Weaver::new().run(&purchasing_like()).unwrap();
        let witnesses = explain_removals(&out.minimal, &out.removed, &out.exec);
        let w = witnesses
            .iter()
            .find(|w| w.relation.to_string() == "F(g) -> S(j)")
            .expect("g → j was removed");
        assert!(w.branch_split, "{w}");
        assert!(!w.conditions.is_empty());
    }

    #[test]
    fn purchasing_removals_all_witnessed() {
        let out = Weaver::new()
            .run(&dscweaver_model_free_purchasing())
            .unwrap();
        let witnesses = explain_removals(&out.minimal, &out.removed, &out.exec);
        // Every removed internal-to-internal constraint gets a witness;
        // original service relations (dropped by translation, not by
        // minimization) are not in `removed` at all.
        assert_eq!(witnesses.len(), out.removed.len());
    }

    /// A local copy of Table 1 (the workloads crate depends on core, so we
    /// cannot import it here).
    fn dscweaver_model_free_purchasing() -> DependencySet {
        let mut ds = DependencySet::new("Purchasing");
        for a in [
            "recClient_po", "invCredit_po", "recCredit_au", "if_au",
            "invPurchase_po", "invPurchase_si", "recPurchase_oi", "invShip_po",
            "recShip_si", "recShip_ss", "invProduction_po", "invProduction_ss",
            "set_oi", "replyClient_oi",
        ] {
            ds.add_activity(a);
        }
        for s in [
            "Credit", "Credit_d", "Purchase_1", "Purchase_2", "Purchase_d",
            "Ship", "Ship_d", "Production_1", "Production_2",
        ] {
            ds.add_service(s);
        }
        ds.add_domain("if_au", vec!["T".into(), "F".into()]);
        for (f, t) in [
            ("recClient_po", "invCredit_po"), ("recCredit_au", "if_au"),
            ("recClient_po", "invPurchase_po"), ("recClient_po", "invShip_po"),
            ("recClient_po", "invProduction_po"), ("recShip_si", "invPurchase_si"),
            ("recShip_ss", "invProduction_ss"), ("set_oi", "replyClient_oi"),
            ("recPurchase_oi", "replyClient_oi"),
        ] {
            ds.push(Dependency::data(f, t));
        }
        for t in [
            "invPurchase_po", "invPurchase_si", "recPurchase_oi", "invShip_po",
            "recShip_si", "recShip_ss", "invProduction_po", "invProduction_ss",
        ] {
            ds.push(Dependency::control("if_au", t, "T"));
        }
        ds.push(Dependency::control("if_au", "set_oi", "F"));
        ds.push(Dependency::control_unconditional("if_au", "replyClient_oi"));
        for f in [
            "recPurchase_oi", "invShip_po", "recShip_si", "recShip_ss",
            "invProduction_po", "invProduction_ss",
        ] {
            ds.push(Dependency::cooperation(f, "replyClient_oi"));
        }
        for (f, t) in [
            ("invCredit_po", "Credit"), ("Credit", "Credit_d"),
            ("Credit_d", "recCredit_au"), ("invPurchase_po", "Purchase_1"),
            ("invPurchase_si", "Purchase_2"), ("Purchase_d", "recPurchase_oi"),
            ("Purchase_1", "Purchase_d"), ("Purchase_2", "Purchase_d"),
            ("Purchase_1", "Purchase_2"), ("invShip_po", "Ship"),
            ("Ship", "Ship_d"), ("Ship_d", "recShip_si"),
            ("Ship_d", "recShip_ss"), ("invProduction_po", "Production_1"),
            ("invProduction_ss", "Production_2"),
        ] {
            ds.push(Dependency::service(f, t));
        }
        ds
    }
}
