//! §4.4 — the minimal synchronization constraint set.
//!
//! Implements the paper's greedy algorithm verbatim:
//!
//! ```text
//! P* = P
//! for each partial ordering a_i → a_j in P:
//!     if P* − {a_i → a_j} is transitive equivalent to P:
//!         P* = P* − {a_i → a_j}
//! ```
//!
//! Transitive equivalence (Definitions 3–5) compares *condition-annotated*
//! closures. Two comparison modes are provided:
//!
//! * [`EquivalenceMode::Strict`] — Definition 3's note read literally:
//!   closures must reach the same nodes with *identical* annotation DNFs.
//! * [`EquivalenceMode::ExecutionAware`] — the semantics the paper's own
//!   Figure 9 / Table 2 results require (see [`crate::exec`]): an
//!   annotation `D_old` at target `t` from source `s` is covered by
//!   `D_new` iff `exec(s) ∧ exec(t) ∧ D_old ⟹ D_new`. This soundly
//!   licenses both execution-awareness (a `T`-guarded path covers an
//!   unconditional constraint into a `T`-only activity) and branch
//!   completeness (`{T}` and `{F}` paths jointly cover an unconditional
//!   constraint when `{T, F}` is the guard's whole domain).
//!
//! Removals are checked against the *current* set; because "new covers
//! old" is transitive and removal only shrinks the relation set, the final
//! `P*` is transitive-equivalent to the original `P` and locally minimal
//! (the second bullet of Definition 6) — both properties are exercised by
//! the property tests.
//!
//! Since minimal sets are not unique ("similar to the minimal set of
//! functional dependencies in database"), [`EdgeOrder`] controls which
//! constraints the loop offers for removal first; the default tries
//! cooperation constraints before the data constraints they typically
//! duplicate, matching the paper's Figure 9 labeling.

use crate::exec::{dnf_and, implies_under, ExecConditions};
use dscweaver_dscl::sync_graph::{SyncGraph, SyncNode};
use dscweaver_dscl::{Condition, ConstraintSet, Origin, Relation};
use dscweaver_graph::annotated::{Dnf, Row};
use dscweaver_graph::{find_cycle, topo_sort, EdgeId, NodeId};
use std::collections::{HashMap, HashSet};

/// How closures are compared (Definitions 4–5). Ordered from most to
/// least conservative; all three agree on the paper's Purchasing process
/// result *except* Strict, which keeps three extra edges (see the
/// `ablation_minimize` bench).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EquivalenceMode {
    /// Annotation-exact comparison (Definition 3's "the same ...
    /// conditional annotations" read literally). Sound under any scheduler.
    Strict,
    /// Semantic comparison modulo execution conditions and guard domains —
    /// reproduces the paper's Figure 9 / Table 2. Sound whenever an
    /// activity's non-execution is decided no earlier than its guards —
    /// true of the DES scheduler and of BPEL engines. The default.
    #[default]
    ExecutionAware,
    /// Target-set-only comparison (annotations ignored). Maximally
    /// aggressive; sound **only** under full BPEL-style dead-path
    /// elimination, where a skipped activity still propagates its link
    /// statuses after *all* of its incoming links are determined, so
    /// ordering holds along any path regardless of branch conditions.
    Reachability,
}

/// The order in which the greedy loop offers constraints for removal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EdgeOrder {
    /// Relation-list order.
    Given,
    /// Reverse relation-list order.
    ReverseGiven,
    /// Grouped by origin according to a priority list (origins not listed
    /// go last, in list order).
    ByDimension(Vec<Origin>),
}

impl Default for EdgeOrder {
    /// Cooperation first (they typically duplicate data constraints and the
    /// paper's Figure 9 keeps the data-labeled copies), then control, data,
    /// translated service constraints.
    fn default() -> Self {
        EdgeOrder::ByDimension(vec![
            Origin::Cooperation,
            Origin::Control,
            Origin::Data,
            Origin::Translated,
            Origin::Service,
            Origin::Coordinator,
            Origin::Other,
        ])
    }
}

/// Why minimization refused to run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MinimizeError {
    /// The constraint graph is cyclic — the specification conflicts
    /// ("infinite synchronization sequence", §4.1). The payload names the
    /// states on one cycle.
    Conflict {
        /// Labels of the nodes on the detected cycle.
        cycle: Vec<String>,
    },
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizeError::Conflict { cycle } => {
                write!(f, "conflicting constraints form a cycle: {}", cycle.join(" -> "))
            }
        }
    }
}

impl std::error::Error for MinimizeError {}

/// The outcome of minimization.
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// The minimal constraint set `P*`.
    pub minimal: ConstraintSet,
    /// The relations removed, in removal order.
    pub removed: Vec<Relation>,
    /// How many removal candidates were examined.
    pub candidates_checked: usize,
}

impl MinimizeResult {
    /// Constraints kept.
    pub fn kept(&self) -> usize {
        self.minimal.constraint_count()
    }
}

/// Runs the paper's greedy minimal-set algorithm on a (desugared)
/// constraint set. For the §4.4 workflow this is applied to the ASC
/// produced by [`crate::translate::translate_services`], but any
/// conflict-free constraint set works (service nodes get unconditional
/// execution conditions).
pub fn minimize(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    // Fast path: with no conditional constraints, annotated closures
    // degenerate to plain reachability in every mode, and the minimal set
    // is the (unique) transitive reduction of the constraint DAG — no DNF
    // machinery needed. The property tests pin this against the generic
    // greedy algorithm.
    if cs
        .happen_befores()
        .all(|r| matches!(r, Relation::HappenBefore { cond: None, .. }))
    {
        return minimize_unconditional_fast(cs, order);
    }
    minimize_generic(cs, exec, mode, order)
}

/// The generic §4.4 greedy algorithm over condition-annotated closures.
pub fn minimize_generic(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    let sg = SyncGraph::build(cs);
    let g = &sg.graph;

    if let Some(cycle) = find_cycle(g) {
        return Err(MinimizeError::Conflict {
            cycle: cycle.iter().map(|&n| g.weight(n).label()).collect(),
        });
    }
    let topo = topo_sort(g).expect("cycle-free graph must sort");
    let mut topo_pos = vec![usize::MAX; g.node_bound()];
    for (i, &n) in topo.iter().enumerate() {
        topo_pos[n.index()] = i;
    }

    // Initial annotated closure.
    let mut rows: Vec<Row<Condition>> = dscweaver_graph::annotated_closure(g, &|_, w: &dscweaver_dscl::SyncEdge| {
        w.cond.clone()
    })
    .expect("acyclic")
    .into_rows();

    // Execution condition of a node (service nodes: always).
    let exec_of = |n: NodeId| -> Dnf<Condition> {
        match g.weight(n) {
            SyncNode::State(s) => exec.of(&s.activity),
            SyncNode::Service(_) => Dnf::always(),
        }
    };

    // Candidate constraint edges in the requested order.
    let mut candidates: Vec<(EdgeId, usize)> = sg.constraint_edges().collect();
    match order {
        EdgeOrder::Given => {}
        EdgeOrder::ReverseGiven => candidates.reverse(),
        EdgeOrder::ByDimension(priority) => {
            let rank = |o: Origin| -> usize {
                priority.iter().position(|&p| p == o).unwrap_or(priority.len())
            };
            candidates.sort_by_key(|&(e, i)| (rank(g.edge_weight(e).origin), i));
        }
    }

    let mut removed_edges: HashSet<EdgeId> = HashSet::new();
    let mut removed_rels: Vec<usize> = Vec::new();
    let mut checked = 0usize;

    for (cand, rel_idx) in candidates {
        checked += 1;
        let (u, _) = g.endpoints(cand);

        // Fast path: recompute the row of the edge's tail first. Rows of
        // every other node depend on the graph only *through* u's row, so
        // if it is unchanged the whole closure is unchanged (accept
        // immediately), and if it is not even covered the removal is
        // rejected without touching the ancestors.
        let new_u = compose_without(g, u, cand, &removed_edges, &rows, &[], &HashMap::new());
        if new_u == rows[u.index()] {
            // Closure untouched: the constraint was pure redundancy.
            removed_edges.insert(cand);
            removed_rels.push(rel_idx);
            continue;
        }
        if !row_covered(&rows[u.index()], &new_u, mode, &exec_of(u), &exec_of, cs) {
            continue; // load-bearing edge
        }

        // Slow path (rare): u's row weakened but stays covered — every
        // ancestor's row must be rechecked.
        let mut affected: Vec<NodeId> = Vec::new();
        {
            let mut seen = vec![false; g.node_bound()];
            let mut stack = vec![u];
            seen[u.index()] = true;
            while let Some(x) = stack.pop() {
                affected.push(x);
                for e in g.in_edges(x) {
                    if removed_edges.contains(&e) {
                        continue;
                    }
                    let (p, _) = g.endpoints(e);
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
        }
        // Recompute affected rows in reverse topological order (the
        // original order stays valid: we only ever delete edges).
        affected.sort_by_key(|n| std::cmp::Reverse(topo_pos[n.index()]));
        let mut new_rows: Vec<(NodeId, Row<Condition>)> = Vec::with_capacity(affected.len());
        let mut new_of: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        for &n in &affected {
            let row = compose_without(g, n, cand, &removed_edges, &rows, &new_rows, &new_of);
            new_of.insert(n, new_rows.len());
            new_rows.push((n, row));
        }

        // Definition 4/5 check on every affected row.
        let ok = new_rows.iter().all(|(n, new_row)| {
            row_covered(&rows[n.index()], new_row, mode, &exec_of(*n), &exec_of, cs)
        });

        if ok {
            removed_edges.insert(cand);
            removed_rels.push(rel_idx);
            for (n, row) in new_rows {
                rows[n.index()] = row;
            }
        }
    }

    let removed_set: HashSet<usize> = removed_rels.iter().copied().collect();
    let minimal = SyncGraph::subset(cs, &|i| !removed_set.contains(&i));
    let removed = removed_rels
        .iter()
        .map(|&i| cs.relations[i].clone())
        .collect();
    Ok(MinimizeResult {
        minimal,
        removed,
        candidates_checked: checked,
    })
}

/// Transitive-reduction fast path for unconditional constraint sets.
///
/// An edge `u → v` is removable iff a two-or-more-step path `u ⇒ v`
/// exists (reduction criterion — removals never change the closure, so
/// the criterion evaluated on the original closure stays valid), or iff a
/// parallel duplicate of it survives. `order` decides which duplicate of
/// a bundle is kept, exactly as in the greedy algorithm.
pub fn minimize_unconditional_fast(
    cs: &ConstraintSet,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    let sg = SyncGraph::build(cs);
    let g = &sg.graph;
    if let Some(cycle) = find_cycle(g) {
        return Err(MinimizeError::Conflict {
            cycle: cycle.iter().map(|&n| g.weight(n).label()).collect(),
        });
    }
    let closure = dscweaver_graph::transitive_closure(g);

    let mut candidates: Vec<(EdgeId, usize)> = sg.constraint_edges().collect();
    match order {
        EdgeOrder::Given => {}
        EdgeOrder::ReverseGiven => candidates.reverse(),
        EdgeOrder::ByDimension(priority) => {
            let rank = |o: Origin| -> usize {
                priority.iter().position(|&p| p == o).unwrap_or(priority.len())
            };
            candidates.sort_by_key(|&(e, i)| (rank(g.edge_weight(e).origin), i));
        }
    }

    // Count live constraint edges per (u, v) pair for duplicate handling.
    let mut live_per_pair: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for &(e, _) in &candidates {
        *live_per_pair.entry(g.endpoints(e)).or_insert(0) += 1;
    }

    let mut removed_rels: Vec<usize> = Vec::new();
    let mut checked = 0usize;
    for &(e, rel_idx) in &candidates {
        checked += 1;
        let (u, v) = g.endpoints(e);
        // Two-or-more-step path: some other successor of u reaches v (or
        // *is* v via a lifecycle edge — impossible here since lifecycle
        // targets are states of the same activity and v ≠ u's own state
        // chain only when the constraint is a self-loop, which the cycle
        // check excluded).
        let two_step = g.out_edges(u).any(|oe| {
            if oe == e {
                return false;
            }
            let (_, w) = g.endpoints(oe);
            w == v && !matches!(g.edge_weight(oe).kind, dscweaver_dscl::EdgeKind::Constraint(_))
                || w != v && closure.reaches(w, v)
        });
        let duplicate_left = live_per_pair[&(u, v)] > 1;
        if two_step || duplicate_left {
            removed_rels.push(rel_idx);
            *live_per_pair.get_mut(&(u, v)).expect("counted") -= 1;
        }
    }

    let removed_set: std::collections::HashSet<usize> =
        removed_rels.iter().copied().collect();
    let minimal = SyncGraph::subset(cs, &|i| !removed_set.contains(&i));
    let removed = removed_rels
        .iter()
        .map(|&i| cs.relations[i].clone())
        .collect();
    Ok(MinimizeResult {
        minimal,
        removed,
        candidates_checked: checked,
    })
}

/// Recomposes the closure row of `n` with edge `skip` (and every edge in
/// `removed`) excluded. Successor rows come from `scratch` (freshly
/// recomputed rows, looked up via `scratch_of`) when present, else from
/// the stable `rows` table — successors outside the affected set are
/// untouched by the removal.
fn compose_without(
    g: &dscweaver_graph::DiGraph<SyncNode, dscweaver_dscl::SyncEdge>,
    n: NodeId,
    skip: EdgeId,
    removed: &HashSet<EdgeId>,
    rows: &[Row<Condition>],
    scratch: &[(NodeId, Row<Condition>)],
    scratch_of: &HashMap<NodeId, usize>,
) -> Row<Condition> {
    let mut row = Row::new();
    for e in g.out_edges(n) {
        if e == skip || removed.contains(&e) {
            continue;
        }
        let (_, m) = g.endpoints(e);
        let guard = g.edge_weight(e).cond.clone();
        row.add_term(m, guard.clone().map(|c| vec![c]).unwrap_or_default());
        let mrow: &Row<Condition> = match scratch_of.get(&m) {
            Some(&i) => &scratch[i].1,
            None => &rows[m.index()],
        };
        for (t, dnf) in mrow.iter() {
            row.compose_from(t, dnf, guard.as_ref());
        }
    }
    row
}

/// Is `old`'s row covered by `new` under `mode`? (`new` ⊆ `old` pointwise
/// holds by construction — removal only loses paths — so this is the whole
/// equivalence check.)
fn row_covered(
    old: &Row<Condition>,
    new: &Row<Condition>,
    mode: EquivalenceMode,
    src_exec: &Dnf<Condition>,
    exec_of: &dyn Fn(NodeId) -> Dnf<Condition>,
    cs: &ConstraintSet,
) -> bool {
    match mode {
        EquivalenceMode::Strict => old == new,
        EquivalenceMode::ExecutionAware => old.iter().all(|(t, old_dnf)| {
            let empty = Dnf::empty();
            let new_dnf = new.get(t).unwrap_or(&empty);
            let ctx = dnf_and(src_exec, &exec_of(t));
            implies_under(&ctx, old_dnf, new_dnf, &cs.domains)
        }),
        EquivalenceMode::Reachability => old.iter().all(|(t, _)| new.reaches(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::StateRef;

    fn cs_with(activities: &[&str], rels: Vec<Relation>) -> ConstraintSet {
        let mut cs = ConstraintSet::new("t");
        for a in activities {
            cs.add_activity(*a);
        }
        for r in rels {
            cs.push(r);
        }
        cs
    }

    fn before(a: &str, b: &str, o: Origin) -> Relation {
        Relation::before(StateRef::finish(a), StateRef::start(b), o)
    }

    fn run(cs: &ConstraintSet, mode: EquivalenceMode) -> MinimizeResult {
        let exec = ExecConditions::derive(cs);
        minimize(cs, &exec, mode, &EdgeOrder::default()).unwrap()
    }

    #[test]
    fn transitive_shortcut_removed() {
        let cs = cs_with(
            &["a", "b", "c"],
            vec![
                before("a", "b", Origin::Data),
                before("b", "c", Origin::Data),
                before("a", "c", Origin::Cooperation),
            ],
        );
        let res = run(&cs, EquivalenceMode::Strict);
        assert_eq!(res.kept(), 2);
        assert_eq!(res.removed.len(), 1);
        assert_eq!(res.removed[0].origin(), Origin::Cooperation);
    }

    #[test]
    fn duplicate_constraint_removed_by_priority() {
        // data and cooperation duplicates of the same edge: the default
        // order removes the cooperation copy (paper's Figure 9 keeps →_d).
        let cs = cs_with(
            &["a", "b"],
            vec![
                before("a", "b", Origin::Data),
                before("a", "b", Origin::Cooperation),
            ],
        );
        let res = run(&cs, EquivalenceMode::Strict);
        assert_eq!(res.kept(), 1);
        assert_eq!(res.minimal.relations[0].origin(), Origin::Data);
    }

    #[test]
    fn diamond_keeps_all_edges() {
        let cs = cs_with(
            &["a", "b", "c", "d"],
            vec![
                before("a", "b", Origin::Data),
                before("a", "c", Origin::Data),
                before("b", "d", Origin::Data),
                before("c", "d", Origin::Data),
            ],
        );
        for mode in [EquivalenceMode::Strict, EquivalenceMode::ExecutionAware] {
            let res = run(&cs, mode);
            assert_eq!(res.kept(), 4, "mode {mode:?}");
        }
    }

    #[test]
    fn strict_keeps_condition_mismatch_execution_aware_removes() {
        // g →[g=T] b, plus a → b (unconditional) where b is control
        // dependent on g=T and a → g exists:
        //   a → g →[T] b   and the direct a → b.
        // Strict: direct edge's unconditional annotation is not matched by
        // the {g=T} path → kept. ExecutionAware: b only executes when g=T →
        // removed.
        let mut cs = cs_with(
            &["a", "g", "b"],
            vec![
                before("a", "g", Origin::Data),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("b"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                before("a", "b", Origin::Data),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        let strict = run(&cs, EquivalenceMode::Strict);
        assert_eq!(strict.kept(), 3);
        let aware = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(aware.kept(), 2);
        assert!(aware
            .removed
            .iter()
            .any(|r| r.to_string() == "F(a) -> S(b)"));
    }

    #[test]
    fn branch_completeness_removal() {
        // g →[T] x → j, g →[F] y → j, and a direct g → j: with domain
        // {T, F} the direct edge is covered by the two branch paths.
        let mut cs = cs_with(
            &["g", "x", "y", "j"],
            vec![
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("x"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("y"),
                    Condition::new("g", "F"),
                    Origin::Control,
                ),
                before("x", "j", Origin::Data),
                before("y", "j", Origin::Data),
                before("g", "j", Origin::Control),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        let aware = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(aware.kept(), 4);
        assert!(aware
            .removed
            .iter()
            .any(|r| r.to_string() == "F(g) -> S(j)"));
        // Strict mode must keep it.
        assert_eq!(run(&cs, EquivalenceMode::Strict).kept(), 5);
    }

    #[test]
    fn incomplete_domain_blocks_branch_removal() {
        let mut cs = cs_with(
            &["g", "x", "y", "j"],
            vec![
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("x"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("y"),
                    Condition::new("g", "F"),
                    Origin::Control,
                ),
                before("x", "j", Origin::Data),
                before("y", "j", Origin::Data),
                before("g", "j", Origin::Control),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into(), "ERR".into()]);
        let aware = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(aware.kept(), 5, "a third branch value may occur");
    }

    #[test]
    fn cycle_reported_as_conflict() {
        let cs = cs_with(
            &["a", "b"],
            vec![
                before("a", "b", Origin::Data),
                before("b", "a", Origin::Cooperation),
            ],
        );
        let exec = ExecConditions::derive(&cs);
        let err = minimize(&cs, &exec, EquivalenceMode::Strict, &EdgeOrder::default())
            .unwrap_err();
        let MinimizeError::Conflict { cycle } = err;
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn result_is_locally_minimal() {
        // Chain with many shortcuts; after minimization, re-running removes
        // nothing (Definition 6, second bullet).
        let mut rels = Vec::new();
        let names = ["a", "b", "c", "d", "e"];
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                rels.push(before(names[i], names[j], Origin::Data));
            }
        }
        let cs = cs_with(&names, rels);
        let first = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(first.kept(), 4, "chain reduction");
        let second = run(&first.minimal, EquivalenceMode::ExecutionAware);
        assert!(second.removed.is_empty());
    }

    #[test]
    fn order_changes_which_duplicate_survives() {
        let cs = cs_with(
            &["a", "b"],
            vec![
                before("a", "b", Origin::Data),
                before("a", "b", Origin::Cooperation),
            ],
        );
        let exec = ExecConditions::derive(&cs);
        let given = minimize(&cs, &exec, EquivalenceMode::Strict, &EdgeOrder::Given).unwrap();
        // Given order offers the data copy first; it is removable while the
        // cooperation copy remains.
        assert_eq!(given.minimal.relations[0].origin(), Origin::Cooperation);
        let rev = minimize(
            &cs,
            &exec,
            EquivalenceMode::Strict,
            &EdgeOrder::ReverseGiven,
        )
        .unwrap();
        assert_eq!(rev.minimal.relations[0].origin(), Origin::Data);
        // Either way exactly one edge survives.
        assert_eq!(given.kept(), 1);
        assert_eq!(rev.kept(), 1);
    }

    #[test]
    fn state_granular_constraints_respected() {
        // S(a) → F(b) (overlapping lifetimes) is NOT implied by F(a) → S(b)
        // — the closure rows of S(a) differ.
        let cs = cs_with(
            &["a", "b"],
            vec![
                Relation::before(StateRef::start("a"), StateRef::finish("b"), Origin::Cooperation),
                before("a", "b", Origin::Data),
            ],
        );
        let res = run(&cs, EquivalenceMode::ExecutionAware);
        // F(a) → S(b) implies S(a) ... → S(b) → ... F(b)? S(a) reaches F(b)
        // through its own lifecycle (S→R→F of a, then F(a)→S(b)→...): so
        // S(a) → F(b) IS transitively implied and gets removed; the data
        // edge is load-bearing.
        assert_eq!(res.kept(), 1);
        assert_eq!(res.minimal.relations[0].origin(), Origin::Data);
    }

    #[test]
    fn fast_path_agrees_with_generic_on_unconditional_sets() {
        // Deterministic pseudo-random unconditional DAGs: the dispatch
        // (fast path) and the generic greedy algorithm must keep exactly
        // the same relations.
        let mut x: u64 = 0xD1B54A32D192ED03;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..20 {
            let n = 4 + (case % 5);
            let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
            let mut cs = ConstraintSet::new("rand");
            for a in &names {
                cs.add_activity(a.clone());
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if rnd() % 3 == 0 {
                        let origin = if rnd() % 2 == 0 {
                            Origin::Data
                        } else {
                            Origin::Cooperation
                        };
                        cs.push(Relation::before(
                            StateRef::finish(&names[i]),
                            StateRef::start(&names[j]),
                            origin,
                        ));
                    }
                }
            }
            let exec = ExecConditions::derive(&cs);
            for order in [EdgeOrder::Given, EdgeOrder::ReverseGiven, EdgeOrder::default()] {
                let fast = minimize_unconditional_fast(&cs, &order).unwrap();
                let generic = minimize_generic(
                    &cs,
                    &exec,
                    EquivalenceMode::Strict,
                    &order,
                )
                .unwrap();
                let render = |r: &MinimizeResult| -> Vec<String> {
                    let mut v: Vec<String> = r
                        .minimal
                        .happen_befores()
                        .map(|x| format!("{x} ({})", x.origin()))
                        .collect();
                    v.sort();
                    v
                };
                assert_eq!(
                    render(&fast),
                    render(&generic),
                    "case {case}, order {order:?}"
                );
            }
        }
    }

    #[test]
    fn fast_path_handles_lifecycle_shortcuts_and_duplicates() {
        // Constraint S(a) → F(a) is covered by a's own lifecycle.
        let mut cs = ConstraintSet::new("lc");
        cs.add_activity("a");
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("a"),
            Origin::Cooperation,
        ));
        let res = minimize_unconditional_fast(&cs, &EdgeOrder::default()).unwrap();
        assert_eq!(res.kept(), 0, "lifecycle covers it");
        // Triplicate edges: exactly one survives.
        let mut cs2 = ConstraintSet::new("dup");
        cs2.add_activity("x");
        cs2.add_activity("y");
        for _ in 0..3 {
            cs2.push(Relation::before(
                StateRef::finish("x"),
                StateRef::start("y"),
                Origin::Data,
            ));
        }
        let res2 = minimize_unconditional_fast(&cs2, &EdgeOrder::default()).unwrap();
        assert_eq!(res2.kept(), 1);
    }

    #[test]
    fn overlap_constraint_kept_when_not_implied() {
        // Only S(a) → F(b): nothing else implies it.
        let cs = cs_with(
            &["a", "b"],
            vec![Relation::before(
                StateRef::start("a"),
                StateRef::finish("b"),
                Origin::Cooperation,
            )],
        );
        let res = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(res.kept(), 1);
    }
}
